//! Prometheus-style text exposition of artifacts, for human eyes.
//!
//! The canonical machine format is the JSON artifact; this renderer
//! exists so `less target/bench/BENCH_E10.prom` answers "what did the
//! run measure" without tooling. Names are flattened to the usual
//! `[a-zA-Z0-9_]` identifier alphabet, every series carries
//! `class="virtual|host"`, and distributions expand into `_count`,
//! `_sum`, and `{quantile="..."}` series like a Prometheus summary.

use crate::artifact::{Artifact, MetricValue};

/// Maps a dotted metric name onto the exposition identifier alphabet.
fn flat_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn label_block(
    artifact: &Artifact,
    labels: &[(String, String)],
    extra: Option<(&str, &str)>,
) -> String {
    let mut parts = vec![format!("class=\"{}\"", artifact.class.as_str())];
    for (k, v) in labels {
        parts.push(format!(
            "{}=\"{}\"",
            flat_name(k),
            v.replace('\\', "\\\\").replace('"', "\\\"")
        ));
    }
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Renders the artifacts as exposition text, one block per artifact.
pub fn render_exposition(artifacts: &[&Artifact]) -> String {
    let mut out = String::new();
    for artifact in artifacts {
        out.push_str(&format!(
            "# experiment {} class {} config {}\n",
            artifact.experiment,
            artifact.class.as_str(),
            artifact.config
        ));
        let mut sorted: Vec<_> = artifact.metrics.iter().collect();
        sorted.sort_by(|a, b| a.id.cmp(&b.id));
        for m in sorted {
            let name = flat_name(&m.id.name);
            match &m.value {
                MetricValue::U64(v) => {
                    out.push_str(&format!(
                        "{name}{} {v}\n",
                        label_block(artifact, &m.id.labels, None)
                    ));
                }
                MetricValue::F64(v) => {
                    out.push_str(&format!(
                        "{name}{} {v:?}\n",
                        label_block(artifact, &m.id.labels, None)
                    ));
                }
                MetricValue::Dist(d) => {
                    out.push_str(&format!(
                        "{name}_count{} {}\n",
                        label_block(artifact, &m.id.labels, None),
                        d.count
                    ));
                    out.push_str(&format!(
                        "{name}_sum{} {}\n",
                        label_block(artifact, &m.id.labels, None),
                        d.sum
                    ));
                    for (q, v) in [
                        ("0", d.min),
                        ("0.5", d.p50),
                        ("0.9", d.p90),
                        ("0.99", d.p99),
                        ("0.999", d.p999),
                        ("1", d.max),
                    ] {
                        out.push_str(&format!(
                            "{name}{} {v}\n",
                            label_block(artifact, &m.id.labels, Some(("quantile", q)))
                        ));
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::Class;
    use utp_trace::LatencyHistogram;

    #[test]
    fn renders_scalars_and_summaries() {
        let mut a = Artifact::new("E9", Class::Virtual, "n=1");
        a.push_u64("e9.jobs", &[("shard", "0")], 4);
        let mut h = LatencyHistogram::new();
        h.record_ns(1_000);
        a.push_hist("e9.lat.ns", &[], &h);
        let text = render_exposition(&[&a]);
        assert!(text.starts_with("# experiment E9 class virtual config n=1\n"));
        assert!(text.contains("e9_jobs{class=\"virtual\",shard=\"0\"} 4\n"));
        assert!(text.contains("e9_lat_ns_count{class=\"virtual\"} 1\n"));
        assert!(text.contains("e9_lat_ns{class=\"virtual\",quantile=\"0.999\"}"));
    }

    #[test]
    fn label_values_escape_quotes() {
        let mut a = Artifact::new("E9", Class::Host, "n=1");
        a.push_u64("m", &[("k", "a\"b")], 1);
        assert!(render_exposition(&[&a]).contains("k=\"a\\\"b\""));
    }
}
