//! The perf-regression gate: checked-in baselines, per-metric
//! tolerance bands, and the comparator behind `utp-obs gate`.
//!
//! Baselines live under `scripts/bench_baseline/`, one file per
//! artifact, in the artifact format plus a `tol` field per metric.
//! Tolerance is *relative deviation*: a comparison fails when
//! `|new - old| / max(|old|, 1) > tol`. Virtual-class baselines
//! default to `tol = 0` (the virtual clock makes them exact
//! everywhere); host-class baselines default to an order-of-magnitude
//! band and are typically enforced only by the nightly CI job — the
//! same drift-gate shape as the measured-TCB and authz-spec baselines.

use crate::artifact::{
    parse_header, parse_metric, render_metric, Artifact, Class, Metric, MetricValue,
};
use crate::json::{escape_into, Json};
use crate::registry::MetricId;
use std::collections::BTreeMap;

/// Baseline schema identifier; bump on breaking format changes.
pub const BASELINE_SCHEMA: &str = "utp-bench-baseline/v1";

/// One baselined metric: the recorded value plus its tolerance band.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineMetric {
    /// The recorded metric.
    pub metric: Metric,
    /// Maximum allowed relative deviation.
    pub tol: f64,
}

/// A checked-in perf baseline for one artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Experiment key, matched against the artifact's.
    pub experiment: String,
    /// Determinism class, matched against the artifact's.
    pub class: Class,
    /// Run configuration the baseline was recorded at; a mismatch is a
    /// hard failure (comparing different workloads is meaningless).
    pub config: String,
    /// The baselined metrics.
    pub metrics: Vec<BaselineMetric>,
}

impl Baseline {
    /// Records a baseline from a fresh artifact with the class's
    /// default tolerance on every metric.
    pub fn from_artifact(artifact: &Artifact) -> Baseline {
        let tol = artifact.class.default_tolerance();
        Baseline {
            experiment: artifact.experiment.clone(),
            class: artifact.class,
            config: artifact.config.clone(),
            metrics: artifact
                .metrics
                .iter()
                .map(|m| BaselineMetric {
                    metric: m.clone(),
                    tol,
                })
                .collect(),
        }
    }

    /// Carries hand-tuned tolerances forward from a previous baseline:
    /// any metric id present in `old` keeps `old`'s tolerance.
    pub fn inherit_tolerances(&mut self, old: &Baseline) {
        let by_id: BTreeMap<&MetricId, f64> =
            old.metrics.iter().map(|b| (&b.metric.id, b.tol)).collect();
        for b in &mut self.metrics {
            if let Some(tol) = by_id.get(&b.metric.id) {
                b.tol = *tol;
            }
        }
    }

    /// Canonical serialization, mirroring [`Artifact::to_json`].
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{BASELINE_SCHEMA}\",\n"));
        out.push_str("  \"experiment\": \"");
        escape_into(&mut out, &self.experiment);
        out.push_str("\",\n");
        out.push_str(&format!("  \"class\": \"{}\",\n", self.class.as_str()));
        out.push_str("  \"config\": \"");
        escape_into(&mut out, &self.config);
        out.push_str("\",\n");
        let mut sorted: Vec<&BaselineMetric> = self.metrics.iter().collect();
        sorted.sort_by(|a, b| a.metric.id.cmp(&b.metric.id));
        if sorted.is_empty() {
            out.push_str("  \"metrics\": []\n}\n");
            return out;
        }
        out.push_str("  \"metrics\": [\n");
        for (i, b) in sorted.iter().enumerate() {
            out.push_str("    ");
            render_metric(&mut out, &b.metric, Some(b.tol));
            out.push_str(if i + 1 == sorted.len() { "\n" } else { ",\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a baseline document.
    pub fn from_json(src: &str) -> Result<Baseline, String> {
        let doc = Json::parse(src)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing schema")?;
        if schema != BASELINE_SCHEMA {
            return Err(format!(
                "unsupported schema `{schema}` (want `{BASELINE_SCHEMA}`)"
            ));
        }
        let (experiment, class, config) = parse_header(&doc)?;
        let metrics = doc
            .get("metrics")
            .and_then(Json::items)
            .ok_or("missing metrics array")?
            .iter()
            .map(|v| {
                let (metric, tol) = parse_metric(v)?;
                Ok(BaselineMetric {
                    tol: tol.ok_or_else(|| {
                        format!("baseline metric `{}` missing tol", metric.id.render())
                    })?,
                    metric,
                })
            })
            .collect::<Result<Vec<BaselineMetric>, String>>()?;
        Ok(Baseline {
            experiment,
            class,
            config,
            metrics,
        })
    }
}

/// One failed comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct GateDiff {
    /// Rendered metric id (or a header field name).
    pub metric: String,
    /// Human-readable explanation with both values.
    pub detail: String,
}

/// The result of comparing one artifact against its baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// Experiment key.
    pub experiment: String,
    /// Class compared.
    pub class: Class,
    /// Out-of-band metrics — any entry fails the gate.
    pub diffs: Vec<GateDiff>,
    /// Informational notes (new metrics not yet baselined).
    pub notes: Vec<String>,
}

impl GateReport {
    /// True when the artifact is within every tolerance band.
    pub fn clean(&self) -> bool {
        self.diffs.is_empty()
    }
}

/// Relative deviation with a unit floor, so baselines near zero don't
/// explode the ratio (a count moving 0 → 1 deviates by 1.0, not ∞).
fn deviation(old: f64, new: f64) -> f64 {
    (new - old).abs() / old.abs().max(1.0)
}

fn check(diffs: &mut Vec<GateDiff>, id: &str, tol: f64, old: f64, new: f64) {
    let dev = deviation(old, new);
    // An epsilon absorbs the parse/format round-trip of f64 metrics;
    // integer metrics compare exactly at tol = 0 regardless.
    if dev > tol + 1e-9 {
        diffs.push(GateDiff {
            metric: id.to_string(),
            detail: format!(
                "baseline {old}, got {new} (deviation {:.1}% > tol {:.0}%)",
                dev * 100.0,
                tol * 100.0
            ),
        });
    }
}

/// Compares an artifact against its baseline.
pub fn compare(baseline: &Baseline, artifact: &Artifact) -> GateReport {
    let mut report = GateReport {
        experiment: baseline.experiment.clone(),
        class: baseline.class,
        diffs: Vec::new(),
        notes: Vec::new(),
    };
    if artifact.experiment != baseline.experiment {
        report.diffs.push(GateDiff {
            metric: "experiment".to_string(),
            detail: format!(
                "baseline is for `{}`, artifact is `{}`",
                baseline.experiment, artifact.experiment
            ),
        });
        return report;
    }
    if artifact.class != baseline.class {
        report.diffs.push(GateDiff {
            metric: "class".to_string(),
            detail: format!(
                "baseline class `{}`, artifact class `{}`",
                baseline.class.as_str(),
                artifact.class.as_str()
            ),
        });
        return report;
    }
    if artifact.config != baseline.config {
        report.diffs.push(GateDiff {
            metric: "config".to_string(),
            detail: format!(
                "baseline recorded at `{}`, artifact ran at `{}` — refresh baselines \
                 (scripts/record_experiments.sh --refresh-perf-baselines) if the change \
                 is intentional",
                baseline.config, artifact.config
            ),
        });
        return report;
    }
    let by_id: BTreeMap<&MetricId, &MetricValue> =
        artifact.metrics.iter().map(|m| (&m.id, &m.value)).collect();
    let mut baselined: Vec<&MetricId> = Vec::new();
    for b in &baseline.metrics {
        let id = b.metric.id.render();
        baselined.push(&b.metric.id);
        let Some(value) = by_id.get(&b.metric.id) else {
            report.diffs.push(GateDiff {
                metric: id,
                detail: "present in baseline, missing from artifact".to_string(),
            });
            continue;
        };
        match (&b.metric.value, value) {
            (MetricValue::U64(old), MetricValue::U64(new)) => {
                check(&mut report.diffs, &id, b.tol, *old as f64, *new as f64);
            }
            (MetricValue::F64(old), MetricValue::F64(new)) => {
                check(&mut report.diffs, &id, b.tol, *old, *new);
            }
            (MetricValue::Dist(old), MetricValue::Dist(new)) => {
                for ((field, o), (_, n)) in old.fields().iter().zip(new.fields().iter()) {
                    check(
                        &mut report.diffs,
                        &format!("{id}.{field}"),
                        b.tol,
                        *o as f64,
                        *n as f64,
                    );
                }
            }
            (old, new) => {
                report.diffs.push(GateDiff {
                    metric: id,
                    detail: format!("value kind changed: baseline {old:?}, artifact {new:?}"),
                });
            }
        }
    }
    for m in &artifact.metrics {
        if !baselined.contains(&&m.id) {
            report.notes.push(format!(
                "new metric `{}` not in baseline (refresh baselines to start guarding it)",
                m.id.render()
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::Dist;

    fn artifact() -> Artifact {
        let mut a = Artifact::new("E7", Class::Virtual, "n=4");
        a.push_u64("e7.count", &[("s", "0")], 100);
        a.push_f64("e7.rate", &[], 50.0);
        a.push_dist(
            "e7.lat",
            &[],
            Dist {
                count: 4,
                sum: 100,
                min: 10,
                p50: 25,
                p90: 30,
                p99: 30,
                p999: 30,
                max: 35,
            },
        );
        a
    }

    #[test]
    fn identical_artifact_is_clean() {
        let a = artifact();
        let b = Baseline::from_artifact(&a);
        let report = compare(&b, &a);
        assert!(report.clean(), "{:?}", report.diffs);
        assert!(report.notes.is_empty());
    }

    #[test]
    fn perturbed_value_fails_with_per_metric_diff() {
        let a = artifact();
        let mut b = Baseline::from_artifact(&a);
        for m in &mut b.metrics {
            if let MetricValue::U64(v) = &mut m.metric.value {
                *v += 1;
            }
        }
        let report = compare(&b, &a);
        assert_eq!(report.diffs.len(), 1);
        assert_eq!(report.diffs[0].metric, "e7.count{s=0}");
        assert!(report.diffs[0].detail.contains("baseline 101, got 100"));
    }

    #[test]
    fn tolerance_band_absorbs_host_noise() {
        let mut a = artifact();
        a.class = Class::Host;
        let b = Baseline::from_artifact(&a);
        let mut noisy = a.clone();
        for m in &mut noisy.metrics {
            if let MetricValue::F64(v) = &mut m.value {
                *v *= 3.0;
            }
        }
        let report = compare(&b, &noisy);
        assert!(
            report.clean(),
            "3x drift within the 10x band: {:?}",
            report.diffs
        );
    }

    #[test]
    fn dist_fields_are_checked_individually() {
        let a = artifact();
        let mut b = Baseline::from_artifact(&a);
        for m in &mut b.metrics {
            if let MetricValue::Dist(d) = &mut m.metric.value {
                d.p999 = 999;
            }
        }
        let report = compare(&b, &a);
        assert_eq!(report.diffs.len(), 1);
        assert_eq!(report.diffs[0].metric, "e7.lat.p999");
    }

    #[test]
    fn missing_and_extra_metrics_are_reported() {
        let a = artifact();
        let mut b = Baseline::from_artifact(&a);
        b.metrics.push(BaselineMetric {
            metric: Metric {
                id: MetricId::new("e7.gone", &[]),
                value: MetricValue::U64(1),
            },
            tol: 0.0,
        });
        let mut extra = a.clone();
        extra.push_u64("e7.brand_new", &[], 5);
        let report = compare(&b, &extra);
        assert_eq!(report.diffs.len(), 1, "{:?}", report.diffs);
        assert!(report.diffs[0].detail.contains("missing from artifact"));
        assert_eq!(report.notes.len(), 1);
        assert!(report.notes[0].contains("e7.brand_new"));
    }

    #[test]
    fn config_mismatch_is_a_hard_failure() {
        let a = artifact();
        let mut b = Baseline::from_artifact(&a);
        b.config = "n=8".to_string();
        let report = compare(&b, &a);
        assert_eq!(report.diffs.len(), 1);
        assert_eq!(report.diffs[0].metric, "config");
    }

    #[test]
    fn baseline_round_trips_and_inherits_tolerances() {
        let a = artifact();
        let mut b = Baseline::from_artifact(&a);
        b.metrics[1].tol = 0.25;
        let parsed = Baseline::from_json(&b.to_json()).unwrap();
        assert_eq!(parsed.to_json(), b.to_json());
        let mut fresh = Baseline::from_artifact(&a);
        fresh.inherit_tolerances(&parsed);
        let tuned = fresh
            .metrics
            .iter()
            .find(|m| m.metric.id == b.metrics[1].metric.id)
            .unwrap();
        assert_eq!(tuned.tol, 0.25, "hand-tuned tolerance carried forward");
    }
}
