//! CAPTCHA replacement: the paper's second application. A forum wants
//! proof-of-human before account signup. Compare three gatekeepers —
//! CAPTCHA vs bots, CAPTCHA vs honest humans, and the trusted path.
//!
//! Run with: `cargo run --example captcha_replacement`

use utp::captcha::{BotSolver, CaptchaGenerator, Difficulty, HumanSolver};
use utp::core::ca::PrivacyCa;
use utp::core::client::{Client, ClientConfig};
use utp::core::operator::{ConfirmingHuman, Intent};
use utp::core::protocol::{ConfirmMode, Transaction};
use utp::core::verifier::Verifier;
use utp::platform::machine::{Machine, MachineConfig};
use utp::tpm::VendorProfile;

fn main() {
    println!("== Proof-of-human: CAPTCHA vs uni-directional trusted path ==\n");
    let trials = 300;

    // --- CAPTCHA lane --------------------------------------------------------
    for difficulty in Difficulty::all() {
        let mut generator = CaptchaGenerator::new(21);
        let mut human = HumanSolver::new(22);
        let mut bot = BotSolver::ocr(23);
        let (mut human_ok, mut bot_ok) = (0, 0);
        let mut human_time = 0.0;
        for _ in 0..trials {
            let c = generator.generate(difficulty);
            let h = human.solve(&c);
            human_time += h.elapsed.as_secs_f64();
            if h.success {
                human_ok += 1;
            }
            if bot.solve(&c).success {
                bot_ok += 1;
            }
        }
        println!(
            "[captcha {:?}] honest humans pass {:>5.1}% (avg {:>4.1}s)   bots pass {:>5.1}%",
            difficulty,
            100.0 * human_ok as f64 / trials as f64,
            human_time / trials as f64,
            100.0 * bot_ok as f64 / trials as f64,
        );
    }

    // --- Trusted-path lane ------------------------------------------------------
    // "Confirm signup" is a zero-amount transaction in TypeCode mode: the
    // human proves presence by retyping the on-screen code inside the
    // DRTM session; bots can't fake the quote.
    let ca = PrivacyCa::new(512, 31);
    let mut verifier = Verifier::new(ca.public_key().clone(), 32);
    let mut machine = Machine::new(MachineConfig::realistic(VendorProfile::Infineon, 33));
    let enrollment = ca.enroll(&mut machine);
    let mut client = Client::new(ClientConfig::default(), enrollment);

    let utp_trials = 40;
    let mut ok = 0;
    let mut human_time = 0.0;
    for i in 0..utp_trials {
        let tx = Transaction::new(i, "forum.example", 0, "EUR", "prove you are human");
        let request =
            verifier.issue_request_with_mode(tx.clone(), ConfirmMode::TypeCode, machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&tx), 100 + i);
        let (evidence, report) = client
            .confirm_with_report(&mut machine, &request, &mut human)
            .expect("session runs");
        human_time += report.timings.human.as_secs_f64();
        if verifier.verify(&evidence, machine.now()).is_ok() {
            ok += 1;
        }
    }
    println!(
        "[trusted path] honest humans pass {:>5.1}% (avg {:>4.1}s)   bots pass   0.0% (E5)",
        100.0 * ok as f64 / utp_trials as f64,
        human_time / utp_trials as f64,
    );
    println!("\nThe trusted path gives the server a cryptographic proof of human");
    println!("presence instead of a statistical one — and no more squinting at");
    println!("distorted letters.");
}
