//! End-to-end CLI checks: flag plumbing, JSON document shape, report
//! side-outputs, and exit codes. These run the real binary against the
//! real workspace, so they double as a smoke test that the repo stays
//! analyzer-clean through the CLI path (not just the library path the
//! self-check uses).

use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    utp_analyze::workspace::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("crates/analyze lives inside the utp workspace")
}

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_utp-analyze"))
}

#[test]
fn clean_workspace_exits_zero_and_writes_both_reports() {
    let dir = std::env::temp_dir().join(format!("utp-analyze-cli-{}", std::process::id()));
    let tcb = dir.join("tcb_report.json");
    // Nested path on purpose: the CLI must create missing parents for
    // the dataflow report (CI writes into target/analyze/).
    let dataflow = dir.join("nested/dataflow_report.json");
    let authz = dir.join("nested/authz_report.json");
    std::fs::create_dir_all(&dir).expect("create temp dir");

    let out = bin()
        .args(["--root".as_ref(), workspace_root().as_os_str()])
        .args(["--format", "json"])
        .args(["--tcb-report".as_ref(), tcb.as_os_str()])
        .args(["--dataflow-report".as_ref(), dataflow.as_os_str()])
        .args(["--authz-report".as_ref(), authz.as_os_str()])
        .args([
            "--check-authz-spec".as_ref(),
            workspace_root().join("scripts/authz_spec.json").as_os_str(),
        ])
        .output()
        .expect("run utp-analyze");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "expected exit 0 on a clean workspace:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The combined JSON document carries findings plus the TCB report.
    assert!(stdout.contains("\"findings\""), "stdout:\n{stdout}");
    assert!(stdout.contains("\"tcb_report\""), "stdout:\n{stdout}");

    let tcb_json = std::fs::read_to_string(&tcb).expect("tcb report written");
    assert!(tcb_json.contains("\"measured_functions\""));

    let df_json = std::fs::read_to_string(&dataflow).expect("dataflow report written");
    for key in [
        "\"dataflow_report\"",
        "\"functions\"",
        "\"blocks\"",
        "\"statements\"",
        "\"fallback_functions\"",
        "\"findings_by_lint\"",
        "\"authorization-flow\"",
        "\"ct-discipline\"",
        "\"lock-discipline\"",
        "\"protocol-order\"",
        "\"secret-taint\"",
        "\"untrusted-arith\"",
    ] {
        assert!(df_json.contains(key), "missing {key} in:\n{df_json}");
    }
    // The clean-run invariant seen through the CLI: every flow lint
    // reports zero post-suppression findings on this workspace.
    for lint in [
        "authorization-flow",
        "ct-discipline",
        "lock-discipline",
        "protocol-order",
        "secret-taint",
        "untrusted-arith",
    ] {
        assert!(
            df_json.contains(&format!("\"{lint}\": 0")),
            "expected zero {lint} findings in:\n{df_json}"
        );
    }

    // The authz coverage report: real grant/sink/order sites were seen
    // (the passes are not vacuously clean) and every spec name anchors.
    let authz_json = std::fs::read_to_string(&authz).expect("authz report written");
    for key in [
        "\"authz_report\"",
        "\"grant_sites\"",
        "\"sink_sites\"",
        "\"order_sites\"",
        "\"wal-before-ack\"",
        "\"missing_anchors\": []",
    ] {
        assert!(authz_json.contains(key), "missing {key} in:\n{authz_json}");
    }
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("authz-spec: ok"),
        "spec gate did not pass:\n{stderr}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pass_filter_runs_one_pass_and_rejects_unknown_names() {
    // Unknown pass name: usage error listing the known ids.
    let out = bin()
        .args(["--pass", "no-such-pass"])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("not a known pass") && stderr.contains("authorization-flow"),
        "stderr:\n{stderr}"
    );

    // A fake workspace with a secret-taint deny: running only that pass
    // still finds it; running only an unrelated pass exits clean, and
    // the other pass's findings must not appear.
    let root = std::env::temp_dir().join(format!("utp-analyze-pass-{}", std::process::id()));
    let tpm_src = root.join("crates/tpm/src");
    std::fs::create_dir_all(&tpm_src).expect("create fake workspace");
    let leaky = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/taint/leaky.rs"),
    )
    .expect("read leaky fixture");
    std::fs::write(tpm_src.join("leaky.rs"), leaky).expect("write fixture");

    let out = bin()
        .args(["--root".as_ref(), root.as_os_str()])
        .args(["--pass", "secret-taint"])
        .output()
        .expect("run utp-analyze");
    assert_eq!(out.status.code(), Some(1), "filtered pass still gates");
    assert!(String::from_utf8_lossy(&out.stdout).contains("secret-taint"));

    let out = bin()
        .args(["--root".as_ref(), root.as_os_str()])
        .args(["--pass", "lock-discipline"])
        .output()
        .expect("run utp-analyze");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "unrelated pass must not see the taint finding:\n{stdout}"
    );
    assert!(!stdout.contains("secret-taint"), "stdout:\n{stdout}");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn deny_findings_exit_nonzero_in_json_mode_too() {
    // Machine-readable output must not soften the exit code: CI pipes
    // `--format json` and still relies on exit 1 to fail the build.
    let root = std::env::temp_dir().join(format!("utp-analyze-deny-{}", std::process::id()));
    let tpm_src = root.join("crates/tpm/src");
    std::fs::create_dir_all(&tpm_src).expect("create fake workspace");
    let leaky = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/taint/leaky.rs"),
    )
    .expect("read leaky fixture");
    std::fs::write(tpm_src.join("leaky.rs"), leaky).expect("write fixture");

    let out = bin()
        .args(["--root".as_ref(), root.as_os_str()])
        .args(["--format", "json"])
        .output()
        .expect("run utp-analyze");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(1),
        "deny findings must exit 1 in JSON mode:\n{stdout}"
    );
    assert!(stdout.contains("\"secret-taint\""), "stdout:\n{stdout}");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn missing_flag_operand_is_a_usage_error() {
    for flag in [
        "--dataflow-report",
        "--tcb-report",
        "--root",
        "--format",
        "--pass",
        "--authz-report",
        "--check-authz-spec",
    ] {
        let out = bin().arg(flag).output().expect("run utp-analyze");
        assert_eq!(
            out.status.code(),
            Some(2),
            "`utp-analyze {flag}` (no operand) must exit 2, stderr:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn unknown_argument_is_a_usage_error() {
    let out = bin().arg("--no-such-flag").output().expect("run");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown argument"));
}
