//! E10 — persistent `VerifierService` throughput vs. the one-shot batch
//! pipeline, across shard counts, with cert-cache hit rate.
//!
//! Host-measured like E4: the RSA verifies are our actual code. The
//! legacy baseline (`verify_batch_parallel`) runs with the certificate
//! cache disabled — its historical cost model revalidated the AIK
//! certificate on every job — so the service rows isolate what sharding
//! plus caching buy at equal thread count.
//!
//! Each service run carries a `utp-trace` flight recorder: workers emit
//! volatile `svc.job` records (queue wait + verify CPU per job), the
//! submitter emits deterministic `svc.submit` events, and the row's
//! latency distributions are log-scale histograms folded straight from
//! those records. The canonical export (submitter side only) is
//! byte-identical across identical runs.
//!
//! Regenerate: `cargo run -p utp-bench --bin e10_service`

use crate::experiments::e4_server_throughput::{self as e4, ThroughputRow};
use crate::table;
use std::sync::Arc;
use std::time::{Duration, Instant};
use utp_server::metrics::throughput;
use utp_server::pipeline::verify_batch_parallel;
use utp_server::service::{ServiceConfig, VerifierService};
use utp_trace::{keys, names, Export, LatencyHistogram, Recorder, Value};

/// One (threads × shards) service measurement.
#[derive(Debug, Clone)]
pub struct ServiceRow {
    /// Worker threads.
    pub threads: usize,
    /// Nonce-settlement shards.
    pub shards: usize,
    /// Evidence submissions verified (all settling).
    pub jobs: usize,
    /// Wall-clock elapsed.
    pub elapsed: Duration,
    /// Settled verifications per second.
    pub ops_per_sec: f64,
    /// Fraction of AIK lookups served from the cert cache.
    pub cache_hit_rate: f64,
    /// Host-measured enqueue-to-dequeue wait, from `svc.job` records.
    pub wait: LatencyHistogram,
    /// Host-measured verification CPU, from `svc.job` records.
    pub verify: LatencyHistogram,
}

/// The experiment output: legacy baseline rows plus service rows.
#[derive(Debug, Clone)]
pub struct E10Report {
    /// `verify_batch_parallel` at each thread count (cache disabled).
    pub legacy: Vec<ThroughputRow>,
    /// `VerifierService` at each thread × shard combination.
    pub service: Vec<ServiceRow>,
    /// Concatenated canonical JSONL exports (one block per service
    /// combination) — deterministic across identical runs.
    pub canonical_trace: String,
}

/// Folds the per-job host measurements out of a recording.
fn job_histograms(recorder: &Recorder) -> (LatencyHistogram, LatencyHistogram) {
    let mut wait = LatencyHistogram::new();
    let mut verify = LatencyHistogram::new();
    for rec in recorder.records() {
        if rec.name != names::SVC_JOB {
            continue;
        }
        for (k, v) in &rec.fields {
            if let Value::HostNs(ns) = v {
                match *k {
                    keys::WAIT_HOST => wait.record_ns(*ns),
                    keys::VERIFY_HOST => verify.record_ns(*ns),
                    _ => {}
                }
            }
        }
    }
    (wait, verify)
}

/// Runs the comparison. Nonces are consumed by settlement, so each
/// service row gets a fresh service with the same requests re-registered.
pub fn run(
    jobs_n: usize,
    key_bits: usize,
    thread_counts: &[usize],
    shard_counts: &[usize],
) -> E10Report {
    let world = e4::build_world(jobs_n, key_bits);
    let legacy = thread_counts
        .iter()
        .map(|&threads| {
            let start = Instant::now();
            let results = verify_batch_parallel(&world.ca_key, &world.pals, &world.jobs, threads);
            let elapsed = start.elapsed();
            assert!(results.iter().all(|r| r.is_ok()), "all jobs genuine");
            ThroughputRow {
                threads,
                jobs: world.jobs.len(),
                elapsed,
                ops_per_sec: throughput(world.jobs.len(), elapsed),
            }
        })
        .collect();
    let mut service_rows = Vec::new();
    let mut canonical_trace = String::new();
    for &threads in thread_counts {
        for &shards in shard_counts {
            let recorder = Arc::new(Recorder::new());
            let mut config = ServiceConfig::new(threads, shards);
            config.trusted_pals = world.pals.clone();
            config.recorder = Some(Arc::clone(&recorder));
            let service = VerifierService::start(world.ca_key.clone(), config);
            for request in &world.requests {
                service.register(request, world.now);
            }
            let start = Instant::now();
            let verdicts = {
                let _sink = recorder.install("submit");
                service.verify_evidence_batch(world.evidence.clone(), world.now)
            };
            let elapsed = start.elapsed();
            assert!(verdicts.iter().all(|v| v.is_ok()), "all evidence genuine");
            let stats = service.shutdown();
            assert_eq!(stats.totals().accepted as usize, world.evidence.len());
            let (wait, verify) = job_histograms(&recorder);
            canonical_trace.push_str(&recorder.export_jsonl(Export::Canonical));
            service_rows.push(ServiceRow {
                threads,
                shards,
                jobs: world.evidence.len(),
                elapsed,
                ops_per_sec: throughput(world.evidence.len(), elapsed),
                cache_hit_rate: stats.cert_cache_hit_rate(),
                wait,
                verify,
            });
        }
    }
    E10Report {
        legacy,
        service: service_rows,
        canonical_trace,
    }
}

/// Renders the E10 table: legacy rows first (no shards, no cache, no
/// flight recording), then the service grid with trace-derived queue
/// wait and verify-CPU percentiles.
pub fn render(report: &E10Report) -> String {
    let mut rows: Vec<Vec<String>> = report
        .legacy
        .iter()
        .map(|r| {
            vec![
                "batch".to_string(),
                r.threads.to_string(),
                "-".to_string(),
                r.jobs.to_string(),
                table::ms(r.elapsed),
                format!("{:.0}", r.ops_per_sec),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]
        })
        .collect();
    rows.extend(report.service.iter().map(|r| {
        vec![
            "service".to_string(),
            r.threads.to_string(),
            r.shards.to_string(),
            r.jobs.to_string(),
            table::ms(r.elapsed),
            format!("{:.0}", r.ops_per_sec),
            format!("{:.2}", r.cache_hit_rate),
            table::ms(r.wait.p50()),
            table::ms(r.wait.p99()),
            format!("{:.1}", r.verify.p50().as_secs_f64() * 1e6),
        ]
    }));
    table::render(
        "E10 - VerifierService vs one-shot batch pipeline (host-measured, from utp-trace)",
        &[
            "pipeline",
            "threads",
            "shards",
            "jobs",
            "elapsed(ms)",
            "verifications/s",
            "cache hit",
            "wait p50(ms)",
            "wait p99(ms)",
            "cpu p50(us)",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_at_least_matches_legacy_at_equal_threads() {
        // The service skips one of the two RSA verifies per repeat-client
        // job via the cert cache, so at equal thread count it must not be
        // slower than the cache-less batch pipeline.
        let report = run(64, 512, &[2], &[4]);
        let legacy = report.legacy[0].ops_per_sec;
        let service = report.service[0].ops_per_sec;
        assert!(
            service >= legacy,
            "service {service:.0}/s < legacy {legacy:.0}/s"
        );
    }

    #[test]
    fn single_client_workload_hits_the_cert_cache() {
        let report = run(32, 512, &[1], &[1]);
        // One client: first lookup misses, the remaining 31 hit.
        assert!(
            report.service[0].cache_hit_rate > 0.9,
            "hit rate {}",
            report.service[0].cache_hit_rate
        );
    }

    #[test]
    fn every_combination_settles_the_whole_batch() {
        // `run` itself asserts all verdicts Ok and accepted == jobs for
        // each combination; this pins the row count.
        let report = run(16, 512, &[1, 2], &[1, 2]);
        assert_eq!(report.legacy.len(), 2);
        assert_eq!(report.service.len(), 4);
    }

    #[test]
    fn trace_histograms_cover_every_job() {
        let report = run(24, 512, &[2], &[2]);
        let row = &report.service[0];
        assert_eq!(row.wait.count() as usize, row.jobs);
        assert_eq!(row.verify.count() as usize, row.jobs);
        assert!(row.verify.sum() > Duration::ZERO, "RSA verifies cost CPU");
        assert!(row.verify.p50() <= row.verify.p99());
    }

    #[test]
    fn two_runs_export_byte_identical_canonical_jsonl() {
        // The canonical export holds only submitter-side events stamped
        // with the deterministic virtual clock; scheduling noise lives in
        // volatile records that the export drops.
        let a = run(16, 512, &[2], &[2]).canonical_trace;
        let b = run(16, 512, &[2], &[2]).canonical_trace;
        assert_eq!(a, b);
        assert!(a.lines().count() > 16, "submit events + trailer per combo");
    }
}
