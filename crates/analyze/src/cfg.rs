//! Statement-level control-flow graphs over the token stream.
//!
//! [`build_cfg`] lowers one function body (a brace-delimited token
//! range) into basic blocks of statements connected by edges for the
//! control constructs the passes care about: `if`/`else if`/`else`,
//! `match` arms, `loop`/`while`/`for` (with back edges and labeled
//! `break`/`continue`), `return`, and `?` (an extra edge to the exit
//! block from any statement that can early-return).
//!
//! This is an *approximation*, sound for the analyses built on it:
//!
//! * A statement is a top-level token run up to `;` (nested brace /
//!   paren / bracket groups are skipped), so `let x = if c { a } else
//!   { b };` is one straight-line statement — expression-level control
//!   flow inside a statement is not split. Closure bodies likewise stay
//!   inside their statement.
//! * `match` is treated as exhaustive (no direct scrutinee → join
//!   edge); `if` without `else` gets the fall-through edge.
//! * A labeled `break`/`continue` targets its named loop; an unknown
//!   label falls back to the innermost loop.
//! * Anything the lowerer cannot classify (unbalanced brackets, a
//!   missing arm arrow, a stray `break`) abandons structure: the whole
//!   body becomes a single block whose statements are the naive `;`
//!   splits, flagged [`Cfg::fallback`]. Passes must degrade to their
//!   flow-insensitive behavior on fallback CFGs — in particular, no
//!   kill (zeroize, drop, bounds-check) may be trusted, because
//!   ordering is no longer known.
//!
//! Unreachable blocks (code after `return`, after a `loop` with no
//! `break`) end up with no predecessors; the solver leaves their entry
//! state `None` and flow-sensitive passes skip them.

use crate::items::matching;
use crate::lexer::{Token, TokenKind};

/// What kind of statement this is, for transfer functions that treat
/// conditions or loop headers specially.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// An ordinary statement (or tail expression).
    Normal,
    /// An `if`/`else if` condition.
    If,
    /// A `while` condition (loop header).
    While,
    /// A `for PAT in EXPR` header (loop header; binds the pattern).
    For,
    /// A `match` scrutinee.
    Match,
    /// One `match` arm's pattern (incl. any guard). Kept distinct from
    /// [`Role::Match`] so branch-condition rules don't treat pattern
    /// *bindings* (`Some(key) =>`) as secret-dependent branching.
    MatchArm,
}

/// One statement: a token range `[lo, hi)` into the file's stream.
#[derive(Debug, Clone)]
pub struct Stmt {
    /// First token index (absolute, into `SourceFile::tokens`).
    pub lo: usize,
    /// One past the last token index.
    pub hi: usize,
    /// 1-based line of the first token.
    pub line: u32,
    /// Statement classification.
    pub role: Role,
}

/// A basic block: straight-line statements plus successor edges.
#[derive(Debug, Default, Clone)]
pub struct Block {
    /// Statements in execution order.
    pub stmts: Vec<Stmt>,
    /// Successor block indices.
    pub succs: Vec<usize>,
}

/// The control-flow graph of one function body.
#[derive(Debug)]
pub struct Cfg {
    /// All blocks; `blocks[entry]` is the entry.
    pub blocks: Vec<Block>,
    /// Entry block index.
    pub entry: usize,
    /// Synthetic exit block (no statements, no successors). `return`,
    /// `?` and the body's fall-through all edge here.
    pub exit: usize,
    /// True when structure could not be recovered and the CFG is the
    /// single-block over-approximation (see module docs).
    pub fallback: bool,
}

impl Cfg {
    /// Total number of statements across all blocks.
    pub fn stmt_count(&self) -> usize {
        self.blocks.iter().map(|b| b.stmts.len()).sum()
    }

    /// Predecessor lists, computed on demand.
    pub fn preds(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, b) in self.blocks.iter().enumerate() {
            for &s in &b.succs {
                preds[s].push(i);
            }
        }
        preds
    }
}

/// Builds the CFG for a function body given as the `(open, close)`
/// token indices of its braces (see `FnItem::body`).
pub fn build_cfg(tokens: &[Token], body: (usize, usize)) -> Cfg {
    let (open, close) = body;
    let interior = (open + 1, close.min(tokens.len()));
    let mut b = Builder {
        toks: tokens,
        blocks: vec![Block::default(), Block::default()],
        exit: 1,
        loops: Vec::new(),
        failed: false,
    };
    let last = b.lower(interior.0, interior.1, 0);
    if b.failed || b.blocks.len() > MAX_BLOCKS {
        return fallback_cfg(tokens, interior);
    }
    b.edge(last, b.exit);
    Cfg {
        blocks: b.blocks,
        entry: 0,
        exit: 1,
        fallback: false,
    }
}

/// Runaway guard: no hand-written function needs this many blocks.
const MAX_BLOCKS: usize = 4096;

/// The single-block over-approximation: naive `;` splits, no edges
/// except entry → exit.
fn fallback_cfg(tokens: &[Token], interior: (usize, usize)) -> Cfg {
    let mut stmts = Vec::new();
    let mut lo = interior.0;
    for j in interior.0..interior.1 {
        if tokens[j].is_punct(";") {
            stmts.push(Stmt {
                lo,
                hi: j + 1,
                line: tokens.get(lo).map_or(0, |t| t.line),
                role: Role::Normal,
            });
            lo = j + 1;
        }
    }
    if lo < interior.1 {
        stmts.push(Stmt {
            lo,
            hi: interior.1,
            line: tokens.get(lo).map_or(0, |t| t.line),
            role: Role::Normal,
        });
    }
    Cfg {
        blocks: vec![
            Block {
                stmts,
                succs: vec![1],
            },
            Block::default(),
        ],
        entry: 0,
        exit: 1,
        fallback: true,
    }
}

struct LoopCtx {
    label: Option<String>,
    head: usize,
    /// Blocks that `break` out of this loop; connected to the
    /// after-block once the loop is fully lowered.
    breaks: Vec<usize>,
}

struct Builder<'a> {
    toks: &'a [Token],
    blocks: Vec<Block>,
    exit: usize,
    loops: Vec<LoopCtx>,
    failed: bool,
}

impl<'a> Builder<'a> {
    fn new_block(&mut self) -> usize {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    fn push_stmt(&mut self, block: usize, lo: usize, hi: usize, role: Role) {
        if lo >= hi {
            return;
        }
        self.blocks[block].stmts.push(Stmt {
            lo,
            hi,
            line: self.toks[lo].line,
            role,
        });
    }

    /// Lowers the token range `[i, end)` (a block interior) starting in
    /// `cur`; returns the fall-through block (which may be a fresh
    /// predecessor-less block if the range diverges).
    fn lower(&mut self, mut i: usize, end: usize, mut cur: usize) -> usize {
        while i < end && !self.failed {
            let t = &self.toks[i];
            if t.is_punct(";") {
                i += 1;
                continue;
            }
            if t.is_punct("{") {
                // Bare block.
                let Some(close) = matching(self.toks, i, "{", "}") else {
                    self.failed = true;
                    return cur;
                };
                cur = self.lower(i + 1, close.min(end), cur);
                i = close + 1;
                continue;
            }
            // `'label: loop/while/for`.
            if t.kind == TokenKind::Lifetime
                && self.toks.get(i + 1).is_some_and(|n| n.is_punct(":"))
                && self
                    .toks
                    .get(i + 2)
                    .is_some_and(|n| n.is_ident("loop") || n.is_ident("while") || n.is_ident("for"))
            {
                let label = Some(t.text.clone());
                let (ni, nc) = self.lower_loop(i + 2, end, cur, label);
                i = ni;
                cur = nc;
                continue;
            }
            if t.kind == TokenKind::Ident {
                match t.text.as_str() {
                    "if" => {
                        let (ni, nc) = self.lower_if(i, end, cur);
                        i = ni;
                        cur = nc;
                        continue;
                    }
                    "match" => {
                        let (ni, nc) = self.lower_match(i, end, cur);
                        i = ni;
                        cur = nc;
                        continue;
                    }
                    "loop" | "while" | "for" => {
                        let (ni, nc) = self.lower_loop(i, end, cur, None);
                        i = ni;
                        cur = nc;
                        continue;
                    }
                    "return" => {
                        let hi = self.stmt_end(i, end);
                        self.push_stmt(cur, i, hi, Role::Normal);
                        self.edge(cur, self.exit);
                        cur = self.new_block(); // unreachable continuation
                        i = hi;
                        continue;
                    }
                    "break" | "continue" => {
                        let hi = self.stmt_end(i, end);
                        self.push_stmt(cur, i, hi, Role::Normal);
                        let label = self
                            .toks
                            .get(i + 1)
                            .filter(|n| n.kind == TokenKind::Lifetime)
                            .map(|n| n.text.clone());
                        let Some(target) = self.loop_target(label.as_deref()) else {
                            // `break` outside any loop: structure lost.
                            self.failed = true;
                            return cur;
                        };
                        if self.toks[i].is_ident("break") {
                            self.loops[target].breaks.push(cur);
                        } else {
                            let head = self.loops[target].head;
                            self.edge(cur, head);
                        }
                        cur = self.new_block();
                        i = hi;
                        continue;
                    }
                    _ => {}
                }
            }
            // Ordinary statement.
            let hi = self.stmt_end(i, end);
            self.push_stmt(cur, i, hi, Role::Normal);
            if self.range_may_early_return(i, hi) {
                self.edge(cur, self.exit);
            }
            // A statement-initial `return` is handled above; an embedded
            // diverging expression keeps the fall-through conservatively.
            i = hi;
        }
        cur
    }

    /// Innermost loop matching `label` (or just innermost when `None`
    /// or unknown).
    fn loop_target(&self, label: Option<&str>) -> Option<usize> {
        if let Some(l) = label {
            if let Some(idx) = self
                .loops
                .iter()
                .rposition(|c| c.label.as_deref() == Some(l))
            {
                return Some(idx);
            }
        }
        self.loops.len().checked_sub(1)
    }

    /// End (exclusive) of the ordinary statement starting at `i`: the
    /// token after the first `;` at group depth 0, or the end of the
    /// range.
    fn stmt_end(&self, i: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut j = i;
        while j < end {
            let t = &self.toks[j];
            if t.is_punct("{") || t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct("}") || t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
                if depth < 0 {
                    return j; // tail expression at block end
                }
            } else if t.is_punct(";") && depth == 0 {
                return j + 1;
            }
            j += 1;
        }
        end
    }

    /// Does `[lo, hi)` contain a `?` or an embedded `return` (an early
    /// exit from inside an otherwise ordinary statement)?
    fn range_may_early_return(&self, lo: usize, hi: usize) -> bool {
        self.toks[lo..hi]
            .iter()
            .any(|t| t.is_punct("?") || t.is_ident("return"))
    }

    /// Finds the `{` opening the body after a condition starting at
    /// `from` (group depth 0; conditions cannot contain bare struct
    /// literals, so the first depth-0 `{` is the body).
    fn body_open(&self, from: usize, end: usize) -> Option<usize> {
        let mut j = from;
        // `if let` / `while let`: the *pattern* side may contain struct
        // braces (`WorkItem::Settle { .. }`), so skip to the binding's
        // `=` first — the scrutinee expression after it, like plain
        // conditions, cannot contain a bare struct literal. (`..=` and
        // `=>` lex as single tokens, so a lone `=` is unambiguous.)
        if self.toks.get(from).is_some_and(|t| t.is_ident("let")) {
            let mut group = 0i32;
            let mut brace = 0i32;
            let mut k = from + 1;
            while k < end {
                let t = &self.toks[k];
                if t.is_punct("(") || t.is_punct("[") {
                    group += 1;
                } else if t.is_punct(")") || t.is_punct("]") {
                    group -= 1;
                } else if t.is_punct("{") {
                    brace += 1;
                } else if t.is_punct("}") {
                    brace -= 1;
                } else if t.is_punct("=") && group == 0 && brace == 0 {
                    j = k + 1;
                    break;
                }
                k += 1;
            }
        }
        let mut depth = 0i32;
        while j < end {
            let t = &self.toks[j];
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if t.is_punct("{") && depth == 0 {
                return Some(j);
            }
            j += 1;
        }
        None
    }

    /// Lowers an `if`/`else if`/`else` chain starting at the `if` token
    /// `i`; returns `(resume index, join block)`.
    fn lower_if(&mut self, mut i: usize, end: usize, mut cur: usize) -> (usize, usize) {
        let mut branch_exits: Vec<usize> = Vec::new();
        let resume;
        loop {
            // `i` is at `if`.
            let Some(open) = self.body_open(i + 1, end) else {
                self.failed = true;
                return (end, cur);
            };
            let Some(close) = matching(self.toks, open, "{", "}") else {
                self.failed = true;
                return (end, cur);
            };
            self.push_stmt(cur, i + 1, open, Role::If);
            if self.range_may_early_return(i + 1, open) {
                self.edge(cur, self.exit);
            }
            let then_entry = self.new_block();
            self.edge(cur, then_entry);
            let then_exit = self.lower(open + 1, close, then_entry);
            branch_exits.push(then_exit);
            // `else`?
            if self.toks.get(close + 1).is_some_and(|t| t.is_ident("else")) {
                if self.toks.get(close + 2).is_some_and(|t| t.is_ident("if")) {
                    // `else if`: evaluate the next condition in a block
                    // reached only when this one was false.
                    let else_entry = self.new_block();
                    self.edge(cur, else_entry);
                    cur = else_entry;
                    i = close + 2;
                    continue;
                }
                let Some(eopen) = self
                    .toks
                    .get(close + 2)
                    .filter(|t| t.is_punct("{"))
                    .map(|_| close + 2)
                else {
                    self.failed = true;
                    return (end, cur);
                };
                let Some(eclose) = matching(self.toks, eopen, "{", "}") else {
                    self.failed = true;
                    return (end, cur);
                };
                let else_entry = self.new_block();
                self.edge(cur, else_entry);
                let else_exit = self.lower(eopen + 1, eclose, else_entry);
                branch_exits.push(else_exit);
                resume = eclose + 1;
            } else {
                // No else: the condition block falls through.
                branch_exits.push(cur);
                resume = close + 1;
            }
            break;
        }
        let join = self.new_block();
        for e in branch_exits {
            self.edge(e, join);
        }
        (resume, join)
    }

    /// Lowers a `match` starting at the keyword; returns
    /// `(resume index, join block)`.
    fn lower_match(&mut self, i: usize, end: usize, cur: usize) -> (usize, usize) {
        let Some(open) = self.body_open(i + 1, end) else {
            self.failed = true;
            return (end, cur);
        };
        let Some(close) = matching(self.toks, open, "{", "}") else {
            self.failed = true;
            return (end, cur);
        };
        self.push_stmt(cur, i + 1, open, Role::Match);
        if self.range_may_early_return(i + 1, open) {
            self.edge(cur, self.exit);
        }
        let mut arm_exits: Vec<usize> = Vec::new();
        let mut j = open + 1;
        while j < close && !self.failed {
            if self.toks[j].is_punct(",") {
                j += 1;
                continue;
            }
            // Pattern (and optional guard) up to `=>` at depth 0.
            let Some(arrow) = self.find_at_depth0(j, close, "=>") else {
                self.failed = true;
                return (end, cur);
            };
            let arm = self.new_block();
            self.edge(cur, arm);
            self.push_stmt(arm, j, arrow, Role::MatchArm);
            let body_start = arrow + 1;
            let exit = if self.toks.get(body_start).is_some_and(|t| t.is_punct("{")) {
                let Some(bclose) = matching(self.toks, body_start, "{", "}") else {
                    self.failed = true;
                    return (end, cur);
                };
                j = bclose + 1;
                self.lower(body_start + 1, bclose, arm)
            } else {
                // Expression arm up to the depth-0 `,` (or the match end).
                let stop = self.find_at_depth0(body_start, close, ",").unwrap_or(close);
                j = stop + 1;
                self.lower(body_start, stop, arm)
            };
            arm_exits.push(exit);
        }
        // Rust matches are exhaustive: no direct scrutinee → join edge.
        let join = self.new_block();
        for e in arm_exits {
            self.edge(e, join);
        }
        (close + 1, join)
    }

    /// Lowers `loop`/`while`/`for` starting at the keyword; returns
    /// `(resume index, after block)`.
    fn lower_loop(
        &mut self,
        i: usize,
        end: usize,
        cur: usize,
        label: Option<String>,
    ) -> (usize, usize) {
        let kw = self.toks[i].text.clone();
        let Some(open) = self.body_open(i + 1, end) else {
            self.failed = true;
            return (end, cur);
        };
        let Some(close) = matching(self.toks, open, "{", "}") else {
            self.failed = true;
            return (end, cur);
        };
        let head = self.new_block();
        self.edge(cur, head);
        let role = match kw.as_str() {
            "while" => Role::While,
            "for" => Role::For,
            _ => Role::Normal,
        };
        self.push_stmt(head, i + 1, open, role);
        if kw != "loop" && self.range_may_early_return(i + 1, open) {
            self.edge(head, self.exit);
        }
        self.loops.push(LoopCtx {
            label,
            head,
            breaks: Vec::new(),
        });
        let body_entry = self.new_block();
        self.edge(head, body_entry);
        let body_exit = self.lower(open + 1, close, body_entry);
        self.edge(body_exit, head); // back edge
        let ctx = self.loops.pop().expect("loop ctx pushed above");
        let after = self.new_block();
        if kw != "loop" {
            // Condition false / iterator exhausted.
            self.edge(head, after);
        }
        for b in ctx.breaks {
            self.edge(b, after);
        }
        (close + 1, after)
    }

    /// First `what` punct in `[from, to)` at group depth 0.
    fn find_at_depth0(&self, from: usize, to: usize, what: &str) -> Option<usize> {
        let mut depth = 0i32;
        let mut j = from;
        while j < to {
            let t = &self.toks[j];
            if t.is_punct("{") || t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct("}") || t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if depth == 0 && t.is_punct(what) {
                return Some(j);
            }
            j += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    /// Builds the CFG of the first fn in `src`.
    fn cfg_of(src: &str) -> (Vec<Token>, Cfg) {
        let lexed = lex(src);
        let items = crate::items::parse_items(&lexed.tokens);
        let body = items.fns[0].body.expect("fn has a body");
        let cfg = build_cfg(&lexed.tokens, body);
        (lexed.tokens, cfg)
    }

    /// All statement texts of one block, joined.
    fn block_text(toks: &[Token], cfg: &Cfg, b: usize) -> String {
        cfg.blocks[b]
            .stmts
            .iter()
            .flat_map(|s| toks[s.lo..s.hi].iter().map(|t| t.text.as_str()))
            .collect::<Vec<_>>()
            .join(" ")
    }

    #[test]
    fn straight_line_is_one_block() {
        let (_, cfg) = cfg_of("fn f() { let a = 1; let b = a + 2; b }");
        assert!(!cfg.fallback);
        assert_eq!(cfg.blocks[cfg.entry].stmts.len(), 3);
        assert_eq!(cfg.blocks[cfg.entry].succs, vec![cfg.exit]);
    }

    #[test]
    fn if_else_diamonds_join() {
        let (toks, cfg) = cfg_of("fn f(c: bool) { if c { one(); } else { two(); } after(); }");
        assert!(!cfg.fallback);
        // entry(cond) -> then, else; both -> join(after) -> exit.
        let entry = &cfg.blocks[cfg.entry];
        assert_eq!(entry.stmts.len(), 1);
        assert_eq!(entry.stmts[0].role, Role::If);
        assert_eq!(entry.succs.len(), 2);
        let mut joins: Vec<usize> = entry
            .succs
            .iter()
            .map(|&s| {
                assert_eq!(cfg.blocks[s].succs.len(), 1);
                cfg.blocks[s].succs[0]
            })
            .collect();
        joins.dedup();
        assert_eq!(joins.len(), 1);
        assert!(block_text(&toks, &cfg, joins[0]).contains("after"));
    }

    #[test]
    fn if_let_struct_pattern_brace_is_not_the_body() {
        // The pattern's `{ .. }` must not be mistaken for the branch
        // body: the condition stays one stmt and the body's two calls
        // become separate stmts in the then-block.
        let (toks, cfg) =
            cfg_of("fn f(item: Item) { if let Item::Settle { ok, .. } = item { a(); b(); } }");
        assert!(!cfg.fallback);
        let entry = &cfg.blocks[cfg.entry];
        assert_eq!(entry.stmts.len(), 1);
        assert_eq!(entry.stmts[0].role, Role::If);
        assert_eq!(entry.succs.len(), 2);
        let then = entry
            .succs
            .iter()
            .copied()
            .find(|&s| block_text(&toks, &cfg, s).contains("a"))
            .expect("then block");
        assert_eq!(cfg.blocks[then].stmts.len(), 2);
        assert!(block_text(&toks, &cfg, then).contains("b"));
    }

    #[test]
    fn if_without_else_falls_through() {
        let (_, cfg) = cfg_of("fn f(c: bool) { if c { one(); } after(); }");
        let entry = &cfg.blocks[cfg.entry];
        // cond -> then and cond -> join (the fall-through edge).
        assert_eq!(entry.succs.len(), 2);
    }

    #[test]
    fn match_arms_fan_out_without_scrutinee_join_edge() {
        let (toks, cfg) = cfg_of(
            "fn f(v: u8) { match v { 0 => zero(), 1 => { one(); } _ => other(), } after(); }",
        );
        assert!(!cfg.fallback);
        let entry = &cfg.blocks[cfg.entry];
        assert_eq!(entry.stmts[0].role, Role::Match);
        assert_eq!(entry.succs.len(), 3, "three arms");
        // The join must not be a direct successor of the scrutinee block.
        for &arm in &entry.succs {
            assert!(
                !block_text(&toks, &cfg, arm).contains("after"),
                "arm blocks hold arm code only"
            );
        }
    }

    #[test]
    fn loops_have_back_edges_and_break_targets() {
        let (toks, cfg) = cfg_of("fn f() { loop { step(); if done() { break; } } after(); }");
        assert!(!cfg.fallback);
        // Some block must edge back to the loop head, and the after
        // block must be reachable only via the break.
        let after = (0..cfg.blocks.len())
            .find(|&b| block_text(&toks, &cfg, b).contains("after"))
            .expect("after block");
        let preds = cfg.preds();
        assert_eq!(preds[after].len(), 1, "only the break reaches after");
        let breaker = preds[after][0];
        assert!(block_text(&toks, &cfg, breaker).contains("break"));
    }

    #[test]
    fn while_condition_exits_to_after() {
        let (toks, cfg) = cfg_of("fn f(n: u32) { while n > 0 { work(); } after(); }");
        let head = (0..cfg.blocks.len())
            .find(|&b| cfg.blocks[b].stmts.iter().any(|s| s.role == Role::While))
            .expect("while head");
        // Head edges to both the body and the after block.
        assert_eq!(cfg.blocks[head].succs.len(), 2);
        let after = (0..cfg.blocks.len())
            .find(|&b| block_text(&toks, &cfg, b).contains("after"))
            .expect("after block");
        assert!(cfg.blocks[head].succs.contains(&after));
    }

    #[test]
    fn labeled_break_targets_the_outer_loop() {
        let (toks, cfg) = cfg_of(
            "fn f() { 'outer: loop { loop { if c() { break 'outer; } inner(); } } after(); }",
        );
        assert!(!cfg.fallback);
        let after = (0..cfg.blocks.len())
            .find(|&b| block_text(&toks, &cfg, b).contains("after"))
            .expect("after block");
        let preds = cfg.preds();
        // Reached via the labeled break (from inside the inner loop),
        // not via the inner loop's after-block.
        assert_eq!(preds[after].len(), 1);
        assert!(block_text(&toks, &cfg, preds[after][0]).contains("break"));
    }

    #[test]
    fn return_diverges_and_question_mark_edges_to_exit() {
        let (toks, cfg) = cfg_of(
            "fn f(c: bool) -> Result<u32, E> { if c { return Err(e); } let v = parse()?; Ok(v) }",
        );
        assert!(!cfg.fallback);
        let ret_block = (0..cfg.blocks.len())
            .find(|&b| block_text(&toks, &cfg, b).contains("return"))
            .expect("return block");
        assert_eq!(cfg.blocks[ret_block].succs, vec![cfg.exit]);
        let q_block = (0..cfg.blocks.len())
            .find(|&b| block_text(&toks, &cfg, b).contains("parse"))
            .expect("? block");
        assert!(cfg.blocks[q_block].succs.contains(&cfg.exit), "? edge");
    }

    #[test]
    fn code_after_return_is_unreachable() {
        let (toks, cfg) = cfg_of("fn f() { return; dead(); }");
        let dead = (0..cfg.blocks.len())
            .find(|&b| block_text(&toks, &cfg, b).contains("dead"))
            .expect("dead block");
        assert!(cfg.preds()[dead].is_empty());
    }

    #[test]
    fn expression_if_stays_inside_its_statement() {
        let (_, cfg) = cfg_of("fn f(c: bool) { let x = if c { 1 } else { 2 }; use_it(x); }");
        assert!(!cfg.fallback);
        assert_eq!(
            cfg.blocks[cfg.entry].stmts.len(),
            2,
            "let-if is one statement"
        );
    }

    #[test]
    fn stray_break_falls_back_to_single_block() {
        let (_, cfg) = cfg_of("fn f() { break; }");
        assert!(cfg.fallback);
        assert_eq!(cfg.blocks.len(), 2);
        assert!(!cfg.blocks[cfg.entry].stmts.is_empty());
    }

    #[test]
    fn if_let_chains_and_else_if_lower() {
        let (toks, cfg) = cfg_of(
            "fn f(o: Option<u32>) { if let Some(v) = o { a(v); } else if o.is_none() { b(); } else { c(); } done(); }",
        );
        assert!(!cfg.fallback);
        let done = (0..cfg.blocks.len())
            .find(|&b| block_text(&toks, &cfg, b).contains("done"))
            .expect("join block");
        // All three branches reach the join.
        assert_eq!(cfg.preds()[done].len(), 3);
    }
}
