//! The service provider's verifier — the party that gains assurance.
//!
//! The verifier trusts: the privacy CA key, the published measurement of
//! the confirmation PAL, and TPM hardware semantics. It trusts *nothing*
//! on the client machine. Verification of one [`Evidence`] establishes:
//!
//! 1. the quote was signed by an AIK certified by the privacy CA
//!    (⇒ a genuine TPM produced it);
//! 2. the quoted PCR 17 equals `H(H(0 ∥ pal) ∥ io_digest(request, token))`
//!    (⇒ the pinned PAL ran via DRTM and produced exactly this token for
//!    exactly this request);
//! 3. the quote's `externalData` is a nonce this verifier issued, unexpired
//!    and never used before (⇒ fresh, not a replay);
//! 4. the token's verdict is `Confirmed` (⇒ the human approved).

use crate::ca::AikCertificate;
use crate::protocol::{ConfirmMode, Evidence, Transaction, TransactionRequest, Verdict};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::time::Duration;
use utp_crypto::rsa::RsaPublicKey;
use utp_crypto::sha1::Sha1Digest;
use utp_flicker::attestation::{check_attested_session, AttestationFailure};
use utp_flicker::runtime::io_digest;

/// Why evidence was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum VerifyError {
    /// Evidence or token bytes failed to parse.
    MalformedEvidence,
    /// The nonce was never issued by this verifier.
    UnknownNonce,
    /// The nonce was already consumed (replay attack).
    Replayed,
    /// The nonce expired before evidence arrived.
    Expired,
    /// The AIK certificate did not validate under the CA key.
    BadCertificate,
    /// The token's transaction digest does not match the issued request.
    TokenMismatch,
    /// The quoted PCR 17 does not correspond to any trusted PAL running
    /// with this request/token pair.
    UntrustedPal,
    /// The quote signature or nonce binding failed.
    BadQuote,
    /// Everything checked out but the human did not confirm.
    NotConfirmed(Verdict),
    /// The verification pipeline was shut down (or lost a worker) before
    /// this submission completed; retryable by the client.
    ServiceUnavailable,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::MalformedEvidence => write!(f, "evidence failed to parse"),
            VerifyError::UnknownNonce => write!(f, "nonce was never issued"),
            VerifyError::Replayed => write!(f, "nonce already consumed"),
            VerifyError::Expired => write!(f, "nonce expired"),
            VerifyError::BadCertificate => write!(f, "aik certificate invalid"),
            VerifyError::TokenMismatch => write!(f, "token does not match issued transaction"),
            VerifyError::UntrustedPal => write!(f, "pcr17 does not match any trusted pal"),
            VerifyError::BadQuote => write!(f, "quote signature or nonce binding invalid"),
            VerifyError::NotConfirmed(v) => write!(f, "human verdict was {:?}, not confirmed", v),
            VerifyError::ServiceUnavailable => {
                write!(f, "verification service unavailable; retry")
            }
        }
    }
}

impl Error for VerifyError {}

/// Verifier policy knobs.
#[derive(Debug, Clone)]
pub struct VerifierConfig {
    /// How long an issued nonce stays valid (virtual time).
    pub nonce_ttl: Duration,
    /// Measurements of PAL versions the provider accepts.
    pub trusted_pals: HashSet<Sha1Digest>,
    /// Default confirmation mode for issued requests.
    pub default_mode: ConfirmMode,
}

impl Default for VerifierConfig {
    fn default() -> Self {
        let mut trusted_pals = HashSet::new();
        trusted_pals.insert(crate::pal::ConfirmationPal::v1().measurement());
        VerifierConfig {
            nonce_ttl: Duration::from_secs(300),
            trusted_pals,
            default_mode: ConfirmMode::TypeCode,
        }
    }
}

/// A successfully verified, human-confirmed transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifiedTransaction {
    /// The transaction as issued.
    pub transaction: Transaction,
    /// Confirmation mode used.
    pub mode: ConfirmMode,
    /// Code attempts the human needed.
    pub attempts: u32,
}

/// Outcome counters for experiments and dashboards.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifierStats {
    /// Requests issued.
    pub issued: u64,
    /// Evidence accepted.
    pub accepted: u64,
    /// Rejections by reason.
    pub rejected: HashMap<String, u64>,
}

/// An issued-but-unsettled confirmation request, as the settlement ledger
/// tracks it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingNonce {
    /// Canonical bytes of the issued request (the PAL's exact input).
    pub request_bytes: Vec<u8>,
    /// The transaction awaiting confirmation.
    pub transaction: Transaction,
    /// Virtual time the request was issued.
    pub issued_at: Duration,
}

/// The serialization point of verification: single-use nonce lifecycle.
///
/// Everything else the verifier does is stateless cryptography; this
/// ledger is the one structure that must be consulted and mutated per
/// evidence submission. Splitting it out of [`Verifier`] lets the server's
/// `VerifierService` shard settlement by nonce (`hash(nonce) % shards`)
/// so no global lock serializes the pipeline.
///
/// The intended call sequence for a concurrent verifier is
/// [`NonceLedger::preflight`] (read-mostly, before the expensive crypto)
/// followed by [`NonceLedger::settle`] (consuming, after the crypto
/// passed). Both enforce the replay/unknown/expiry rules, so a concurrent
/// duplicate submission loses the settle race and is reported as
/// [`VerifyError::Replayed`] — exactly one of N racing duplicates can
/// settle.
#[derive(Debug, Clone, Default)]
pub struct NonceLedger {
    ttl: Duration,
    pending: HashMap<[u8; 20], PendingNonce>,
    used: HashSet<[u8; 20]>,
}

impl NonceLedger {
    /// An empty ledger whose nonces expire after `ttl` of virtual time.
    pub fn new(ttl: Duration) -> Self {
        NonceLedger {
            ttl,
            pending: HashMap::new(),
            used: HashSet::new(),
        }
    }

    /// The configured nonce lifetime.
    pub fn ttl(&self) -> Duration {
        self.ttl
    }

    /// Number of outstanding (unconsumed, possibly expired) nonces.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Number of consumed nonces retained for replay detection.
    pub fn used_count(&self) -> usize {
        self.used.len()
    }

    /// Records an issued request under its nonce.
    pub fn register(&mut self, nonce: &Sha1Digest, pending: PendingNonce) {
        self.pending.insert(*nonce.as_bytes(), pending);
    }

    /// Marks a nonce as already consumed without a pending entry —
    /// recovery support: a journaled settle decision must survive a
    /// restart as replay protection.
    pub fn restore_used(&mut self, nonce: [u8; 20]) {
        self.used.insert(nonce);
    }

    /// Iterates the outstanding (issued, unsettled) entries — snapshot
    /// support. Iteration order is unspecified.
    pub fn pending_entries(&self) -> impl Iterator<Item = (&[u8; 20], &PendingNonce)> {
        self.pending.iter()
    }

    /// Iterates the consumed-nonce set — snapshot support.
    pub fn used_entries(&self) -> impl Iterator<Item = &[u8; 20]> {
        self.used.iter()
    }

    /// Non-consuming settlement check: replay, unknown and expiry rules,
    /// returning a copy of the pending entry so the caller can run the
    /// stateless crypto without holding the ledger.
    ///
    /// Expired entries are dropped here (mirroring the serial verifier,
    /// which forgets a nonce the moment it observes it expired).
    ///
    /// # Errors
    ///
    /// [`VerifyError::Replayed`], [`VerifyError::UnknownNonce`] or
    /// [`VerifyError::Expired`].
    pub fn preflight(
        &mut self,
        nonce: &Sha1Digest,
        now: Duration,
    ) -> Result<PendingNonce, VerifyError> {
        let key = *nonce.as_bytes();
        if self.used.contains(&key) {
            return Err(VerifyError::Replayed);
        }
        let Some(pending) = self.pending.get(&key) else {
            return Err(VerifyError::UnknownNonce);
        };
        if now.saturating_sub(pending.issued_at) > self.ttl {
            self.pending.remove(&key);
            return Err(VerifyError::Expired);
        }
        Ok(pending.clone())
    }

    /// Consumes the nonce: marks it used and returns the pending entry.
    /// Call only after the stateless crypto checks passed.
    ///
    /// # Errors
    ///
    /// [`VerifyError::Replayed`] if a concurrent duplicate settled first,
    /// [`VerifyError::UnknownNonce`] / [`VerifyError::Expired`] as in
    /// [`NonceLedger::preflight`].
    pub fn settle(
        &mut self,
        nonce: &Sha1Digest,
        now: Duration,
    ) -> Result<PendingNonce, VerifyError> {
        let key = *nonce.as_bytes();
        if self.used.contains(&key) {
            return Err(VerifyError::Replayed);
        }
        let Some(pending) = self.pending.remove(&key) else {
            return Err(VerifyError::UnknownNonce);
        };
        if now.saturating_sub(pending.issued_at) > self.ttl {
            // Stays removed, matching the serial verifier's behavior of
            // forgetting a nonce the moment it observes it expired.
            return Err(VerifyError::Expired);
        }
        self.used.insert(key);
        Ok(pending)
    }

    /// Drops expired nonces (housekeeping; settlement also checks expiry).
    pub fn gc(&mut self, now: Duration) {
        let ttl = self.ttl;
        self.pending
            .retain(|_, p| now.saturating_sub(p.issued_at) <= ttl);
    }
}

/// The stateless PCR-17/quote chain check shared by the serial verifier
/// and the server-side pipelines: does any trusted PAL measurement,
/// combined with this request/token I/O digest, explain the quote?
///
/// # Errors
///
/// [`VerifyError::BadQuote`] when some trusted PAL's PCR chain matched but
/// the signature or nonce binding failed, [`VerifyError::UntrustedPal`]
/// when no trusted PAL explains the quoted PCR value.
pub fn check_quote_chain<'a>(
    aik: &RsaPublicKey,
    nonce: &Sha1Digest,
    trusted_pals: impl IntoIterator<Item = &'a Sha1Digest>,
    io: &Sha1Digest,
    quote: &utp_tpm::quote::Quote,
) -> Result<(), VerifyError> {
    let mut saw_pcr_match = false;
    for pal in trusted_pals {
        match check_attested_session(aik, nonce, pal, io, quote) {
            Ok(()) => return Ok(()),
            Err(AttestationFailure::BadQuote) => saw_pcr_match = true,
            Err(_) => {}
        }
    }
    Err(if saw_pcr_match {
        VerifyError::BadQuote
    } else {
        VerifyError::UntrustedPal
    })
}

/// The provider-side verifier with nonce lifecycle management.
///
/// `Clone` is the checkpoint/restore hook for the adversarial
/// explorer: a clone carries the full nonce ledger (pending and
/// consumed sets), the policy, the statistics and the nonce RNG
/// state, so a forked branch issues and settles independently of the
/// original timeline.
#[derive(Clone)]
pub struct Verifier {
    ca_key: RsaPublicKey,
    config: VerifierConfig,
    rng: StdRng,
    ledger: NonceLedger,
    stats: VerifierStats,
}

impl fmt::Debug for Verifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Verifier")
            .field("pending", &self.ledger.pending_count())
            .field("used", &self.ledger.used_count())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Verifier {
    /// Creates a verifier pinning the given privacy-CA key, with default
    /// policy (trusts `ConfirmationPal::v1`).
    pub fn new(ca_key: RsaPublicKey, seed: u64) -> Self {
        Self::with_config(ca_key, VerifierConfig::default(), seed)
    }

    /// Creates a verifier with explicit policy.
    pub fn with_config(ca_key: RsaPublicKey, config: VerifierConfig, seed: u64) -> Self {
        let ledger = NonceLedger::new(config.nonce_ttl);
        Verifier {
            ca_key,
            config,
            rng: StdRng::seed_from_u64(seed ^ 0x56_4552_u64),
            ledger,
            stats: VerifierStats::default(),
        }
    }

    /// The policy in use.
    pub fn config(&self) -> &VerifierConfig {
        &self.config
    }

    /// Outcome counters.
    pub fn stats(&self) -> &VerifierStats {
        &self.stats
    }

    /// Number of outstanding (unconsumed, possibly expired) nonces.
    pub fn pending_count(&self) -> usize {
        self.ledger.pending_count()
    }

    /// The settlement ledger (read access for dashboards and services).
    pub fn ledger(&self) -> &NonceLedger {
        &self.ledger
    }

    /// Issues a confirmation request for `tx` with the default mode.
    pub fn issue_request(&mut self, tx: Transaction, now: Duration) -> TransactionRequest {
        let mode = self.config.default_mode;
        self.issue_request_with_mode(tx, mode, now)
    }

    /// Issues a confirmation request with an explicit mode.
    pub fn issue_request_with_mode(
        &mut self,
        tx: Transaction,
        mode: ConfirmMode,
        now: Duration,
    ) -> TransactionRequest {
        let mut nonce_bytes = [0u8; 20];
        self.rng.fill_bytes(&mut nonce_bytes);
        let nonce = Sha1Digest(nonce_bytes);
        let request = TransactionRequest {
            transaction: tx.clone(),
            nonce,
            mode,
        };
        self.ledger.register(
            &nonce,
            PendingNonce {
                request_bytes: request.to_bytes(),
                transaction: tx,
                issued_at: now,
            },
        );
        self.stats.issued += 1;
        request
    }

    /// Adopts a request issued elsewhere (a replica, or the sharded
    /// verification service) so this verifier can settle its evidence.
    pub fn import_request(&mut self, request: &TransactionRequest, issued_at: Duration) {
        self.ledger.register(
            &request.nonce,
            PendingNonce {
                request_bytes: request.to_bytes(),
                transaction: request.transaction.clone(),
                issued_at,
            },
        );
        self.stats.issued += 1;
    }

    /// Restores an outstanding entry from a recovered journal — the
    /// challenge was issued (and persisted) before the crash, so its
    /// evidence must still be settleable after restart.
    pub fn restore_pending(&mut self, nonce: [u8; 20], pending: PendingNonce) {
        self.ledger.register(&Sha1Digest(nonce), pending);
    }

    /// Restores a consumed nonce from a recovered journal so replayed
    /// evidence keeps being rejected after restart.
    pub fn restore_used(&mut self, nonce: [u8; 20]) {
        self.ledger.restore_used(nonce);
    }

    /// Drops expired nonces (housekeeping; `verify` also checks expiry).
    pub fn gc(&mut self, now: Duration) {
        self.ledger.gc(now);
    }

    fn reject(&mut self, e: VerifyError) -> VerifyError {
        *self.stats.rejected.entry(format!("{:?}", e)).or_insert(0) += 1;
        e
    }

    /// Verifies evidence for a previously issued request.
    ///
    /// # Errors
    ///
    /// Returns the first failing check as a [`VerifyError`]; the nonce is
    /// consumed on success and on `NotConfirmed` (the transaction is
    /// settled either way), and kept pending on transport-level failures
    /// so a legitimate client may retry.
    pub fn verify(
        &mut self,
        evidence: &Evidence,
        now: Duration,
    ) -> Result<VerifiedTransaction, VerifyError> {
        let token = match evidence.token() {
            Ok(t) => t,
            Err(_) => return Err(self.reject(VerifyError::MalformedEvidence)),
        };
        let pending = match self.ledger.preflight(&token.nonce, now) {
            Ok(p) => p,
            Err(e) => return Err(self.reject(e)),
        };
        let Some(cert) = AikCertificate::from_bytes(&evidence.aik_cert) else {
            return Err(self.reject(VerifyError::BadCertificate));
        };
        let Some(aik) = cert.validate(&self.ca_key) else {
            return Err(self.reject(VerifyError::BadCertificate));
        };
        if token.tx_digest != pending.transaction.digest() {
            return Err(self.reject(VerifyError::TokenMismatch));
        }
        let io = io_digest(&pending.request_bytes, &evidence.token_bytes);
        if let Err(e) = check_quote_chain(
            &aik,
            &token.nonce,
            &self.config.trusted_pals,
            &io,
            &evidence.quote,
        ) {
            return Err(self.reject(e));
        }
        // All cryptographic checks passed: settle the nonce.
        let pending = match self.ledger.settle(&token.nonce, now) {
            Ok(p) => p,
            Err(e) => return Err(self.reject(e)),
        };
        if token.verdict != Verdict::Confirmed {
            return Err(self.reject(VerifyError::NotConfirmed(token.verdict)));
        }
        self.stats.accepted += 1;
        Ok(VerifiedTransaction {
            transaction: pending.transaction,
            mode: token.mode,
            attempts: token.attempts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::PrivacyCa;
    use crate::client::{Client, ClientConfig};
    use crate::operator::{ConfirmingHuman, Intent};
    use utp_platform::machine::{Machine, MachineConfig};

    fn setup() -> (PrivacyCa, Verifier, Machine, Client) {
        let ca = PrivacyCa::new(512, 61);
        let verifier = Verifier::new(ca.public_key().clone(), 62);
        let mut machine = Machine::new(MachineConfig::fast_for_tests(63));
        let enrollment = ca.enroll(&mut machine);
        let client = Client::new(ClientConfig::fast_for_tests(), enrollment);
        (ca, verifier, machine, client)
    }

    fn tx() -> Transaction {
        Transaction::new(5, "shop.example", 1999, "USD", "cart 88")
    }

    #[test]
    fn happy_path_type_code() {
        let (_ca, mut verifier, mut machine, mut client) = setup();
        let t = tx();
        let req = verifier.issue_request(t.clone(), machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&t), 64);
        let evidence = client.confirm(&mut machine, &req, &mut human).unwrap();
        let verified = verifier.verify(&evidence, machine.now()).unwrap();
        assert_eq!(verified.transaction, t);
        assert_eq!(verified.mode, ConfirmMode::TypeCode);
        assert!(verified.attempts >= 1);
        assert_eq!(verifier.stats().accepted, 1);
    }

    #[test]
    fn happy_path_press_enter() {
        let (_ca, mut verifier, mut machine, mut client) = setup();
        let t = tx();
        let req =
            verifier.issue_request_with_mode(t.clone(), ConfirmMode::PressEnter, machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&t), 65);
        let evidence = client.confirm(&mut machine, &req, &mut human).unwrap();
        let verified = verifier.verify(&evidence, machine.now()).unwrap();
        assert_eq!(verified.mode, ConfirmMode::PressEnter);
        assert_eq!(verified.attempts, 0);
    }

    #[test]
    fn replay_is_rejected() {
        let (_ca, mut verifier, mut machine, mut client) = setup();
        let t = tx();
        let req = verifier.issue_request(t.clone(), machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&t), 66);
        let evidence = client.confirm(&mut machine, &req, &mut human).unwrap();
        verifier.verify(&evidence, machine.now()).unwrap();
        assert_eq!(
            verifier.verify(&evidence, machine.now()).unwrap_err(),
            VerifyError::Replayed
        );
    }

    #[test]
    fn unknown_nonce_rejected() {
        let (_ca, mut verifier, mut machine, mut client) = setup();
        let t = tx();
        // A request this verifier never issued (different verifier).
        let mut rogue = Verifier::new(verifier.ca_key.clone(), 999);
        let req = rogue.issue_request(t.clone(), machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&t), 67);
        let evidence = client.confirm(&mut machine, &req, &mut human).unwrap();
        assert_eq!(
            verifier.verify(&evidence, machine.now()).unwrap_err(),
            VerifyError::UnknownNonce
        );
    }

    #[test]
    fn expired_nonce_rejected() {
        let (_ca, mut verifier, mut machine, mut client) = setup();
        let t = tx();
        let req = verifier.issue_request(t.clone(), machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&t), 68);
        let evidence = client.confirm(&mut machine, &req, &mut human).unwrap();
        machine.advance(Duration::from_secs(301));
        assert_eq!(
            verifier.verify(&evidence, machine.now()).unwrap_err(),
            VerifyError::Expired
        );
    }

    #[test]
    fn rejected_verdict_is_not_accepted_but_settles_nonce() {
        let (_ca, mut verifier, mut machine, mut client) = setup();
        let t = tx();
        let req = verifier.issue_request(t.clone(), machine.now());
        // The human did not initiate this — rejects at the PAL.
        let mut human = ConfirmingHuman::new(Intent::rejecting(), 69);
        let evidence = client.confirm(&mut machine, &req, &mut human).unwrap();
        let err = verifier.verify(&evidence, machine.now()).unwrap_err();
        assert!(matches!(err, VerifyError::NotConfirmed(Verdict::Rejected)));
        // And the nonce cannot be re-tried with forged evidence.
        assert_eq!(
            verifier.verify(&evidence, machine.now()).unwrap_err(),
            VerifyError::Replayed
        );
    }

    #[test]
    fn untrusted_pal_rejected() {
        let (ca, _v, mut machine, _client) = setup();
        // Provider only trusts a *different* PAL version.
        let mut config = VerifierConfig::default();
        config.trusted_pals.clear();
        config
            .trusted_pals
            .insert(crate::pal::ConfirmationPal::with_attempts(9).measurement());
        let mut verifier = Verifier::with_config(ca.public_key().clone(), config, 70);
        let enrollment = ca.enroll(&mut machine);
        let mut client = Client::new(ClientConfig::fast_for_tests(), enrollment);
        let t = tx();
        let req = verifier.issue_request(t.clone(), machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&t), 71);
        let evidence = client.confirm(&mut machine, &req, &mut human).unwrap();
        assert_eq!(
            verifier.verify(&evidence, machine.now()).unwrap_err(),
            VerifyError::UntrustedPal
        );
    }

    #[test]
    fn certificate_from_rogue_ca_rejected() {
        let (_real_ca, mut verifier, mut machine, _client) = setup();
        let rogue_ca = PrivacyCa::new(512, 1000);
        let enrollment = rogue_ca.enroll(&mut machine);
        let mut client = Client::new(ClientConfig::fast_for_tests(), enrollment);
        let t = tx();
        let req = verifier.issue_request(t.clone(), machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&t), 72);
        let evidence = client.confirm(&mut machine, &req, &mut human).unwrap();
        assert_eq!(
            verifier.verify(&evidence, machine.now()).unwrap_err(),
            VerifyError::BadCertificate
        );
    }

    #[test]
    fn tampered_token_rejected() {
        let (_ca, mut verifier, mut machine, mut client) = setup();
        let t = tx();
        let req = verifier.issue_request(t.clone(), machine.now());
        let mut human = ConfirmingHuman::new(Intent::rejecting(), 73);
        let mut evidence = client.confirm(&mut machine, &req, &mut human).unwrap();
        // Malware flips the verdict byte from Rejected to Confirmed.
        let mut token = evidence.token().unwrap();
        token.verdict = Verdict::Confirmed;
        evidence.token_bytes = token.to_bytes();
        // The PCR-17 chain no longer matches the quoted value.
        assert_eq!(
            verifier.verify(&evidence, machine.now()).unwrap_err(),
            VerifyError::UntrustedPal
        );
    }

    #[test]
    fn malformed_evidence_rejected() {
        let (_ca, mut verifier, machine, _client) = setup();
        let evidence = Evidence {
            token_bytes: vec![1, 2, 3],
            quote: utp_tpm::quote::Quote {
                selection: utp_tpm::pcr::PcrSelection::drtm_only(),
                pcr_values: vec![Sha1Digest::zero()],
                external_data: Sha1Digest::zero(),
                signature: vec![0; 64],
            },
            aik_cert: vec![],
        };
        assert_eq!(
            verifier.verify(&evidence, machine.now()).unwrap_err(),
            VerifyError::MalformedEvidence
        );
    }

    #[test]
    fn gc_drops_only_expired() {
        let (_ca, mut verifier, machine, _client) = setup();
        let now = machine.now();
        verifier.issue_request(tx(), now);
        verifier.issue_request(tx(), now + Duration::from_secs(400));
        verifier.gc(now + Duration::from_secs(500));
        assert_eq!(verifier.pending_count(), 1);
    }

    #[test]
    fn stats_track_rejection_reasons() {
        let (_ca, mut verifier, mut machine, mut client) = setup();
        let t = tx();
        let req = verifier.issue_request(t.clone(), machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&t), 74);
        let evidence = client.confirm(&mut machine, &req, &mut human).unwrap();
        verifier.verify(&evidence, machine.now()).unwrap();
        let _ = verifier.verify(&evidence, machine.now());
        assert_eq!(verifier.stats().rejected.get("Replayed"), Some(&1));
        assert_eq!(verifier.stats().issued, 1);
    }

    use std::time::Duration;
}
