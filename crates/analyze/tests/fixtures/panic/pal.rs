// Fed as `crates/flicker/src/pal.rs` (a TCB file). The function itself
// is panic-free — the violation is in the helper it calls.
pub fn invoke() {
    let v = helper_parse();
    let _ = v;
}
