//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API so
//! workspace code keeps its idiomatic `.lock()` call sites. A poisoned
//! lock (a panic while held) just propagates the inner value, matching
//! `parking_lot`'s "no poisoning" semantics closely enough for tests.

#![forbid(unsafe_code)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Poison-free mutex mirroring `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Poison-free reader-writer lock mirroring `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(*l.read(), "ab");
        assert_eq!(l.into_inner(), "ab");
    }
}
