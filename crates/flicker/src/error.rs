//! Flicker runtime errors.

use std::error::Error;
use std::fmt;

/// Errors from running a PAL session.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FlickerError {
    /// The platform refused the late launch.
    Platform(utp_platform::PlatformError),
    /// The TPM failed during the session.
    Tpm(utp_tpm::TpmError),
    /// The PAL itself reported an error.
    Pal(String),
    /// The PAL exceeded its interaction budget (runaway prompt loop).
    InteractionBudgetExhausted,
    /// Marshaling of PAL inputs/outputs failed.
    Marshal(String),
}

impl fmt::Display for FlickerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlickerError::Platform(e) => write!(f, "platform error: {}", e),
            FlickerError::Tpm(e) => write!(f, "tpm error: {}", e),
            FlickerError::Pal(why) => write!(f, "pal failed: {}", why),
            FlickerError::InteractionBudgetExhausted => {
                write!(f, "pal exceeded its interaction budget")
            }
            FlickerError::Marshal(why) => write!(f, "marshaling failed: {}", why),
        }
    }
}

impl Error for FlickerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlickerError::Platform(e) => Some(e),
            FlickerError::Tpm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<utp_platform::PlatformError> for FlickerError {
    fn from(e: utp_platform::PlatformError) -> Self {
        FlickerError::Platform(e)
    }
}

impl From<utp_tpm::TpmError> for FlickerError {
    fn from(e: utp_tpm::TpmError) -> Self {
        FlickerError::Tpm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_are_preserved() {
        let e = FlickerError::from(utp_tpm::TpmError::NotStarted);
        assert!(std::error::Error::source(&e).is_some());
        let e = FlickerError::Pal("oops".into());
        assert!(std::error::Error::source(&e).is_none());
        assert!(e.to_string().contains("oops"));
    }
}
