//! Explorer integration tests: soundness of the oracle (seeded bugs
//! are found and shrink to pinned minimal schedules), cleanliness of
//! the real stack at the CI depth bound, and byte-level determinism of
//! exploration and replay.

use utp_explore::{
    default_alphabet, explore, render_counterexample, render_schedule, replay_schedule, shrink,
    Action, AuditTruncationShim, CrashKind, DoubleSettleShim, EvidenceKind, ExploreConfig,
    ForgottenOrderShim, RealSystem, Scenario, ServiceSystem, Strategy, System,
};

const SEED: u64 = 7;
const ORDERS: usize = 2;

fn smoke_config() -> ExploreConfig {
    ExploreConfig {
        max_depth: 2,
        max_states: 5_000,
        strategy: Strategy::Bfs,
        stop_at_first_violation: false,
    }
}

fn first_violation_config() -> ExploreConfig {
    ExploreConfig {
        stop_at_first_violation: true,
        ..smoke_config()
    }
}

#[test]
fn real_stack_is_clean_at_the_smoke_bound() {
    let (scenario, root) = Scenario::build(SEED, ORDERS);
    let alphabet = default_alphabet(scenario.order_count(), scenario.nonce_ttl);
    let report = explore(&scenario, &root, &alphabet, &smoke_config());
    assert!(
        report.violations.is_empty(),
        "real stack violated an invariant: {:?}",
        report.violations[0].violation
    );
    assert!(!report.budget_exhausted, "smoke budget must cover depth 2");
    assert!(report.explored > 100, "explored only {}", report.explored);
    assert!(report.pruned > 0, "fingerprint dedup never fired");
    assert_eq!(report.deepest, 2);
}

#[test]
fn export_metrics_mirrors_the_report() {
    use utp_obs::{MetricId, MetricsRegistry, SampleValue};
    let (scenario, root) = Scenario::build(SEED, ORDERS);
    let alphabet = default_alphabet(scenario.order_count(), scenario.nonce_ttl);
    let report = explore(&scenario, &root, &alphabet, &smoke_config());
    let registry = MetricsRegistry::new();
    report.export_metrics(&registry);
    let snap = registry.snapshot(std::time::Duration::ZERO);
    let get = |name: &str| {
        let id = MetricId::new(name, &[]);
        snap.samples
            .iter()
            .find(|s| s.id == id)
            .map(|s| s.value.clone())
    };
    assert_eq!(
        get("explore.states"),
        Some(SampleValue::Counter(report.explored))
    );
    assert_eq!(
        get("explore.checks"),
        Some(SampleValue::Counter(report.checks))
    );
    assert_eq!(
        get("explore.deepest"),
        Some(SampleValue::Gauge {
            level: 2,
            watermark: 2
        })
    );
    assert_eq!(
        get("explore.budget_exhausted"),
        Some(SampleValue::Gauge {
            level: 0,
            watermark: 0
        })
    );
}

#[test]
fn exploration_log_is_byte_identical_across_runs() {
    let run = || {
        let (scenario, root) = Scenario::build(SEED, ORDERS);
        let alphabet = default_alphabet(scenario.order_count(), scenario.nonce_ttl);
        explore(&scenario, &root, &alphabet, &smoke_config()).log
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "exploration log differs across runs");
    assert!(first.lines().last().unwrap().starts_with("summary "));
}

#[test]
fn dfs_and_bfs_reach_the_same_state_space() {
    let (scenario, root) = Scenario::build(SEED, ORDERS);
    let alphabet = default_alphabet(scenario.order_count(), scenario.nonce_ttl);
    let bfs = explore(&scenario, &root, &alphabet, &smoke_config());
    let dfs = explore(
        &scenario,
        &root,
        &alphabet,
        &ExploreConfig {
            strategy: Strategy::Dfs,
            ..smoke_config()
        },
    );
    assert_eq!(bfs.explored, dfs.explored);
    assert_eq!(bfs.pruned, dfs.pruned);
    assert_eq!(bfs.violations.len(), dfs.violations.len());
}

/// Runs the explorer against a buggy shim, shrinks the first
/// counterexample, and checks the full render against its golden
/// fixture.
fn assert_shim_caught<S, F>(make: F, invariant: &str, fixture: &str)
where
    S: utp_explore::Fork,
    F: Fn(RealSystem) -> S,
{
    let (scenario, root) = Scenario::build(SEED, ORDERS);
    let shim = make(root);
    let alphabet = default_alphabet(scenario.order_count(), scenario.nonce_ttl);
    let report = explore(&scenario, &shim, &alphabet, &first_violation_config());
    let found = report
        .violations
        .first()
        .unwrap_or_else(|| panic!("explorer missed the seeded {invariant} bug"));
    assert_eq!(found.violation.invariant, invariant);
    let minimal = shrink(&scenario, &shim, &found.schedule, invariant);
    assert!(
        minimal.len() <= found.schedule.len(),
        "shrinking grew the schedule"
    );
    let rendered = render_counterexample(&scenario, &shim, &minimal, invariant);
    assert_eq!(
        rendered, fixture,
        "minimal counterexample drifted from its pinned fixture"
    );
}

#[test]
fn double_settle_bug_is_found_and_shrinks_to_fixture() {
    assert_shim_caught(
        DoubleSettleShim::new,
        "balance-conservation",
        include_str!("fixtures/double_settle.counterexample"),
    );
}

#[test]
fn forgotten_order_bug_is_found_and_shrinks_to_fixture() {
    assert_shim_caught(
        ForgottenOrderShim::new,
        "recovery-matches-durable",
        include_str!("fixtures/forgotten_order.counterexample"),
    );
}

#[test]
fn audit_truncation_bug_is_found_and_shrinks_to_fixture() {
    assert_shim_caught(
        AuditTruncationShim::new,
        "audit-append-only",
        include_str!("fixtures/audit_truncation.counterexample"),
    );
}

#[test]
fn counterexamples_replay_byte_identically() {
    let minimal = vec![
        Action::Deliver {
            order: 0,
            kind: EvidenceKind::Genuine,
        },
        Action::Crash(CrashKind::PowerLoss),
    ];
    let run = || {
        let (scenario, root) = Scenario::build(SEED, ORDERS);
        let shim = ForgottenOrderShim::new(root);
        replay_schedule(&scenario, &shim, &minimal)
    };
    let first = run();
    let second = run();
    assert_eq!(first.trace, second.trace, "replay traces differ");
    let (step, violation) = first.violation.expect("replay reproduces the violation");
    assert_eq!(step, 1);
    assert_eq!(violation.invariant, "recovery-matches-durable");
}

#[test]
fn shrinker_drops_noise_actions() {
    // A noisy schedule around the double-settle trigger: drops, clock
    // skips and an unrelated tampered delivery must all shrink away.
    let noisy = vec![
        Action::Drop { order: 1 },
        Action::AdvanceClock { millis: 1_000 },
        Action::Deliver {
            order: 1,
            kind: EvidenceKind::TamperedToken,
        },
        Action::Deliver {
            order: 0,
            kind: EvidenceKind::Genuine,
        },
        Action::Checkpoint,
    ];
    let (scenario, root) = Scenario::build(SEED, ORDERS);
    let shim = DoubleSettleShim::new(root);
    assert!(replay_schedule(&scenario, &shim, &noisy)
        .violation
        .is_some());
    let minimal = shrink(&scenario, &shim, &noisy, "balance-conservation");
    assert_eq!(
        render_schedule(&minimal),
        "deliver order=0 kind=genuine\n",
        "ddmin left noise in the schedule"
    );
}

#[test]
fn service_stack_matches_serial_on_linear_replay() {
    // The sharded service stack cannot fork, so it is checked
    // differentially: replay one schedule through both stacks and
    // compare the semantic views after every step.
    let schedule = [
        Action::Deliver {
            order: 0,
            kind: EvidenceKind::Genuine,
        },
        Action::Deliver {
            order: 1,
            kind: EvidenceKind::TamperedToken,
        },
        Action::CrossDeliver {
            evidence_from: 0,
            to_order: 1,
        },
        Action::Crash(CrashKind::PowerLoss),
        Action::Deliver {
            order: 1,
            kind: EvidenceKind::Genuine,
        },
        Action::Deliver {
            order: 0,
            kind: EvidenceKind::Genuine,
        },
    ];
    let (scenario, serial_root) = Scenario::build(SEED, ORDERS);
    let (_scenario2, service_root) = Scenario::build(SEED, ORDERS);
    let mut serial = serial_root;
    let mut service = ServiceSystem::new(service_root, 2, 2);
    let mut now_a = scenario.base_now;
    let mut now_b = scenario.base_now;
    for (i, action) in schedule.iter().enumerate() {
        let ra = utp_explore::apply_action(&mut serial, &scenario, &mut now_a, action);
        let rb = utp_explore::apply_action(&mut service, &scenario, &mut now_b, action);
        assert_eq!(ra, rb, "step {i} ({action}) result diverged");
        let va = serial.view();
        let vb = service.view();
        assert!(
            va.semantic_eq(&vb),
            "step {i} ({action}): serial and service views diverged in {:?}",
            va.semantic_diff(&vb)
        );
    }
    service.shutdown();
}
