//! Determinism at fleet scale: same seed → byte-identical report,
//! different seed → different draws but identical invariants.

use std::time::Duration;
use utp_netsim::{AdmissionConfig, ArrivalCurve, LinkConfig, LinkProfile, Scenario, Topology};

/// A lossy two-tier fleet under real replay pressure: loss forces
/// timeouts, timeouts force evidence replays, and a tight queue forces
/// admission sheds.
fn stormy_scenario(seed: u64, clients_per_hub: u32) -> Scenario {
    let core = LinkProfile::clean(LinkConfig::fixed_rtt_bw(
        Duration::from_millis(4),
        50_000_000,
    ));
    let leaf = LinkProfile::clean(LinkConfig::broadband())
        .with_loss_ppm(120_000)
        .with_reorder(50_000, Duration::from_millis(30));
    let topo = Topology::two_tier(8, clients_per_hub, core, leaf);
    let mut sc = Scenario::new(topo, ArrivalCurve::Steady, Duration::from_secs(2), seed);
    sc.provider.workers = 2;
    sc.provider.verify_cost = Duration::from_micros(300);
    sc.provider.queue_limit = 64;
    sc.provider.admission = Some(AdmissionConfig::for_service_time(
        64,
        Duration::from_micros(300),
    ));
    sc.retry.timeout = Duration::from_millis(300);
    sc.tag_run("determinism");
    sc
}

#[test]
fn same_seed_two_runs_byte_identical_report() {
    let a = stormy_scenario(42, 250).run().digest();
    let b = stormy_scenario(42, 250).run().digest();
    assert_eq!(a, b, "two runs with one seed must agree to the byte");
}

#[test]
fn different_seed_different_jitter_same_invariants() {
    let a = stormy_scenario(42, 250).run();
    let b = stormy_scenario(43, 250).run();
    assert_ne!(
        a.digest(),
        b.digest(),
        "a different seed must move the jitter/loss draws"
    );
    for (label, r) in [("seed 42", &a), ("seed 43", &b)] {
        // Replay storms happened…
        assert!(r.replays_sent > 0, "{label}: loss must force replays");
        assert!(r.duplicate_settle_attempts > 0 || r.timeouts > 0, "{label}");
        // …and no transaction ever settled twice: every client lands in
        // exactly one terminal state, and unique settles never exceed
        // the orders placed.
        assert_eq!(
            r.settled + r.rejected + r.gave_up + r.abandoned,
            r.placed,
            "{label}: terminal states must partition the fleet"
        );
        assert!(
            r.verify_jobs >= r.settled + r.duplicate_settle_attempts,
            "{label}: every settle or dup attempt costs a verify"
        );
        assert_eq!(r.rejected, 0, "{label}: the model never rejects");
    }
}

/// 100k clients through the full storm — slow in debug builds, run
/// with `cargo test --release -p utp-netsim -- --ignored`.
#[test]
#[ignore = "release-scale run; exercised by fleet_smoke/nightly CI"]
fn hundred_k_clients_drain_deterministically() {
    let report = stormy_scenario(7, 12_500).run(); // 8 hubs × 12.5k
    assert_eq!(report.fleet, 100_000);
    assert_eq!(
        report.settled + report.rejected + report.gave_up + report.abandoned,
        report.placed
    );
    let again = stormy_scenario(7, 12_500).run();
    assert_eq!(report.digest(), again.digest());
}
