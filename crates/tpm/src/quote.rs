//! `TPM_Quote`: the attestation primitive.
//!
//! A quote is an RSA signature by an AIK over the `TPM_QUOTE_INFO`
//! structure, which binds (a) the composite digest of the selected PCRs and
//! (b) 20 bytes of caller-supplied `externalData` — the verifier's nonce.
//! The uni-directional trusted path puts the transaction/confirmation
//! binding in PCR 17 and the service-provider nonce in `externalData`, so a
//! valid quote proves "the known-good PAL ran, saw this transaction, and
//! the human confirmed it, after you issued this nonce".

use crate::pcr::{composite_digest_from_values, PcrSelection};
use utp_crypto::rsa::RsaPublicKey;
use utp_crypto::sha1::Sha1Digest;

/// The fixed version field of `TPM_QUOTE_INFO` (major 1, minor 1, rev 0.0).
pub const QUOTE_VERSION: [u8; 4] = [1, 1, 0, 0];
/// The fixed fourcc of `TPM_QUOTE_INFO`.
pub const QUOTE_FOURCC: &[u8; 4] = b"QUOT";

/// Serializes the `TPM_QUOTE_INFO` structure that gets signed.
pub fn quote_info_bytes(composite: &Sha1Digest, external_data: &Sha1Digest) -> Vec<u8> {
    let mut buf = Vec::with_capacity(48);
    buf.extend_from_slice(&QUOTE_VERSION);
    buf.extend_from_slice(QUOTE_FOURCC);
    buf.extend_from_slice(composite.as_bytes());
    buf.extend_from_slice(external_data.as_bytes());
    buf
}

/// A completed quote: everything a remote verifier needs except the AIK
/// certificate (which travels separately).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quote {
    /// Which PCRs the quote covers.
    pub selection: PcrSelection,
    /// The PCR values at quote time, in ascending index order.
    pub pcr_values: Vec<Sha1Digest>,
    /// The caller's anti-replay nonce (`externalData`).
    pub external_data: Sha1Digest,
    /// PKCS#1 v1.5 SHA-1 signature over [`quote_info_bytes`].
    pub signature: Vec<u8>,
}

impl Quote {
    /// The composite digest the quote's signature covers, recomputed from
    /// the embedded PCR values.
    pub fn composite_digest(&self) -> Sha1Digest {
        composite_digest_from_values(&self.selection, &self.pcr_values)
    }

    /// Verifies the quote's signature under `aik` and that `external_data`
    /// matches the expected nonce. Returns `false` rather than erroring:
    /// verifiers treat all failures identically.
    #[must_use]
    pub fn verify(&self, aik: &RsaPublicKey, expected_nonce: &Sha1Digest) -> bool {
        if self.selection.len() != self.pcr_values.len() {
            return false;
        }
        if !utp_crypto::ct::ct_eq(self.external_data.as_bytes(), expected_nonce.as_bytes()) {
            return false;
        }
        let info = quote_info_bytes(&self.composite_digest(), &self.external_data);
        aik.verify_pkcs1_sha1(&info, &self.signature)
    }

    /// Stable byte encoding for transport.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.selection.to_wire());
        out.extend_from_slice(&(self.pcr_values.len() as u32).to_be_bytes());
        for v in &self.pcr_values {
            out.extend_from_slice(v.as_bytes());
        }
        out.extend_from_slice(self.external_data.as_bytes());
        out.extend_from_slice(&(self.signature.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.signature);
        out
    }

    /// Parses the encoding from [`Quote::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        let (selection, mut off) = PcrSelection::from_wire(data).ok()?;
        let n = u32::from_be_bytes(data.get(off..off + 4)?.try_into().ok()?) as usize;
        off += 4;
        if n > crate::pcr::NUM_PCRS {
            return None;
        }
        let mut pcr_values = Vec::with_capacity(n);
        for _ in 0..n {
            pcr_values.push(Sha1Digest::from_slice(data.get(off..off + 20)?)?);
            off += 20;
        }
        let external_data = Sha1Digest::from_slice(data.get(off..off + 20)?)?;
        off += 20;
        let sig_len = u32::from_be_bytes(data.get(off..off + 4)?.try_into().ok()?) as usize;
        off += 4;
        let signature = data.get(off..off + sig_len)?.to_vec();
        off += sig_len;
        if off != data.len() {
            return None;
        }
        Some(Quote {
            selection,
            pcr_values,
            external_data,
            signature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcr::PcrIndex;

    fn dummy_quote() -> Quote {
        Quote {
            selection: PcrSelection::of(&[PcrIndex::drtm()]),
            pcr_values: vec![Sha1Digest::zero()],
            external_data: Sha1Digest::ones(),
            signature: vec![0xAB; 64],
        }
    }

    #[test]
    fn quote_info_layout() {
        let info = quote_info_bytes(&Sha1Digest::zero(), &Sha1Digest::ones());
        assert_eq!(info.len(), 48);
        assert_eq!(&info[..4], &QUOTE_VERSION);
        assert_eq!(&info[4..8], b"QUOT");
        assert_eq!(&info[8..28], &[0u8; 20]);
        assert_eq!(&info[28..48], &[0xFFu8; 20]);
    }

    #[test]
    fn byte_roundtrip() {
        let q = dummy_quote();
        let parsed = Quote::from_bytes(&q.to_bytes()).unwrap();
        assert_eq!(parsed, q);
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        let mut bytes = dummy_quote().to_bytes();
        bytes.push(0);
        assert!(Quote::from_bytes(&bytes).is_none());
    }

    #[test]
    fn parse_rejects_truncation() {
        let bytes = dummy_quote().to_bytes();
        for cut in [1usize, 5, 10, bytes.len() - 1] {
            assert!(Quote::from_bytes(&bytes[..cut]).is_none(), "cut {}", cut);
        }
    }

    #[test]
    fn verify_rejects_mismatched_arity() {
        let mut q = dummy_quote();
        q.pcr_values.push(Sha1Digest::zero());
        let aik = utp_crypto::rsa::RsaKeyPair::generate(512, 5);
        assert!(!q.verify(aik.public(), &Sha1Digest::ones()));
    }

    // Full sign/verify behaviour is exercised in `device.rs` tests where a
    // real AIK signs quotes.
}
