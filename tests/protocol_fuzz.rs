//! Fuzz-style mutation tests for the evidence decode path: seeded,
//! exhaustive-by-position, no fuzzer dependency.
//!
//! For `TransactionRequest`, `ConfirmationToken` and `Evidence` (the three
//! attacker-supplied wire formats), every single-bit flip, every
//! truncation, and every 4-byte length-field lie must decode without
//! panicking; whenever decoding succeeds the value must re-encode to
//! exactly the mutated input (the encodings are canonical, so a parser
//! that "repairs" input is a bug). This turns PR 1's static panic-freedom
//! discipline into runtime proof against the actual parsers.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use utp::core::ca::PrivacyCa;
use utp::core::client::{Client, ClientConfig};
use utp::core::operator::{ConfirmingHuman, Intent};
use utp::core::protocol::{ConfirmationToken, Evidence, Transaction, TransactionRequest};
use utp::core::verifier::Verifier;
use utp::platform::machine::{Machine, MachineConfig};

/// One genuine confirmation: the three wire messages as real bytes.
fn genuine_messages() -> (Vec<u8>, Vec<u8>, Vec<u8>) {
    let ca = PrivacyCa::new(512, 8_001);
    let mut verifier = Verifier::new(ca.public_key().clone(), 8_002);
    let mut machine = Machine::new(MachineConfig::fast_for_tests(8_003));
    let enrollment = ca.enroll(&mut machine);
    let mut client = Client::new(ClientConfig::fast_for_tests(), enrollment);
    let tx = Transaction::new(7, "shop.example", 4_200, "EUR", "fuzz seed");
    let request = verifier.issue_request(tx.clone(), machine.now());
    let mut human = ConfirmingHuman::new(Intent::approving(&tx), 8_004);
    let evidence = client.confirm(&mut machine, &request, &mut human).unwrap();
    let token = evidence.token().unwrap();
    (request.to_bytes(), token.to_bytes(), evidence.to_bytes())
}

/// A decoder as a total function: `Some(reencoded)` on success.
type Decode = fn(&[u8]) -> Option<Vec<u8>>;

fn decode_request(data: &[u8]) -> Option<Vec<u8>> {
    TransactionRequest::from_bytes(data)
        .ok()
        .map(|v| v.to_bytes())
}

fn decode_token(data: &[u8]) -> Option<Vec<u8>> {
    ConfirmationToken::from_bytes(data)
        .ok()
        .map(|v| v.to_bytes())
}

fn decode_evidence(data: &[u8]) -> Option<Vec<u8>> {
    Evidence::from_bytes(data).ok().map(|v| v.to_bytes())
}

fn targets() -> Vec<(&'static str, Vec<u8>, Decode)> {
    let (request, token, evidence) = genuine_messages();
    vec![
        ("TransactionRequest", request, decode_request as Decode),
        ("ConfirmationToken", token, decode_token as Decode),
        ("Evidence", evidence, decode_evidence as Decode),
    ]
}

#[test]
fn genuine_bytes_roundtrip_canonically() {
    for (name, bytes, decode) in targets() {
        assert_eq!(decode(&bytes).as_deref(), Some(bytes.as_slice()), "{name}");
    }
}

#[test]
fn every_single_bit_flip_decodes_cleanly() {
    for (name, bytes, decode) in targets() {
        for pos in 0..bytes.len() {
            for bit in 0..8u8 {
                let mut mutated = bytes.clone();
                mutated[pos] ^= 1 << bit;
                // Must not panic; an accepted parse must be canonical.
                if let Some(reencoded) = decode(&mutated) {
                    assert_eq!(
                        reencoded, mutated,
                        "{name}: non-canonical accept at byte {pos} bit {bit}"
                    );
                }
            }
        }
    }
}

#[test]
fn every_truncation_is_rejected() {
    for (name, bytes, decode) in targets() {
        for len in 0..bytes.len() {
            assert!(
                decode(&bytes[..len]).is_none(),
                "{name}: truncation to {len} bytes accepted"
            );
        }
    }
}

#[test]
fn length_field_lies_decode_cleanly() {
    // Overwrite every 4-byte window with extreme values — wherever a
    // length prefix lives, this lies about it (including `u32::MAX`,
    // which must not provoke a pre-allocation or a panic).
    for (name, bytes, decode) in targets() {
        for lie in [[0xFFu8; 4], [0x00u8; 4], [0x00, 0x00, 0xFF, 0xFF]] {
            for pos in 0..bytes.len().saturating_sub(3) {
                let mut mutated = bytes.clone();
                mutated[pos..pos + 4].copy_from_slice(&lie);
                if let Some(reencoded) = decode(&mutated) {
                    assert_eq!(
                        reencoded, mutated,
                        "{name}: non-canonical accept, {lie:?} at {pos}"
                    );
                }
            }
        }
    }
}

#[test]
fn random_garbage_decodes_cleanly() {
    let mut rng = StdRng::seed_from_u64(0xF022_0C4E);
    for (name, bytes, decode) in targets() {
        for round in 0..256 {
            let len = rng.gen_range(0..bytes.len() + 64);
            let mut garbage = vec![0u8; len];
            rng.fill_bytes(&mut garbage);
            if let Some(reencoded) = decode(&garbage) {
                assert_eq!(
                    reencoded, garbage,
                    "{name}: non-canonical accept of garbage (round {round})"
                );
            }
        }
    }
}
