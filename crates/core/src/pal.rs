//! The transaction-confirmation PAL — the code whose measurement the
//! service provider trusts.
//!
//! Everything in this module runs *inside* the DRTM session: OS suspended,
//! keyboard hardware-isolated, PCR 17 holding this PAL's measurement. It
//! renders the transaction, collects the human verdict, and emits a
//! [`ConfirmationToken`] which the runtime binds into PCR 17 before
//! quoting. Its size is the paper's TCB argument (experiment E7): a few
//! hundred lines versus millions in the OS + browser.

use crate::protocol::{ConfirmMode, ConfirmationToken, TransactionRequest, Verdict};
use std::time::Duration;
use utp_flicker::pal::{Pal, PalEnv, PalError, Termination};

/// Display rows used by the PAL.
const ROW_TITLE: usize = 0;
const ROW_PAYEE: usize = 2;
const ROW_AMOUNT: usize = 3;
const ROW_MEMO: usize = 4;
const ROW_PROMPT: usize = 6;
const ROW_PROMPT2: usize = 7;
const ROW_STATUS: usize = 9;

/// Marker the prompt line uses before the confirmation code; the human
/// (and only the human — malware is suspended) reads the code after it.
pub const CODE_MARKER: &str = "approve, type: ";

/// The confirmation PAL.
///
/// The PAL's *identity* is its measured image: [`ConfirmationPal::image`]
/// encodes the version and the behaviour-relevant configuration, so a PAL
/// with a different attempt limit is a different PAL to remote verifiers —
/// exactly as on real hardware, where config baked into the SLB changes
/// the measurement.
#[derive(Debug, Clone)]
pub struct ConfirmationPal {
    image: Vec<u8>,
    max_code_attempts: u32,
}

impl ConfirmationPal {
    /// The canonical v1 release (3 code attempts) whose measurement
    /// providers pin.
    pub fn v1() -> Self {
        Self::with_attempts(3)
    }

    /// A variant with a different attempt limit (a *different* PAL).
    pub fn with_attempts(max_code_attempts: u32) -> Self {
        let image = format!(
            "UTP-CONFIRMATION-PAL v1 (max_code_attempts={})",
            max_code_attempts
        )
        .into_bytes();
        ConfirmationPal {
            image,
            max_code_attempts,
        }
    }

    /// The measurement remote verifiers should pin for this PAL.
    pub fn measurement(&self) -> utp_crypto::sha1::Sha1Digest {
        utp_crypto::sha1::Sha1::digest(&self.image)
    }

    /// Renders the transaction screen.
    fn render(&self, env: &mut PalEnv<'_, '_>, req: &TransactionRequest) -> Result<(), PalError> {
        env.show(ROW_TITLE, "=== TRUSTED TRANSACTION CONFIRMATION ===")?;
        env.show(ROW_PAYEE, &format!("Pay to : {}", req.transaction.payee))?;
        env.show(
            ROW_AMOUNT,
            &format!("Amount : {}", req.transaction.display_amount()),
        )?;
        env.show(ROW_MEMO, &format!("Memo   : {}", req.transaction.memo))?;
        Ok(())
    }

    /// Draws a fresh 6-digit code from TPM randomness.
    fn fresh_code(&self, env: &mut PalEnv<'_, '_>) -> Result<String, PalError> {
        let raw = env.get_random(4)?;
        let n = raw.iter().fold(0u32, |acc, &b| (acc << 8) | u32::from(b));
        Ok(format!("{:06}", n % 1_000_000))
    }

    fn run_press_enter(&self, env: &mut PalEnv<'_, '_>) -> Result<(Verdict, u32), PalError> {
        env.show(ROW_PROMPT, "Press ENTER to approve this transaction.")?;
        env.show(ROW_PROMPT2, "Press ESC to reject.")?;
        let result = env.prompt_line()?;
        let verdict = match result.termination {
            Termination::Enter => Verdict::Confirmed,
            Termination::Escape => Verdict::Rejected,
            Termination::Timeout => Verdict::Timeout,
        };
        Ok((verdict, 0))
    }

    fn run_type_code(&self, env: &mut PalEnv<'_, '_>) -> Result<(Verdict, u32), PalError> {
        let code = self.fresh_code(env)?;
        env.show(
            ROW_PROMPT,
            &format!("To {}{} then press ENTER.", CODE_MARKER, code),
        )?;
        env.show(ROW_PROMPT2, "Press ESC to reject.")?;
        for attempt in 1..=self.max_code_attempts {
            let result = env.prompt_line()?;
            match result.termination {
                Termination::Escape => return Ok((Verdict::Rejected, attempt)),
                Termination::Timeout => return Ok((Verdict::Timeout, attempt)),
                Termination::Enter => {
                    if result.text == code {
                        return Ok((Verdict::Confirmed, attempt));
                    }
                    env.clear_row(ROW_STATUS)?;
                    env.show(
                        ROW_STATUS,
                        &format!(
                            "Code incorrect ({} of {} attempts used).",
                            attempt, self.max_code_attempts
                        ),
                    )?;
                }
            }
        }
        Ok((Verdict::Rejected, self.max_code_attempts))
    }
}

impl Pal for ConfirmationPal {
    fn image(&self) -> &[u8] {
        &self.image
    }

    fn invoke(&mut self, env: &mut PalEnv<'_, '_>, input: &[u8]) -> Result<Vec<u8>, PalError> {
        let req = TransactionRequest::from_bytes(input)
            .map_err(|e| PalError::Failed(format!("bad request: {}", e)))?;
        // Model the PAL's own compute (parse + render + hash): ~1 ms.
        env.compute(Duration::from_millis(1));
        self.render(env, &req)?;
        let (verdict, attempts) = match req.mode {
            ConfirmMode::PressEnter => self.run_press_enter(env)?,
            ConfirmMode::TypeCode => self.run_type_code(env)?,
        };
        let token = ConfirmationToken {
            tx_digest: req.transaction.digest(),
            nonce: req.nonce,
            mode: req.mode,
            verdict,
            attempts,
        };
        Ok(token.to_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Transaction, CODE_LEN};
    use utp_crypto::sha1::Sha1;
    use utp_flicker::pal::{OperatorResponse, ScriptedOperator};
    use utp_flicker::runtime::run_pal;
    use utp_platform::keyboard::KeyEvent;
    use utp_platform::machine::{Machine, MachineConfig};

    fn request(mode: ConfirmMode) -> TransactionRequest {
        TransactionRequest {
            transaction: Transaction::new(7, "shop.example", 4_200, "EUR", "order 1"),
            nonce: Sha1::digest(b"nonce"),
            mode,
        }
    }

    fn machine() -> Machine {
        Machine::new(MachineConfig::fast_for_tests(51))
    }

    fn run(
        machine: &mut Machine,
        req: &TransactionRequest,
        op: &mut ScriptedOperator,
    ) -> ConfirmationToken {
        let mut pal = ConfirmationPal::v1();
        let report = run_pal(machine, &mut pal, &req.to_bytes(), op, None).unwrap();
        ConfirmationToken::from_bytes(&report.output).unwrap()
    }

    #[test]
    fn press_enter_confirms() {
        let mut m = machine();
        let req = request(ConfirmMode::PressEnter);
        let mut op = ScriptedOperator::pressing(KeyEvent::Enter);
        let token = run(&mut m, &req, &mut op);
        assert_eq!(token.verdict, Verdict::Confirmed);
        assert_eq!(token.tx_digest, req.transaction.digest());
        assert_eq!(token.nonce, req.nonce);
        // The operator saw the true transaction on the PAL's screen.
        let screen = &op.observed_screens[0];
        assert!(screen.iter().any(|r| r.contains("shop.example")));
        assert!(screen.iter().any(|r| r.contains("42.00 EUR")));
    }

    #[test]
    fn escape_rejects() {
        let mut m = machine();
        let req = request(ConfirmMode::PressEnter);
        let mut op = ScriptedOperator::pressing(KeyEvent::Escape);
        assert_eq!(run(&mut m, &req, &mut op).verdict, Verdict::Rejected);
    }

    #[test]
    fn silence_times_out() {
        let mut m = machine();
        let req = request(ConfirmMode::PressEnter);
        let mut op = ScriptedOperator::silent();
        assert_eq!(run(&mut m, &req, &mut op).verdict, Verdict::Timeout);
    }

    fn extract_code(screen: &[String]) -> String {
        let line = screen
            .iter()
            .find(|r| r.contains(CODE_MARKER))
            .expect("code line shown");
        let idx = line.find(CODE_MARKER).unwrap() + CODE_MARKER.len();
        line[idx..idx + CODE_LEN].to_string()
    }

    /// An operator that reads the code off the screen and types it.
    struct CodeReader {
        typo_first: bool,
    }
    impl utp_flicker::pal::Operator for CodeReader {
        fn respond(&mut self, screen: &[String]) -> OperatorResponse {
            let code = extract_code(screen);
            let mut text = code;
            if self.typo_first {
                self.typo_first = false;
                text = "000000".into();
            }
            let mut events: Vec<KeyEvent> = text.chars().map(KeyEvent::Char).collect();
            events.push(KeyEvent::Enter);
            OperatorResponse {
                events,
                elapsed: Duration::from_secs(3),
            }
        }
    }

    #[test]
    fn correct_code_confirms_on_first_attempt() {
        let mut m = machine();
        let req = request(ConfirmMode::TypeCode);
        let mut pal = ConfirmationPal::v1();
        let mut op = CodeReader { typo_first: false };
        let report = run_pal(&mut m, &mut pal, &req.to_bytes(), &mut op, None).unwrap();
        let token = ConfirmationToken::from_bytes(&report.output).unwrap();
        assert_eq!(token.verdict, Verdict::Confirmed);
        assert_eq!(token.attempts, 1);
        assert!(report.timings.human >= Duration::from_secs(3));
    }

    #[test]
    fn typo_then_correct_code_confirms_on_second_attempt() {
        let mut m = machine();
        let req = request(ConfirmMode::TypeCode);
        let mut pal = ConfirmationPal::v1();
        let mut op = CodeReader { typo_first: true };
        let report = run_pal(&mut m, &mut pal, &req.to_bytes(), &mut op, None).unwrap();
        let token = ConfirmationToken::from_bytes(&report.output).unwrap();
        assert_eq!(token.verdict, Verdict::Confirmed);
        assert_eq!(token.attempts, 2);
    }

    #[test]
    fn exhausted_attempts_reject() {
        let mut m = machine();
        let req = request(ConfirmMode::TypeCode);
        // Always types the wrong code.
        let responses: Vec<OperatorResponse> = (0..3)
            .map(|_| OperatorResponse {
                events: "999999"
                    .chars()
                    .map(KeyEvent::Char)
                    .chain(std::iter::once(KeyEvent::Enter))
                    .collect(),
                elapsed: Duration::ZERO,
            })
            .collect();
        let mut op = ScriptedOperator::with_script(responses);
        let token = run(&mut m, &req, &mut op);
        assert_eq!(token.verdict, Verdict::Rejected);
        assert_eq!(token.attempts, 3);
    }

    #[test]
    fn blind_guessing_cannot_reliably_confirm() {
        // The code has 10^6 possibilities; 3 blind attempts succeed with
        // probability 3e-6. Run a few dozen machines and expect zero hits.
        let mut confirmed = 0;
        for seed in 0..40 {
            let mut m = Machine::new(MachineConfig::fast_for_tests(seed));
            let req = request(ConfirmMode::TypeCode);
            let responses: Vec<OperatorResponse> = (0..3)
                .map(|i| OperatorResponse {
                    events: format!("{:06}", i * 111_111)
                        .chars()
                        .map(KeyEvent::Char)
                        .chain(std::iter::once(KeyEvent::Enter))
                        .collect(),
                    elapsed: Duration::ZERO,
                })
                .collect();
            let mut op = ScriptedOperator::with_script(responses);
            if run(&mut m, &req, &mut op).verdict == Verdict::Confirmed {
                confirmed += 1;
            }
        }
        assert_eq!(confirmed, 0);
    }

    #[test]
    fn codes_are_fresh_per_session() {
        let mut m = machine();
        let req = request(ConfirmMode::TypeCode);
        let mut pal = ConfirmationPal::v1();
        let mut op1 = ScriptedOperator::pressing(KeyEvent::Escape);
        run_pal(&mut m, &mut pal, &req.to_bytes(), &mut op1, None).unwrap();
        let mut op2 = ScriptedOperator::pressing(KeyEvent::Escape);
        run_pal(&mut m, &mut pal, &req.to_bytes(), &mut op2, None).unwrap();
        let c1 = extract_code(&op1.observed_screens[0]);
        let c2 = extract_code(&op2.observed_screens[0]);
        assert_ne!(c1, c2);
    }

    #[test]
    fn malformed_input_fails_without_output() {
        let mut m = machine();
        let mut pal = ConfirmationPal::v1();
        let mut op = ScriptedOperator::silent();
        let err = run_pal(&mut m, &mut pal, b"garbage", &mut op, None).unwrap_err();
        assert!(err.to_string().contains("bad request"));
    }

    #[test]
    fn variants_have_distinct_measurements() {
        assert_ne!(
            ConfirmationPal::v1().measurement(),
            ConfirmationPal::with_attempts(5).measurement()
        );
        // And the measurement matches what SKINIT will record.
        let pal = ConfirmationPal::v1();
        assert_eq!(pal.measurement(), Sha1::digest(pal.image()));
    }

    use std::time::Duration;
}
