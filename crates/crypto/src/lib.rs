//! From-scratch cryptographic primitives for the uni-directional trusted
//! path (UTP) reproduction.
//!
//! The original system relies on a hardware TPM 1.2 (RSA + SHA-1 internally)
//! and host-side OpenSSL. Because no cryptography crates are in the approved
//! offline dependency set, this crate implements everything the stack needs:
//!
//! * [`sha1`] and [`sha256`] — FIPS 180-4 digests (TPM 1.2 PCRs are SHA-1).
//! * [`hmac`] — HMAC over either digest, used for TPM auth sessions.
//! * [`bigint`] — arbitrary-precision unsigned integers ([`BigUint`]).
//! * [`prime`] — Miller–Rabin probabilistic primality + prime generation.
//! * [`rsa`] — RSA key generation, raw RSA, and PKCS#1 v1.5 sign/verify.
//! * [`ct`] — constant-time byte comparison for verifier code.
//!
//! # Security disclaimer
//!
//! This is research / reproduction code. It is functionally correct (test
//! vectors from FIPS / RFC documents) but has **not** been audited, does not
//! attempt full side-channel resistance, and must not be used to protect
//! real data.
//!
//! # Example
//!
//! ```
//! use utp_crypto::rsa::RsaKeyPair;
//! use utp_crypto::sha256::Sha256;
//!
//! let key = RsaKeyPair::generate(512, 42); // small key: doc-test speed
//! let sig = key.sign_pkcs1_sha256(b"transaction #1").unwrap();
//! assert!(key.public().verify_pkcs1_sha256(b"transaction #1", &sig));
//! assert!(!key.public().verify_pkcs1_sha256(b"transaction #2", &sig));
//! let digest = Sha256::digest(b"transaction #1");
//! assert_eq!(digest.as_bytes().len(), 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bigint;
pub mod ct;
pub mod error;
pub mod hmac;
pub mod prime;
pub mod rsa;
pub mod sha1;
pub mod sha256;

pub use bigint::BigUint;
pub use error::CryptoError;
pub use sha1::Sha1Digest;
pub use sha256::Sha256Digest;
