//! HMAC (RFC 2104) over SHA-1 and SHA-256.
//!
//! The TPM 1.2 authorization protocol (OIAP/OSAP) proves knowledge of usage
//! secrets with HMAC-SHA1; the UTP wire protocol uses HMAC-SHA256 for
//! session binding.

use crate::ct::zeroize;
use crate::sha1::{Sha1, Sha1Digest};
use crate::sha256::{Sha256, Sha256Digest};

const BLOCK_LEN: usize = 64; // both SHA-1 and SHA-256 use 64-byte blocks

fn pad_key_sha1(key: &[u8]) -> [u8; BLOCK_LEN] {
    let mut padded = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let d = Sha1::digest(key);
        padded[..20].copy_from_slice(d.as_bytes());
    } else {
        padded[..key.len()].copy_from_slice(key);
    }
    padded
}

fn pad_key_sha256(key: &[u8]) -> [u8; BLOCK_LEN] {
    let mut padded = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let d = Sha256::digest(key);
        padded[..32].copy_from_slice(d.as_bytes());
    } else {
        padded[..key.len()].copy_from_slice(key);
    }
    padded
}

/// HMAC-SHA1 of `data` under `key`.
///
/// # Example
///
/// ```
/// use utp_crypto::hmac::hmac_sha1;
/// // RFC 2202 test case 1
/// let mac = hmac_sha1(&[0x0b; 20], b"Hi There");
/// assert_eq!(mac.to_hex(), "b617318655057264e28bc0b6fb378c8ef146be00");
/// ```
pub fn hmac_sha1(key: &[u8], data: &[u8]) -> Sha1Digest {
    let mut padded = pad_key_sha1(key);
    let mut ipad = [0u8; BLOCK_LEN];
    let mut opad = [0u8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] = padded[i] ^ 0x36;
        opad[i] = padded[i] ^ 0x5c;
    }
    let inner = Sha1::digest_concat(&ipad, data);
    let mac = Sha1::digest_concat(&opad, inner.as_bytes());
    // The padded block and both pads are key-equivalent material
    // (each pad is the key XOR a public constant); wipe them before
    // the stack frame is recycled.
    zeroize(&mut padded);
    zeroize(&mut ipad);
    zeroize(&mut opad);
    mac
}

/// HMAC-SHA256 of `data` under `key`.
///
/// # Example
///
/// ```
/// use utp_crypto::hmac::hmac_sha256;
/// // RFC 4231 test case 1
/// let mac = hmac_sha256(&[0x0b; 20], b"Hi There");
/// assert_eq!(
///     mac.to_hex(),
///     "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
/// );
/// ```
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> Sha256Digest {
    let mut padded = pad_key_sha256(key);
    let mut ipad = [0u8; BLOCK_LEN];
    let mut opad = [0u8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] = padded[i] ^ 0x36;
        opad[i] = padded[i] ^ 0x5c;
    }
    let inner = Sha256::digest_concat(&ipad, data);
    let mac = Sha256::digest_concat(&opad, inner.as_bytes());
    // Key-equivalent scratch; see `hmac_sha1`.
    zeroize(&mut padded);
    zeroize(&mut ipad);
    zeroize(&mut opad);
    mac
}

/// HMAC-SHA256 over the concatenation of several parts, avoiding an
/// intermediate allocation at call sites that bind structured messages.
pub fn hmac_sha256_parts(key: &[u8], parts: &[&[u8]]) -> Sha256Digest {
    let mut padded = pad_key_sha256(key);
    let mut ipad = [0u8; BLOCK_LEN];
    let mut opad = [0u8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] = padded[i] ^ 0x36;
        opad[i] = padded[i] ^ 0x5c;
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    for p in parts {
        inner.update(p);
    }
    let inner = inner.finalize();
    let mac = Sha256::digest_concat(&opad, inner.as_bytes());
    // Key-equivalent scratch; see `hmac_sha1`.
    zeroize(&mut padded);
    zeroize(&mut ipad);
    zeroize(&mut opad);
    mac
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 2202 (HMAC-SHA1) vectors.
    #[test]
    fn rfc2202_case2() {
        let mac = hmac_sha1(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(mac.to_hex(), "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
    }

    #[test]
    fn rfc2202_case3() {
        let mac = hmac_sha1(&[0xaa; 20], &[0xdd; 50]);
        assert_eq!(mac.to_hex(), "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
    }

    #[test]
    fn rfc2202_long_key() {
        // Case 6: 80-byte key (longer than block size).
        let mac = hmac_sha1(
            &[0xaa; 80],
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(mac.to_hex(), "aa4ae5e15272d00e95705637ce8a3b55ed402112");
    }

    // RFC 4231 (HMAC-SHA256) vectors.
    #[test]
    fn rfc4231_case2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            mac.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let mac = hmac_sha256(&[0xaa; 20], &[0xdd; 50]);
        assert_eq!(
            mac.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_long_key() {
        // Case 6: 131-byte key.
        let mac = hmac_sha256(
            &[0xaa; 131],
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            mac.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn parts_equals_concat() {
        let key = b"k";
        let whole = hmac_sha256(key, b"abcdef");
        let parts = hmac_sha256_parts(key, &[b"ab", b"cd", b"ef"]);
        assert_eq!(whole, parts);
    }

    #[test]
    fn different_keys_differ() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
        assert_ne!(hmac_sha1(b"k1", b"m"), hmac_sha1(b"k2", b"m"));
    }
}
