//! `utp-journal` — crash-safe durability for the settlement path.
//!
//! The paper's server-side guarantee (no forged or replayed transaction
//! is ever accepted) must survive a crash of the verifier: a settled
//! nonce that is forgotten on restart reopens double-spend. This crate
//! makes the settlement path durable the way the rest of this repo
//! models hardware — as a *simulated device* on the virtual clock:
//!
//! - [`device`]: an append-only [`StorageDevice`] with calibrated
//!   write/flush/read latency and injectable faults (torn tails,
//!   dropped flushes, halts, crash points at every record boundary);
//! - [`record`]: the checksummed, length-prefixed WAL frame format and
//!   the typed records of the settlement path;
//! - [`journal`]: the [`Journal`] facade — group commit (batching
//!   settle records into one flush), snapshots with log truncation,
//!   and the WAL-before-ack barrier [`Journal::sync_to`];
//! - [`snapshot`]: whole-state snapshot frames (last valid wins);
//! - [`recover`]: pure, total [`replay_bytes`] rebuilding
//!   [`RecoveredState`] — nonce ledger, store orders/balances, and
//!   audit history — treating any torn/corrupt suffix as a clean crash
//!   (prefix-consistent, fail-closed).
//!
//! Nothing in here may be reachable from the TCB: the trusted path
//! must never depend on disk. The `tcb-reachability` analyzer pass
//! enforces that, and `secret-taint` treats journal appends as sinks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod journal;
pub mod record;
pub mod recover;
pub mod snapshot;

pub use device::{DeviceCounters, DeviceProfile, FaultPlan, StorageDevice};
pub use journal::{AppendReceipt, Journal, JournalConfig, JournalStats};
pub use record::{
    encode_frame, frame_boundaries, scan, Frame, JournalRecord, Scan, ScanEnd, NO_ORDER,
};
pub use recover::{
    replay_bytes, LogEnd, RecoveredDecision, RecoveredOrder, RecoveredState, RecoveredStatus,
    RecoveryReport,
};
pub use snapshot::{decode_snapshot, encode_snapshot};
