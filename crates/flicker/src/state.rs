//! Rollback-protected sealed state for PALs.
//!
//! Sealed storage alone lets a PAL keep secrets across sessions, but the
//! untrusted OS stores the blob — so it can replay an *old* blob (state
//! rollback). The standard fix, which the paper's client uses for its
//! session keys, pairs the blob with a TPM monotonic counter: each save
//! increments the counter and seals the new count inside; each load checks
//! the sealed count against the hardware counter.

use crate::error::FlickerError;
use crate::marshal::{put_bytes, put_u64, Reader};
use crate::pal::{PalEnv, PalError};
use utp_tpm::pcr::PcrSelection;
use utp_tpm::seal::SealedBlob;

/// Saves `data` as the new current state: increments the counter, then
/// seals `(counter, data)` to the current PCR values (i.e. to *this* PAL).
///
/// # Errors
///
/// Propagates TPM failures as [`PalError`].
pub fn save_state(
    env: &mut PalEnv<'_, '_>,
    srk_handle: u32,
    counter_handle: u32,
    data: &[u8],
) -> Result<SealedBlob, PalError> {
    let version = env.increment_counter(counter_handle)?;
    let mut payload = Vec::with_capacity(12 + data.len());
    put_u64(&mut payload, version);
    put_bytes(&mut payload, data);
    env.seal_to_current(srk_handle, PcrSelection::drtm_only(), &payload)
}

/// Loads state saved by [`save_state`], rejecting rollbacks.
///
/// # Errors
///
/// * [`PalError::Failed`] with `"rollback"` in the message when the sealed
///   version does not match the hardware counter;
/// * TPM errors (wrong PAL, tampered blob) pass through.
pub fn load_state(
    env: &mut PalEnv<'_, '_>,
    srk_handle: u32,
    counter_handle: u32,
    blob: &SealedBlob,
) -> Result<Vec<u8>, PalError> {
    let payload = env.unseal(srk_handle, blob)?;
    let mut r = Reader::new(&payload);
    let version = r
        .u64()
        .map_err(|e: FlickerError| PalError::Failed(e.to_string()))?;
    let data = r
        .bytes()
        .map_err(|e: FlickerError| PalError::Failed(e.to_string()))?
        .to_vec();
    r.finish()
        .map_err(|e: FlickerError| PalError::Failed(e.to_string()))?;
    let current = env.read_counter(counter_handle)?;
    if version != current {
        return Err(PalError::Failed(format!(
            "rollback detected: blob version {} != counter {}",
            version, current
        )));
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pal::ScriptedOperator;
    use utp_platform::machine::{Machine, MachineConfig};
    use utp_tpm::keys::SRK_HANDLE;

    fn setup() -> (Machine, u32) {
        let mut m = Machine::new(MachineConfig::fast_for_tests(41));
        let counter = m.tpm_provision().create_counter().unwrap();
        (m, counter)
    }

    #[test]
    fn save_load_roundtrip_in_same_pal() {
        let (mut m, counter) = setup();
        let mut op = ScriptedOperator::silent();
        let blob = {
            let mut s = m.skinit(b"pal").unwrap();
            let mut env = PalEnv::new(&mut s, &mut op);
            save_state(&mut env, SRK_HANDLE, counter, b"session key v1").unwrap()
        };
        let mut s = m.skinit(b"pal").unwrap();
        let mut env = PalEnv::new(&mut s, &mut op);
        assert_eq!(
            load_state(&mut env, SRK_HANDLE, counter, &blob).unwrap(),
            b"session key v1"
        );
    }

    #[test]
    fn rollback_is_detected() {
        let (mut m, counter) = setup();
        let mut op = ScriptedOperator::silent();
        let (old_blob, _new_blob) = {
            let mut s = m.skinit(b"pal").unwrap();
            let mut env = PalEnv::new(&mut s, &mut op);
            let old = save_state(&mut env, SRK_HANDLE, counter, b"v1").unwrap();
            let new = save_state(&mut env, SRK_HANDLE, counter, b"v2").unwrap();
            (old, new)
        };
        // OS replays the stale blob in the next session.
        let mut s = m.skinit(b"pal").unwrap();
        let mut env = PalEnv::new(&mut s, &mut op);
        let err = load_state(&mut env, SRK_HANDLE, counter, &old_blob).unwrap_err();
        assert!(err.to_string().contains("rollback"), "{}", err);
    }

    #[test]
    fn latest_blob_still_loads_after_rollback_attempt() {
        let (mut m, counter) = setup();
        let mut op = ScriptedOperator::silent();
        let (old_blob, new_blob) = {
            let mut s = m.skinit(b"pal").unwrap();
            let mut env = PalEnv::new(&mut s, &mut op);
            let old = save_state(&mut env, SRK_HANDLE, counter, b"v1").unwrap();
            let new = save_state(&mut env, SRK_HANDLE, counter, b"v2").unwrap();
            (old, new)
        };
        let mut s = m.skinit(b"pal").unwrap();
        let mut env = PalEnv::new(&mut s, &mut op);
        assert!(load_state(&mut env, SRK_HANDLE, counter, &old_blob).is_err());
        assert_eq!(
            load_state(&mut env, SRK_HANDLE, counter, &new_blob).unwrap(),
            b"v2"
        );
    }

    #[test]
    fn other_pal_cannot_load_state() {
        let (mut m, counter) = setup();
        let mut op = ScriptedOperator::silent();
        let blob = {
            let mut s = m.skinit(b"honest pal").unwrap();
            let mut env = PalEnv::new(&mut s, &mut op);
            save_state(&mut env, SRK_HANDLE, counter, b"secret").unwrap()
        };
        let mut s = m.skinit(b"evil pal").unwrap();
        let mut env = PalEnv::new(&mut s, &mut op);
        assert!(load_state(&mut env, SRK_HANDLE, counter, &blob).is_err());
    }
}
