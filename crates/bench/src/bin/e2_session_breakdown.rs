//! Prints the E2 table (trusted-session latency breakdown).
use utp_bench::experiments::e2_session_breakdown as e2;

fn main() {
    let rows = e2::run(1024);
    println!("{}", e2::render(&rows));
}
