//! Accounts and order lifecycle.

use std::collections::HashMap;
use utp_core::protocol::Transaction;
use utp_core::verifier::VerifyError;

/// A customer account.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Account {
    /// Balance in minor units.
    pub balance_cents: i64,
}

/// Order status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderStatus {
    /// Waiting for confirmation evidence.
    Pending,
    /// Confirmed and settled.
    Confirmed,
    /// Evidence arrived but was rejected.
    Rejected(VerifyError),
}

/// An order: a transaction plus the account it debits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Order {
    /// The underlying transaction.
    pub transaction: Transaction,
    /// Account to debit.
    pub account: String,
    /// Current status.
    pub status: OrderStatus,
}

/// In-memory store.
#[derive(Debug, Clone, Default)]
pub struct Store {
    accounts: HashMap<String, Account>,
    orders: HashMap<u64, Order>,
    next_order_id: u64,
}

impl Store {
    /// An empty store.
    pub fn new() -> Self {
        Store::default()
    }

    /// Creates an account with an opening balance.
    pub fn open_account(&mut self, name: impl Into<String>, balance_cents: i64) {
        self.accounts.insert(name.into(), Account { balance_cents });
    }

    /// Account lookup.
    pub fn account(&self, name: &str) -> Option<&Account> {
        self.accounts.get(name)
    }

    /// Creates a pending order and returns its id.
    pub fn create_order(&mut self, account: impl Into<String>, transaction: Transaction) -> u64 {
        let id = self.next_order_id;
        self.next_order_id += 1;
        self.orders.insert(
            id,
            Order {
                transaction,
                account: account.into(),
                status: OrderStatus::Pending,
            },
        );
        id
    }

    /// Order lookup.
    pub fn order(&self, id: u64) -> Option<&Order> {
        self.orders.get(&id)
    }

    /// Marks an order confirmed and debits the account.
    ///
    /// # Panics
    ///
    /// Panics if the order does not exist (caller bug: ids come from
    /// [`Store::create_order`]). Server-facing code where the id crosses a
    /// trust boundary should use [`Store::try_settle`].
    pub fn settle(&mut self, id: u64) {
        assert!(self.try_settle(id), "order exists");
    }

    /// Non-panicking settle: marks the order confirmed and debits the
    /// account, returning `false` when the id is unknown. This is what the
    /// verification service's submission path uses, since order ids there
    /// arrive from outside the process.
    pub fn try_settle(&mut self, id: u64) -> bool {
        let Some(order) = self.orders.get_mut(&id) else {
            return false;
        };
        order.status = OrderStatus::Confirmed;
        if let Some(account) = self.accounts.get_mut(&order.account) {
            account.balance_cents -= order.transaction.amount_cents as i64;
        }
        true
    }

    /// Marks an order rejected with its reason. Confirmed is sticky: a
    /// settled order keeps its debit, so a late terminal error (e.g. a
    /// replay of its own evidence) must not demote it — the audit log,
    /// not the order status, records the failed attempt.
    pub fn reject(&mut self, id: u64, reason: VerifyError) {
        if let Some(order) = self.orders.get_mut(&id) {
            if !matches!(order.status, OrderStatus::Confirmed) {
                order.status = OrderStatus::Rejected(reason);
            }
        }
    }

    /// Iterates all accounts — snapshot support. Order is unspecified.
    pub fn accounts(&self) -> impl Iterator<Item = (&String, &Account)> {
        self.accounts.iter()
    }

    /// Iterates all orders — snapshot support. Order is unspecified.
    pub fn orders(&self) -> impl Iterator<Item = (&u64, &Order)> {
        self.orders.iter()
    }

    /// Restores an order under its original id after recovery, bumping
    /// the id allocator past it. Balances are **not** touched: recovery
    /// replays balance effects through account state directly.
    pub fn restore_order(&mut self, id: u64, order: Order) {
        self.next_order_id = self.next_order_id.max(id + 1);
        self.orders.insert(id, order);
    }

    /// Count of orders in each status: `(pending, confirmed, rejected)`.
    pub fn status_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for o in self.orders.values() {
            match o.status {
                OrderStatus::Pending => c.0 += 1,
                OrderStatus::Confirmed => c.1 += 1,
                OrderStatus::Rejected(_) => c.2 += 1,
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(amount: u64) -> Transaction {
        Transaction::new(1, "shop", amount, "EUR", "")
    }

    #[test]
    fn order_lifecycle_confirmed() {
        let mut s = Store::new();
        s.open_account("alice", 10_000);
        let id = s.create_order("alice", tx(2_500));
        assert_eq!(s.order(id).unwrap().status, OrderStatus::Pending);
        s.settle(id);
        assert_eq!(s.order(id).unwrap().status, OrderStatus::Confirmed);
        assert_eq!(s.account("alice").unwrap().balance_cents, 7_500);
    }

    #[test]
    fn order_lifecycle_rejected_leaves_balance() {
        let mut s = Store::new();
        s.open_account("bob", 5_000);
        let id = s.create_order("bob", tx(1_000));
        s.reject(id, VerifyError::Replayed);
        assert_eq!(
            s.order(id).unwrap().status,
            OrderStatus::Rejected(VerifyError::Replayed)
        );
        assert_eq!(s.account("bob").unwrap().balance_cents, 5_000);
    }

    #[test]
    fn try_settle_unknown_order_is_a_no_op() {
        let mut s = Store::new();
        s.open_account("alice", 1_000);
        assert!(!s.try_settle(999));
        assert_eq!(s.account("alice").unwrap().balance_cents, 1_000);
    }

    #[test]
    fn order_ids_are_unique() {
        let mut s = Store::new();
        let a = s.create_order("x", tx(1));
        let b = s.create_order("x", tx(1));
        assert_ne!(a, b);
    }

    #[test]
    fn status_counts_aggregate() {
        let mut s = Store::new();
        s.open_account("a", 0);
        let p = s.create_order("a", tx(1));
        let c = s.create_order("a", tx(1));
        let r = s.create_order("a", tx(1));
        s.settle(c);
        s.reject(r, VerifyError::Expired);
        let _ = p;
        assert_eq!(s.status_counts(), (1, 1, 1));
    }
}
