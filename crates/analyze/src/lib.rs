//! `utp-analyze` — workspace-wide TCB / constant-time / panic-freedom
//! static analyzer for the UTP reproduction.
//!
//! The paper's central claim is a *minimal, auditable* trusted computing
//! base: the confirmation PAL plus the TPM driver. This crate machine-
//! checks the discipline that claim rests on, in the spirit of the
//! automated-verification line of work around DRTM protocols:
//!
//! 1. [`passes::tcb_boundary`] — TCB files import only allowlisted crates;
//! 2. [`passes::no_panic`] — no abort paths in TCB code;
//! 3. [`passes::ct_discipline`] — secret comparisons go through `ct_eq`;
//! 4. [`passes::forbid_unsafe`] — `#![forbid(unsafe_code)]` everywhere;
//! 5. [`passes::wallclock`] — the simulated clock is the only time source.
//!
//! Violations that are individually justified carry an inline
//! `// utp-analyze: allow(<lint>) <reason>` annotation; the reason is
//! mandatory and annotations that suppress nothing are flagged, so the
//! set of waivers cannot silently rot.
//!
//! The analyzer is dependency-light on purpose: a hand-rolled lexer
//! ([`lexer`]) rather than `syn`, hand-rolled JSON output, no regex. It
//! runs in the test suite ([`analyze_workspace`] from
//! `tests/static_analysis.rs` at the workspace root) so `cargo test`
//! fails on any new deny-level finding.

#![forbid(unsafe_code)]

pub mod diag;
pub mod lexer;
pub mod passes;
pub mod source;
pub mod workspace;

use diag::{Diagnostic, Severity};
use source::SourceFile;

/// Analyzes one file's source text. `path` must be workspace-relative
/// with forward slashes — pass scoping keys off it.
pub fn analyze_source(path: &str, text: &str) -> Vec<Diagnostic> {
    let file = SourceFile::parse(path, text);
    let registry = passes::registry();
    let known_lints: Vec<&str> = registry.iter().map(|p| p.id()).collect();
    let mut diags = Vec::new();
    let mut used = vec![false; file.suppressions.len()];

    for pass in &registry {
        for finding in pass.check(&file) {
            let mut suppressed = false;
            for (si, s) in file.suppressions.iter().enumerate() {
                if s.lint == pass.id() && file.suppression_covers(si, finding.line) {
                    used[si] = true;
                    suppressed = true;
                }
            }
            if !suppressed {
                diags.push(Diagnostic {
                    file: file.path.clone(),
                    line: finding.line,
                    lint: pass.id(),
                    severity: finding.severity,
                    message: finding.message,
                });
            }
        }
    }

    for bad in &file.bad_annotations {
        diags.push(Diagnostic {
            file: file.path.clone(),
            line: bad.line,
            lint: "malformed-allow",
            severity: Severity::Deny,
            message: bad.problem.clone(),
        });
    }
    for (si, s) in file.suppressions.iter().enumerate() {
        if !known_lints.contains(&s.lint.as_str()) {
            diags.push(Diagnostic {
                file: file.path.clone(),
                line: s.line,
                lint: "malformed-allow",
                severity: Severity::Deny,
                message: format!(
                    "allow({}) names an unknown lint (known: {})",
                    s.lint,
                    known_lints.join(", ")
                ),
            });
        } else if !used[si] {
            diags.push(Diagnostic {
                file: file.path.clone(),
                line: s.line,
                lint: "unused-allow",
                severity: Severity::Warn,
                message: format!(
                    "allow({}) suppresses nothing here; remove it so the waiver list \
                     stays honest",
                    s.lint
                ),
            });
        }
    }

    diags.sort_by(|a, b| (a.line, a.lint).cmp(&(b.line, b.lint)));
    diags
}

/// Analyzes every `.rs` file under `root` (see [`workspace::collect_rs_files`]
/// for the walk rules). Diagnostics are sorted by path, then line.
pub fn analyze_workspace(root: &std::path::Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();
    for (rel, abs) in workspace::collect_rs_files(root)? {
        let text = std::fs::read_to_string(&abs)?;
        diags.extend(analyze_source(&rel, &text));
    }
    diags.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    Ok(diags)
}

/// Count of deny-level diagnostics (what gates the exit code).
pub fn deny_count(diags: &[Diagnostic]) -> usize {
    diags
        .iter()
        .filter(|d| d.severity == Severity::Deny)
        .count()
}
