//! Token-level helpers shared by the flow-sensitive passes: statement
//! shapes (`let` / reassignment), local-use detection, and postfix
//! chains.

use crate::cfg::Stmt;
use crate::items::{CallSite, FnItem};
use crate::lexer::{Token, TokenKind};

/// Call sites of `item` inside the statement's token range.
pub fn calls_in<'a>(item: &'a FnItem, s: &Stmt) -> impl Iterator<Item = &'a CallSite> {
    let (lo, hi) = (s.lo, s.hi);
    item.calls.iter().filter(move |c| lo <= c.tok && c.tok < hi)
}

/// Is the ident at `i` a *use of a local* (as opposed to a method or
/// field name after `.`, or a path segment after `::`)? Keeps a local
/// named `len` from colliding with every `.len()` call.
pub fn is_local_use(toks: &[Token], i: usize) -> bool {
    toks[i].kind == TokenKind::Ident
        && !i
            .checked_sub(1)
            .is_some_and(|j| toks[j].is_punct(".") || toks[j].is_punct("::"))
}

/// `(bound name, rhs start index, is compound op-assign)` for
/// `let x = rhs;`, `x = rhs;`, or `x op= rhs;` statements; `None` for
/// anything else (tuple/struct patterns are conservatively untracked).
pub fn binding_of(toks: &[Token], s: &Stmt) -> Option<(String, usize, bool)> {
    let t = &toks[s.lo..s.hi];
    if t.is_empty() {
        return None;
    }
    if t[0].is_ident("let") {
        let mut i = 1;
        if t.get(i).is_some_and(|t| t.is_ident("mut")) {
            i += 1;
        }
        let tok = t.get(i).filter(|t| t.kind == TokenKind::Ident)?;
        if tok.is_ident("else") {
            return None;
        }
        // A plain binding's name is followed by `=` or `: Type`;
        // anything else (`Some(x)`, `Point { .. }`, `ref x`) is a
        // pattern and conservatively untracked.
        if !t
            .get(i + 1)
            .is_some_and(|n| n.is_punct("=") || n.is_punct(":"))
        {
            return None;
        }
        let name = tok.text.clone();
        // First `=` after the pattern (skips `: Type` annotations; `==`
        // lexes as its own token so comparisons can't match).
        let eq = (i + 1..t.len()).find(|&j| t[j].is_punct("="))?;
        return Some((name, s.lo + eq + 1, false));
    }
    if t[0].kind == TokenKind::Ident && t.len() >= 3 {
        if t[1].is_punct("=") {
            return Some((t[0].text.clone(), s.lo + 2, false));
        }
        const OPS: &[&str] = &["+", "-", "*", "/", "%", "&", "|", "^"];
        if OPS.iter().any(|o| t[1].is_punct(o)) && t[2].is_punct("=") {
            return Some((t[0].text.clone(), s.lo + 3, true));
        }
    }
    None
}

/// Idents of the receiver chain to the left of the name token at `i`:
/// `shard.ledger.lock().settle` yields `["lock", "ledger", "shard"]`
/// from the `settle` token (call groups are skipped, their method name
/// collected). Empty for free calls and path calls.
pub fn recv_chain_idents(toks: &[Token], i: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut j = i;
    // The chain continues only across a `.` to the left.
    while let Some(dot) = j.checked_sub(1).filter(|&d| toks[d].is_punct(".")) {
        let Some(prev) = dot.checked_sub(1) else {
            break;
        };
        if toks[prev].is_punct(")") || toks[prev].is_punct("]") {
            // A call/index group: skip it and collect its method name.
            let (open, close) = if toks[prev].is_punct(")") {
                ("(", ")")
            } else {
                ("[", "]")
            };
            let Some(o) = crate::items::matching_back(toks, prev, open, close) else {
                break;
            };
            let Some(name) = o
                .checked_sub(1)
                .filter(|&n| toks[n].kind == TokenKind::Ident)
            else {
                break;
            };
            out.push(toks[name].text.clone());
            j = name;
        } else if toks[prev].kind == TokenKind::Ident {
            out.push(toks[prev].text.clone());
            j = prev;
        } else {
            break;
        }
    }
    out
}

/// Does the token range `[lo, hi)` contain the ident `name`?
pub fn range_has_ident(toks: &[Token], lo: usize, hi: usize, name: &str) -> bool {
    toks[lo..hi.min(toks.len())]
        .iter()
        .any(|t| t.is_ident(name))
}

/// Walks the postfix chain after the ident at `i` (`.method(...)`,
/// `.field`, `[...]`, `?`) and reports whether any projection in the
/// chain is one of `public` — e.g. `key.as_bytes().len()` is public
/// because of the final `.len()`.
pub fn postfix_projects_public(toks: &[Token], i: usize, public: &[&str]) -> bool {
    let mut j = i + 1;
    while j < toks.len() {
        if toks[j].is_punct(".") && toks.get(j + 1).is_some_and(|t| t.kind == TokenKind::Ident) {
            if public.contains(&toks[j + 1].text.as_str()) {
                return true;
            }
            j += 2;
        } else if toks[j].is_punct("(") {
            match crate::items::matching(toks, j, "(", ")") {
                Some(c) => j = c + 1,
                None => return false,
            }
        } else if toks[j].is_punct("[") {
            match crate::items::matching(toks, j, "[", "]") {
                Some(c) => j = c + 1,
                None => return false,
            }
        } else if toks[j].is_punct("?") {
            j += 1;
        } else {
            return false;
        }
    }
    false
}
