//! Recovery smoke gate: runs a journaled end-to-end transaction, crashes
//! the provider, recovers it on the same virtual clock, and asserts the
//! whole crash→recover trace is **byte-identical across two runs** (the
//! determinism contract extended to the durability path). Writes the
//! canonical trace, a recovered-state summary, and the E11 durability
//! tables to `target/journal/` for CI artifact upload.
//!
//! Run: `cargo run -p utp-bench --bin recovery_smoke`
use std::fmt::Write as _;
use std::fs;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;
use utp_bench::experiments::e11_durability as e11;
use utp_core::ca::PrivacyCa;
use utp_core::client::{Client, ClientConfig};
use utp_core::operator::{ConfirmingHuman, Intent};
use utp_core::verifier::VerifierConfig;
use utp_journal::{Journal, JournalConfig, RecoveredStatus, RecoveryReport};
use utp_netsim::{Link, LinkConfig};
use utp_platform::machine::{Machine, MachineConfig};
use utp_server::flow::{recover_provider, run_transaction};
use utp_server::provider::ServiceProvider;
use utp_trace::{Export, Recorder};

/// One full crash→recover cycle; returns the canonical trace of the
/// restart plus the recovered-state summary.
///
/// Only the restart is recorded: `run_transaction` folds *host-measured*
/// verify CPU into the virtual clock (the RSA verifies are our actual
/// code), so pre-crash timestamps carry scheduler noise by design. The
/// recovery path is purely virtual — its trace must be byte-stable.
fn crash_recover_once() -> (String, String) {
    let recorder = Recorder::new();
    let ca = PrivacyCa::new(512, 551);
    let mut provider = ServiceProvider::new(ca.public_key().clone(), 552);
    let journal = Arc::new(Journal::new(JournalConfig::fast_for_tests()));
    provider.attach_journal(Arc::clone(&journal));
    provider.open_account("alice", 1_000_000);
    let mut machine = Machine::new(MachineConfig::fast_for_tests(553));
    let enrollment = ca.enroll(&mut machine);
    let mut client = Client::new(ClientConfig::fast_for_tests(), enrollment);
    let mut link = Link::new(LinkConfig::fixed_rtt(Duration::from_millis(40)), 554);
    for i in 0..3u64 {
        let mut human = ConfirmingHuman::new(
            Intent {
                payee: "bookshop".into(),
                amount: format!("{}.00 EUR", 10 + i),
                approve: true,
            },
            560 + i,
        );
        let report = run_transaction(
            &mut machine,
            &mut client,
            &mut provider,
            &mut link,
            "alice",
            "bookshop",
            (10 + i) * 100,
            "order",
            &mut human,
        )
        .expect("link delivers");
        assert!(report.outcome.is_ok(), "genuine confirmation settles");
        assert!(report.durability > Duration::ZERO, "WAL time on the clock");
    }

    // Power fails; the replacement host boots a fresh virtual clock and
    // replays the WAL.
    drop(provider);
    journal.crash();
    let mut restarted = Machine::new(MachineConfig::fast_for_tests(556));
    let (mut recovered, report) = {
        let _sink = recorder.install("restart");
        recover_provider(
            &mut restarted,
            ca.public_key().clone(),
            VerifierConfig::default(),
            555,
            Arc::clone(&journal),
        )
    };
    assert!(
        restarted.now() > Duration::ZERO,
        "recovery reads cost device time"
    );
    (
        recorder.export_jsonl(Export::Canonical),
        summarize(&mut recovered, &report),
    )
}

fn summarize(provider: &mut ServiceProvider, report: &RecoveryReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "recovered-state summary (recovery_smoke)");
    let _ = writeln!(
        out,
        "records applied {}, skipped {}, orphan decisions {}, snapshot used {}",
        report.records_applied,
        report.records_skipped,
        report.orphan_decisions,
        report.snapshot_used
    );
    let _ = writeln!(
        out,
        "valid log bytes {}, log end {:?}",
        report.valid_log_bytes, report.log_end
    );
    for (name, account) in provider.store().accounts() {
        let _ = writeln!(out, "account {name}: {} cents", account.balance_cents);
    }
    let state = provider
        .checkpoint()
        .expect("journaled provider checkpoints");
    let confirmed = state
        .orders
        .values()
        .filter(|o| o.status == RecoveredStatus::Confirmed)
        .count();
    let _ = writeln!(
        out,
        "orders {} ({} confirmed), nonces consumed {}, audit entries {}",
        state.orders.len(),
        confirmed,
        state.used.len(),
        state.audit.len()
    );
    out
}

fn main() -> ExitCode {
    let (trace_a, summary_a) = crash_recover_once();
    let (trace_b, summary_b) = crash_recover_once();
    if trace_a != trace_b || summary_a != summary_b {
        eprintln!("recovery smoke FAILED: crash→recover runs diverge");
        for (i, (la, lb)) in trace_a.lines().zip(trace_b.lines()).enumerate() {
            if la != lb {
                eprintln!(
                    "first differing trace line {}:\n  run 1: {la}\n  run 2: {lb}",
                    i + 1
                );
                break;
            }
        }
        return ExitCode::FAILURE;
    }
    if !trace_a.contains("journal.recover") {
        eprintln!("recovery smoke FAILED: no journal.recover span in the canonical trace");
        return ExitCode::FAILURE;
    }
    let e11_report = e11::run(2_048, &[1, 4, 16, 64], &[256, 1_024, 4_096]);
    let mut e11_table = e11::render(&e11_report);
    for profile in ["nvme", "ssd", "hdd"] {
        let speedup = e11::best_speedup(&e11_report, profile);
        if speedup < 3.0 {
            eprintln!(
                "recovery smoke FAILED: {profile} group commit only {speedup:.2}x \
                 over flush-per-record (acceptance bar is 3x)"
            );
            return ExitCode::FAILURE;
        }
        let _ = writeln!(
            e11_table,
            "{profile}: best batch sustains {speedup:.1}x flush-per-record throughput"
        );
    }
    if let Err(e) = fs::create_dir_all("target/journal")
        .and_then(|()| fs::write("target/journal/recovery_canonical.jsonl", &trace_a))
        .and_then(|()| fs::write("target/journal/recovered_state.txt", &summary_a))
        .and_then(|()| fs::write("target/journal/e11_table.txt", &e11_table))
    {
        eprintln!("recovery smoke FAILED: cannot write target/journal artifacts: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "recovery smoke OK: {} canonical records byte-identical across 2 crash→recover runs; \
         artifacts in target/journal/",
        trace_a.lines().count()
    );
    ExitCode::SUCCESS
}
