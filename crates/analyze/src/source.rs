//! Per-file analysis context: tokens, allow-annotations, test regions,
//! item structure.

use crate::items::{parse_items, FileItems};
use crate::lexer::{lex, Token, TokenKind};

/// An inline `// utp-analyze: allow(<lint>) <reason>` annotation.
///
/// The annotation suppresses findings of `lint` on its own line (trailing
/// form) and on the following line (standalone form). A reason is
/// mandatory; annotations without one are themselves deny-level findings.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Lint id being allowed.
    pub lint: String,
    /// Why the violation is acceptable here (must be non-empty).
    pub reason: String,
    /// 1-based line of the annotation comment.
    pub line: u32,
}

/// A malformed `utp-analyze:` annotation (bad syntax or missing reason).
#[derive(Debug, Clone)]
pub struct BadAnnotation {
    /// 1-based line of the comment.
    pub line: u32,
    /// What is wrong with it.
    pub problem: String,
}

/// One parsed source file ready for the passes.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// Token stream (comments and strings already handled by the lexer).
    pub tokens: Vec<Token>,
    /// Valid allow-annotations.
    pub suppressions: Vec<Suppression>,
    /// Malformed allow-annotations.
    pub bad_annotations: Vec<BadAnnotation>,
    /// Line ranges (inclusive) covered by `#[cfg(test)]` modules.
    pub test_ranges: Vec<(u32, u32)>,
    /// Item-level structure (functions, structs, impls, item spans).
    pub items: FileItems,
}

impl SourceFile {
    /// Lexes `text` and extracts annotations and test regions.
    pub fn parse(path: &str, text: &str) -> SourceFile {
        let lexed = lex(text);
        let mut suppressions = Vec::new();
        let mut bad_annotations = Vec::new();
        for comment in &lexed.comments {
            let trimmed = comment.text.trim();
            let Some(rest) = trimmed.strip_prefix("utp-analyze:") else {
                continue;
            };
            match parse_allow(rest.trim()) {
                Ok((lint, reason)) => suppressions.push(Suppression {
                    lint,
                    reason,
                    line: comment.line,
                }),
                Err(problem) => bad_annotations.push(BadAnnotation {
                    line: comment.line,
                    problem,
                }),
            }
        }
        let test_ranges = find_test_ranges(&lexed.tokens);
        let items = parse_items(&lexed.tokens);
        SourceFile {
            path: path.to_string(),
            tokens: lexed.tokens,
            suppressions,
            bad_annotations,
            test_ranges,
            items,
        }
    }

    /// Is `line` inside a `#[cfg(test)]` module?
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(start, end)| (start..=end).contains(&line))
    }

    /// Is a finding of `lint` at `line` covered by an allow-annotation?
    pub fn is_suppressed(&self, lint: &str, line: u32) -> bool {
        (0..self.suppressions.len())
            .any(|i| self.suppressions[i].lint == lint && self.suppression_covers(i, line))
    }

    /// Does suppression `idx` cover findings on `line`? A trailing
    /// annotation (code on the same line) covers only that line. A
    /// standalone annotation covers the next code line — and when that
    /// line starts an item (attributes included), the *whole item*: an
    /// `allow(..)` above a `fn` or `struct` waives every finding inside
    /// it, not just the first line (this used to be off by one for any
    /// item with attributes or a multi-line body).
    pub fn suppression_covers(&self, idx: usize, line: u32) -> bool {
        let s = &self.suppressions[idx];
        if s.line == line {
            return true;
        }
        let standalone = !self.tokens.iter().any(|t| t.line == s.line);
        if !standalone {
            return false;
        }
        // First code line after the annotation (doc comments and blank
        // lines in between don't break the association).
        let Some(target) = self
            .tokens
            .iter()
            .map(|t| t.line)
            .filter(|&l| l > s.line)
            .min()
        else {
            return false;
        };
        if line == target {
            return true;
        }
        self.items
            .item_spans
            .iter()
            .any(|&(start, end)| start == target && (start..=end).contains(&line))
    }
}

/// Parses `allow(<lint>) <reason>`; returns (lint, reason).
fn parse_allow(s: &str) -> Result<(String, String), String> {
    let Some(rest) = s.strip_prefix("allow(") else {
        return Err(format!(
            "expected `allow(<lint>) <reason>` after `utp-analyze:`, found `{s}`"
        ));
    };
    let Some((lint, reason)) = rest.split_once(')') else {
        return Err("unclosed `allow(` annotation".to_string());
    };
    let lint = lint.trim();
    if lint.is_empty() || !lint.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
        return Err(format!("invalid lint id `{lint}` in allow annotation"));
    }
    let reason = reason.trim();
    if reason.is_empty() {
        return Err(format!(
            "allow({lint}) requires a reason: `// utp-analyze: allow({lint}) <why this is sound>`"
        ));
    }
    Ok((lint.to_string(), reason.to_string()))
}

/// Finds `#[cfg(test)] mod <name> { ... }` line ranges.
fn find_test_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Match `#` `[` cfg-attribute containing `test` `]`.
        if tokens[i].is_punct("#") && i + 1 < tokens.len() && tokens[i + 1].is_punct("[") {
            let attr_start = i + 2;
            let Some(attr_end) = matching_bracket(tokens, i + 1, "[", "]") else {
                break;
            };
            let attr = &tokens[attr_start..attr_end];
            let is_cfg_test = attr.first().is_some_and(|t| t.is_ident("cfg"))
                && attr.iter().any(|t| t.is_ident("test"));
            if is_cfg_test {
                // Skip any further attributes, then expect `mod name {`.
                let mut j = attr_end + 1;
                while j + 1 < tokens.len() && tokens[j].is_punct("#") && tokens[j + 1].is_punct("[")
                {
                    match matching_bracket(tokens, j + 1, "[", "]") {
                        Some(end) => j = end + 1,
                        None => break,
                    }
                }
                if j + 2 < tokens.len()
                    && tokens[j].is_ident("mod")
                    && tokens[j + 1].kind == TokenKind::Ident
                    && tokens[j + 2].is_punct("{")
                {
                    if let Some(close) = matching_bracket(tokens, j + 2, "{", "}") {
                        ranges.push((tokens[i].line, tokens[close].line));
                        i = close;
                    }
                }
            }
            i = i.max(attr_end) + 1;
            continue;
        }
        i += 1;
    }
    ranges
}

/// Index of the bracket matching the one at `open_idx`.
fn matching_bracket(tokens: &[Token], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            match depth {
                // Stray closer before any opener: malformed input.
                0 => return None,
                1 => return Some(i),
                _ => depth -= 1,
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_valid_allow_annotation() {
        let src = "\
fn f() {
    // utp-analyze: allow(no-panic-in-tcb) length checked two lines up
    let x = v[i];
    let y = v[j]; // utp-analyze: allow(no-panic-in-tcb) j < len by loop bound
}
";
        let file = SourceFile::parse("crates/tpm/src/x.rs", src);
        assert_eq!(file.suppressions.len(), 2);
        assert!(file.is_suppressed("no-panic-in-tcb", 3));
        assert!(file.is_suppressed("no-panic-in-tcb", 4));
        assert!(!file.is_suppressed("no-panic-in-tcb", 5));
        assert!(!file.is_suppressed("ct-discipline", 3));
    }

    #[test]
    fn standalone_annotation_covers_the_whole_following_item() {
        // Regression for the off-by-one: the annotation used to cover
        // only line 2, missing findings inside the item (line 4 here)
        // and anything behind an attribute.
        let src = "\
// utp-analyze: allow(no-panic-in-tcb) fixture: whole-item waiver
#[inline]
pub fn f(v: &[u8]) -> u8 {
    v[0]
}

pub fn g(v: &[u8]) -> u8 {
    v[0]
}
";
        let file = SourceFile::parse("crates/tpm/src/x.rs", src);
        assert!(file.is_suppressed("no-panic-in-tcb", 2));
        assert!(file.is_suppressed("no-panic-in-tcb", 3));
        assert!(file.is_suppressed("no-panic-in-tcb", 4));
        assert!(file.is_suppressed("no-panic-in-tcb", 5));
        // The next item is NOT covered.
        assert!(!file.is_suppressed("no-panic-in-tcb", 7));
        assert!(!file.is_suppressed("no-panic-in-tcb", 8));
    }

    #[test]
    fn annotation_without_reason_is_malformed() {
        let src = "// utp-analyze: allow(no-panic-in-tcb)\nlet x = v[i];\n";
        let file = SourceFile::parse("crates/tpm/src/x.rs", src);
        assert!(file.suppressions.is_empty());
        assert_eq!(file.bad_annotations.len(), 1);
        assert!(file.bad_annotations[0]
            .problem
            .contains("requires a reason"));
    }

    #[test]
    fn annotation_with_bad_syntax_is_malformed() {
        let file = SourceFile::parse("x.rs", "// utp-analyze: silence everything\n");
        assert_eq!(file.bad_annotations.len(), 1);
    }

    #[test]
    fn cfg_test_mod_ranges_are_detected() {
        let src = "\
pub fn real() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        x.unwrap();
    }
}

pub fn also_real() {}
";
        let file = SourceFile::parse("crates/tpm/src/x.rs", src);
        assert_eq!(file.test_ranges.len(), 1);
        assert!(file.in_test_code(7));
        assert!(!file.in_test_code(1));
        assert!(!file.in_test_code(11));
    }
}
