//! Byte-level TPM 1.2 command interface.
//!
//! Real software talks to the TPM through a memory-mapped TIS interface by
//! exchanging tagged byte blobs. The OS driver and the PAL's minimal TPM
//! driver in this reproduction do the same: they marshal requests through
//! this module, so the untrusted OS cannot reach any "convenience" Rust API
//! that hardware would not expose.
//!
//! Layout (all integers big-endian, as in the TCG spec):
//!
//! ```text
//! request:  tag(u16) paramSize(u32) ordinal(u32) body...
//! response: tag(u16) paramSize(u32) returnCode(u32) body...
//! ```

use crate::device::Tpm;
use crate::error::TpmError;
use crate::locality::Locality;
use crate::pcr::{PcrIndex, PcrSelection};
use utp_crypto::sha1::Sha1Digest;

/// Request tag for unauthorized commands (`TPM_TAG_RQU_COMMAND`).
pub const TAG_RQU_COMMAND: u16 = 0x00C1;
/// Response tag (`TPM_TAG_RSP_COMMAND`).
pub const TAG_RSP_COMMAND: u16 = 0x00C4;

/// TPM_ORD_Extend.
pub const ORD_EXTEND: u32 = 0x0000_0014;
/// TPM_ORD_PcrRead.
pub const ORD_PCR_READ: u32 = 0x0000_0015;
/// TPM_ORD_Quote.
pub const ORD_QUOTE: u32 = 0x0000_0016;
/// TPM_ORD_GetRandom.
pub const ORD_GET_RANDOM: u32 = 0x0000_0046;
/// TPM_ORD_ReadCounter.
pub const ORD_READ_COUNTER: u32 = 0x0000_00DE;
/// TPM_ORD_IncrementCounter.
pub const ORD_INCREMENT_COUNTER: u32 = 0x0000_00DD;
/// TPM_ORD_NV_ReadValue.
pub const ORD_NV_READ: u32 = 0x0000_00CF;
/// TPM_ORD_NV_WriteValue.
pub const ORD_NV_WRITE: u32 = 0x0000_00CD;
/// TPM_ORD_Seal.
pub const ORD_SEAL: u32 = 0x0000_0017;
/// TPM_ORD_Unseal.
pub const ORD_UNSEAL: u32 = 0x0000_0018;

/// Success return code (`TPM_SUCCESS`).
pub const RC_SUCCESS: u32 = 0;
/// Generic failure (`TPM_FAIL`); the body carries a textual reason.
pub const RC_FAIL: u32 = 9;
/// Bad locality return code.
pub const RC_BAD_LOCALITY: u32 = 0x44;

/// Builds a request frame.
pub fn encode_request(ordinal: u32, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(10 + body.len());
    out.extend_from_slice(&TAG_RQU_COMMAND.to_be_bytes());
    out.extend_from_slice(&((10 + body.len()) as u32).to_be_bytes());
    out.extend_from_slice(&ordinal.to_be_bytes());
    out.extend_from_slice(body);
    out
}

fn encode_response(rc: u32, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(10 + body.len());
    out.extend_from_slice(&TAG_RSP_COMMAND.to_be_bytes());
    out.extend_from_slice(&((10 + body.len()) as u32).to_be_bytes());
    out.extend_from_slice(&rc.to_be_bytes());
    out.extend_from_slice(body);
    out
}

/// A decoded response: return code and body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// TPM return code; [`RC_SUCCESS`] on success.
    pub return_code: u32,
    /// Response body (meaning depends on the ordinal).
    pub body: Vec<u8>,
}

impl Response {
    /// True on success.
    pub fn ok(&self) -> bool {
        self.return_code == RC_SUCCESS
    }
}

/// Parses a response frame.
pub fn decode_response(data: &[u8]) -> Result<Response, TpmError> {
    if data.len() < 10 {
        return Err(TpmError::BadCommand("response too short".into()));
    }
    let mut cursor = data;
    let tag = take_u16(&mut cursor)?;
    if tag != TAG_RSP_COMMAND {
        return Err(TpmError::BadCommand(format!("bad response tag {:#x}", tag)));
    }
    let size = take_u32(&mut cursor)? as usize;
    if size != data.len() {
        return Err(TpmError::BadCommand("response size mismatch".into()));
    }
    let return_code = take_u32(&mut cursor)?;
    Ok(Response {
        return_code,
        body: cursor.to_vec(),
    })
}

fn err_to_rc(e: &TpmError) -> u32 {
    match e {
        TpmError::BadLocality { .. } => RC_BAD_LOCALITY,
        _ => RC_FAIL,
    }
}

/// Executes one marshaled command against the TPM at the asserted locality
/// and returns the marshaled response. Malformed frames produce `RC_FAIL`
/// responses rather than errors — the chip never panics at the bus.
pub fn execute(tpm: &mut Tpm, locality: Locality, request: &[u8]) -> Vec<u8> {
    match execute_inner(tpm, locality, request) {
        Ok(body) => encode_response(RC_SUCCESS, &body),
        Err(e) => encode_response(err_to_rc(&e), e.to_string().as_bytes()),
    }
}

fn take<'a>(data: &mut &'a [u8], n: usize) -> Result<&'a [u8], TpmError> {
    if data.len() < n {
        return Err(TpmError::BadCommand("truncated body".into()));
    }
    let (head, rest) = data.split_at(n);
    *data = rest;
    Ok(head)
}

fn take_u16(data: &mut &[u8]) -> Result<u16, TpmError> {
    let b = take(data, 2)?;
    Ok(u16::from_be_bytes([b[0], b[1]]))
}

fn take_u32(data: &mut &[u8]) -> Result<u32, TpmError> {
    let b = take(data, 4)?;
    Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
}

fn execute_inner(tpm: &mut Tpm, locality: Locality, request: &[u8]) -> Result<Vec<u8>, TpmError> {
    if request.len() < 10 {
        return Err(TpmError::BadCommand("request too short".into()));
    }
    let mut body = request;
    let tag = take_u16(&mut body)?;
    if tag != TAG_RQU_COMMAND {
        return Err(TpmError::BadCommand(format!("bad request tag {:#x}", tag)));
    }
    let size = take_u32(&mut body)? as usize;
    if size != request.len() {
        return Err(TpmError::BadCommand("request size mismatch".into()));
    }
    let ordinal = take_u32(&mut body)?;
    match ordinal {
        ORD_EXTEND => {
            let idx = take_u32(&mut body)?;
            let digest = take(&mut body, 20)?;
            let pcr = PcrIndex::new(idx).ok_or(TpmError::BadPcrIndex(idx))?;
            let new = tpm.extend(locality, pcr, digest)?;
            Ok(new.as_bytes().to_vec())
        }
        ORD_PCR_READ => {
            let idx = take_u32(&mut body)?;
            let pcr = PcrIndex::new(idx).ok_or(TpmError::BadPcrIndex(idx))?;
            let v = tpm.pcr_read(pcr)?;
            Ok(v.as_bytes().to_vec())
        }
        ORD_QUOTE => {
            let aik = take_u32(&mut body)?;
            let nonce = Sha1Digest::from_slice(take(&mut body, 20)?)
                .ok_or_else(|| TpmError::BadCommand("bad nonce length".into()))?;
            let (selection, used) = PcrSelection::from_wire(body)?;
            let _ = take(&mut body, used)?;
            let quote = tpm.quote(aik, selection, nonce)?;
            Ok(quote.to_bytes())
        }
        ORD_GET_RANDOM => {
            let len = take_u32(&mut body)? as usize;
            if len > 4096 {
                return Err(TpmError::BadCommand("random request too large".into()));
            }
            let bytes = tpm.get_random(len)?;
            let mut out = (bytes.len() as u32).to_be_bytes().to_vec();
            out.extend_from_slice(&bytes);
            Ok(out)
        }
        ORD_READ_COUNTER => {
            let handle = take_u32(&mut body)?;
            let v = tpm.read_counter(handle)?;
            Ok(v.to_be_bytes().to_vec())
        }
        ORD_INCREMENT_COUNTER => {
            let handle = take_u32(&mut body)?;
            let v = tpm.increment_counter(handle)?;
            Ok(v.to_be_bytes().to_vec())
        }
        ORD_NV_READ => {
            let index = take_u32(&mut body)?;
            let offset = take_u32(&mut body)? as usize;
            let len = take_u32(&mut body)? as usize;
            let data = tpm.nv_read(index, offset, len)?;
            let mut out = (data.len() as u32).to_be_bytes().to_vec();
            out.extend_from_slice(&data);
            Ok(out)
        }
        ORD_NV_WRITE => {
            let index = take_u32(&mut body)?;
            let offset = take_u32(&mut body)? as usize;
            let len = take_u32(&mut body)? as usize;
            let data = take(&mut body, len)?;
            tpm.nv_write(locality, index, offset, data)?;
            Ok(Vec::new())
        }
        ORD_SEAL => {
            let key_handle = take_u32(&mut body)?;
            let (selection, used) = PcrSelection::from_wire(body)?;
            let _ = take(&mut body, used)?;
            let len = take_u32(&mut body)? as usize;
            let payload = take(&mut body, len)?;
            let blob = tpm.seal_to_current(key_handle, selection, payload)?;
            Ok(blob.to_bytes())
        }
        ORD_UNSEAL => {
            let key_handle = take_u32(&mut body)?;
            let len = take_u32(&mut body)? as usize;
            let blob_bytes = take(&mut body, len)?;
            let blob = crate::seal::SealedBlob::from_bytes(blob_bytes).ok_or(TpmError::BadBlob)?;
            let payload = tpm.unseal(key_handle, &blob)?;
            let mut out = (payload.len() as u32).to_be_bytes().to_vec();
            out.extend_from_slice(&payload);
            Ok(out)
        }
        other => Err(TpmError::UnsupportedOrdinal(other)),
    }
}

// ----- Typed helpers for driver code ------------------------------------------

/// Builds a `TPM_Extend` request.
pub fn req_extend(pcr: PcrIndex, digest: &Sha1Digest) -> Vec<u8> {
    let mut body = pcr.value().to_be_bytes().to_vec();
    body.extend_from_slice(digest.as_bytes());
    encode_request(ORD_EXTEND, &body)
}

/// Builds a `TPM_PCRRead` request.
pub fn req_pcr_read(pcr: PcrIndex) -> Vec<u8> {
    encode_request(ORD_PCR_READ, &pcr.value().to_be_bytes())
}

/// Builds a `TPM_Quote` request.
pub fn req_quote(aik_handle: u32, nonce: &Sha1Digest, selection: &PcrSelection) -> Vec<u8> {
    let mut body = aik_handle.to_be_bytes().to_vec();
    body.extend_from_slice(nonce.as_bytes());
    body.extend_from_slice(&selection.to_wire());
    encode_request(ORD_QUOTE, &body)
}

/// Builds a `TPM_GetRandom` request.
pub fn req_get_random(len: u32) -> Vec<u8> {
    encode_request(ORD_GET_RANDOM, &len.to_be_bytes())
}

/// Builds a `TPM_Seal` request (seal `payload` to the current values of
/// `selection` under `key_handle`).
pub fn req_seal(key_handle: u32, selection: &PcrSelection, payload: &[u8]) -> Vec<u8> {
    let mut body = key_handle.to_be_bytes().to_vec();
    body.extend_from_slice(&selection.to_wire());
    body.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    body.extend_from_slice(payload);
    encode_request(ORD_SEAL, &body)
}

/// Builds a `TPM_Unseal` request.
pub fn req_unseal(key_handle: u32, blob_bytes: &[u8]) -> Vec<u8> {
    let mut body = key_handle.to_be_bytes().to_vec();
    body.extend_from_slice(&(blob_bytes.len() as u32).to_be_bytes());
    body.extend_from_slice(blob_bytes);
    encode_request(ORD_UNSEAL, &body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::TpmConfig;
    use utp_crypto::sha1::Sha1;

    fn tpm() -> Tpm {
        let mut t = Tpm::new(TpmConfig::fast_for_tests(3));
        t.startup_clear();
        t
    }

    #[test]
    fn extend_and_read_through_bytes() {
        let mut t = tpm();
        let pcr = PcrIndex::new(10).unwrap();
        let digest = Sha1::digest(b"event");
        let resp = execute(&mut t, Locality::Zero, &req_extend(pcr, &digest));
        let resp = decode_response(&resp).unwrap();
        assert!(resp.ok());
        let read = decode_response(&execute(&mut t, Locality::Zero, &req_pcr_read(pcr))).unwrap();
        assert_eq!(read.body, resp.body);
        let expected = Sha1::digest_concat(Sha1Digest::zero().as_bytes(), digest.as_bytes());
        assert_eq!(read.body, expected.as_bytes());
    }

    #[test]
    fn locality_violation_maps_to_rc_bad_locality() {
        let mut t = tpm();
        let pcr = PcrIndex::drtm();
        let resp = execute(
            &mut t,
            Locality::Zero,
            &req_extend(pcr, &Sha1Digest::zero()),
        );
        let resp = decode_response(&resp).unwrap();
        assert_eq!(resp.return_code, RC_BAD_LOCALITY);
    }

    #[test]
    fn quote_through_bytes_verifies() {
        let mut t = tpm();
        let aik = t.make_identity();
        let nonce = Sha1::digest(b"n");
        let resp = execute(
            &mut t,
            Locality::Zero,
            &req_quote(aik, &nonce, &PcrSelection::drtm_only()),
        );
        let resp = decode_response(&resp).unwrap();
        assert!(resp.ok());
        let quote = crate::quote::Quote::from_bytes(&resp.body).unwrap();
        assert!(quote.verify(&t.read_pubkey(aik).unwrap(), &nonce));
    }

    #[test]
    fn get_random_returns_requested_length() {
        let mut t = tpm();
        let resp = decode_response(&execute(&mut t, Locality::Zero, &req_get_random(33))).unwrap();
        assert!(resp.ok());
        assert_eq!(u32::from_be_bytes(resp.body[..4].try_into().unwrap()), 33);
        assert_eq!(resp.body.len(), 4 + 33);
    }

    #[test]
    fn oversized_random_request_fails_cleanly() {
        let mut t = tpm();
        let resp =
            decode_response(&execute(&mut t, Locality::Zero, &req_get_random(1 << 20))).unwrap();
        assert_eq!(resp.return_code, RC_FAIL);
    }

    #[test]
    fn malformed_frames_fail_without_panic() {
        let mut t = tpm();
        for frame in [
            &b""[..],
            &[0u8; 9],
            &[0xFFu8; 10],                    // bad tag
            &encode_request(0x9999, &[])[..], // unknown ordinal
        ] {
            let resp = decode_response(&execute(&mut t, Locality::Zero, frame)).unwrap();
            assert_eq!(resp.return_code, RC_FAIL, "frame {:?}", frame);
        }
        // Wrong declared size.
        let mut req = encode_request(ORD_PCR_READ, &0u32.to_be_bytes());
        req[5] = 0xFF;
        let resp = decode_response(&execute(&mut t, Locality::Zero, &req)).unwrap();
        assert_eq!(resp.return_code, RC_FAIL);
    }

    #[test]
    fn truncated_body_fails_cleanly() {
        let mut t = tpm();
        // Extend with a 5-byte digest.
        let mut body = 0u32.to_be_bytes().to_vec();
        body.extend_from_slice(&[1, 2, 3, 4, 5]);
        let resp = decode_response(&execute(
            &mut t,
            Locality::Zero,
            &encode_request(ORD_EXTEND, &body),
        ))
        .unwrap();
        assert_eq!(resp.return_code, RC_FAIL);
    }

    #[test]
    fn counters_and_nv_through_bytes() {
        let mut t = tpm();
        let handle = t.create_counter().unwrap();
        let inc = encode_request(ORD_INCREMENT_COUNTER, &handle.to_be_bytes());
        let resp = decode_response(&execute(&mut t, Locality::Zero, &inc)).unwrap();
        assert!(resp.ok());
        assert_eq!(u64::from_be_bytes(resp.body.try_into().unwrap()), 1);

        t.nv_define(0x55, 8, 0);
        let mut wbody = 0x55u32.to_be_bytes().to_vec();
        wbody.extend_from_slice(&0u32.to_be_bytes());
        wbody.extend_from_slice(&4u32.to_be_bytes());
        wbody.extend_from_slice(b"data");
        let resp = decode_response(&execute(
            &mut t,
            Locality::Zero,
            &encode_request(ORD_NV_WRITE, &wbody),
        ))
        .unwrap();
        assert!(resp.ok());
        let mut rbody = 0x55u32.to_be_bytes().to_vec();
        rbody.extend_from_slice(&0u32.to_be_bytes());
        rbody.extend_from_slice(&4u32.to_be_bytes());
        let resp = decode_response(&execute(
            &mut t,
            Locality::Zero,
            &encode_request(ORD_NV_READ, &rbody),
        ))
        .unwrap();
        assert_eq!(&resp.body[4..], b"data");
    }

    #[test]
    fn seal_unseal_through_bytes() {
        let mut t = tpm();
        let sel = PcrSelection::of(&[PcrIndex::new(0).unwrap()]);
        let resp = decode_response(&execute(
            &mut t,
            Locality::Zero,
            &req_seal(crate::keys::SRK_HANDLE, &sel, b"wire secret"),
        ))
        .unwrap();
        assert!(resp.ok());
        let resp = decode_response(&execute(
            &mut t,
            Locality::Zero,
            &req_unseal(crate::keys::SRK_HANDLE, &resp.body),
        ))
        .unwrap();
        assert!(resp.ok());
        assert_eq!(&resp.body[4..], b"wire secret");
    }

    #[test]
    fn unseal_through_bytes_fails_after_pcr_change() {
        let mut t = tpm();
        let sel = PcrSelection::of(&[PcrIndex::new(0).unwrap()]);
        let sealed = decode_response(&execute(
            &mut t,
            Locality::Zero,
            &req_seal(crate::keys::SRK_HANDLE, &sel, b"x"),
        ))
        .unwrap();
        // OS extends PCR 0, changing the policy environment.
        let _ = execute(
            &mut t,
            Locality::Zero,
            &req_extend(PcrIndex::new(0).unwrap(), &Sha1Digest::zero()),
        );
        let resp = decode_response(&execute(
            &mut t,
            Locality::Zero,
            &req_unseal(crate::keys::SRK_HANDLE, &sealed.body),
        ))
        .unwrap();
        assert_eq!(resp.return_code, RC_FAIL);
    }

    #[test]
    fn decode_response_validates_frame() {
        assert!(decode_response(&[]).is_err());
        assert!(decode_response(&[0u8; 10]).is_err()); // wrong tag
        let mut good = encode_request(0, &[]); // request tag, not response
        good[0] = 0;
        good[1] = 0xC4;
        assert!(decode_response(&good).is_ok());
    }
}
