//! The persistent, sharded verification service.
//!
//! [`crate::pipeline::verify_batch_parallel`] proved the paper's claim at
//! batch scale but not at server scale: it spun up a fresh thread scope
//! per batch, funneled every result through one mutex, and re-validated
//! the same AIK certificate on every job. `VerifierService` is the
//! long-lived shape of the same argument:
//!
//! * a pool of worker threads fed by a **bounded** submission queue —
//!   a full queue blocks (or, via [`VerifierService::try_submit_evidence`],
//!   reports [`SubmitError::QueueFull`]) instead of buffering without
//!   limit;
//! * nonce settlement **sharded** by `hash(nonce) % shards` over
//!   [`NonceLedger`]s, so the only serialized step of verification no
//!   longer serializes globally;
//! * an **LRU cache of validated AIK certificates** keyed by certificate
//!   digest — a repeat client costs one RSA verify (the quote), not two;
//! * **graceful shutdown**: dropping the queue lets workers drain every
//!   in-flight job before joining, and every outstanding [`Ticket`]
//!   resolves;
//! * per-shard [`crate::metrics::ShardCounters`] and cache hit counters,
//!   snapshotted by [`VerifierService::stats`];
//! * optional **flight recording**: hand [`ServiceConfig::recorder`] a
//!   [`utp_trace::Recorder`] and each worker installs a `worker/{i}`
//!   sink, emitting per-job *volatile* records (queue wait, verify CPU,
//!   outcome, queue depth) while submissions emit deterministic
//!   `svc.submit` events on the caller's own sink. Emission never
//!   happens while a shard or cache lock is held.

use crate::metrics::{Counter, Gauge, HostStopwatch, ServiceStats, ShardCounters};
use crate::pipeline::VerificationJob;
use crossbeam::channel::{self, TrySendError};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use utp_core::ca::AikCertificate;
use utp_core::protocol::{ConfirmationToken, Evidence, TransactionRequest, Verdict};
use utp_core::verifier::{
    check_quote_chain, NonceLedger, PendingNonce, VerifiedTransaction, VerifierConfig, VerifyError,
};
use utp_crypto::rsa::RsaPublicKey;
use utp_crypto::sha1::{Sha1, Sha1Digest};
use utp_flicker::runtime::io_digest;
use utp_journal::{Journal, JournalRecord, NO_ORDER};
use utp_netsim::{Admission, AdmissionConfig};
use utp_trace::{keys, names, Recorder, Value};

/// Full nonce-ledger state across all shards, as exported by
/// [`VerifierService::ledger_export`]: `(outstanding entries, consumed
/// nonces)`, both sorted by nonce.
pub type LedgerExport = (Vec<([u8; 20], PendingNonce)>, Vec<[u8; 20]>);

/// Sizing and policy knobs for [`VerifierService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads (minimum 1).
    pub threads: usize,
    /// Nonce-settlement shards (minimum 1).
    pub shards: usize,
    /// Bounded submission-queue depth; submissions beyond it block.
    pub queue_depth: usize,
    /// Validated-AIK cache capacity in certificates; `0` disables the
    /// cache (every job pays the full certificate validation).
    pub cert_cache_capacity: usize,
    /// Nonce lifetime, as [`VerifierConfig::nonce_ttl`].
    pub nonce_ttl: Duration,
    /// Measurements of PAL versions the provider accepts.
    pub trusted_pals: HashSet<Sha1Digest>,
    /// Flight recorder the workers install per-thread sinks on; `None`
    /// (the default) disables tracing entirely.
    pub recorder: Option<Arc<Recorder>>,
    /// Settlement journal. When set, every settle decision is written
    /// ahead of its acknowledgement (WAL-before-ack): the worker appends
    /// a `Settle` record and waits for a covering flush before the
    /// ticket resolves, so no accepted (or consumed-nonce) outcome can
    /// be forgotten by a crash.
    pub journal: Option<Arc<Journal>>,
    /// Admission control for [`VerifierService::try_submit_evidence`]:
    /// when set, submissions arriving at or past the policy's queue
    /// bound are shed *early* with a typed retry-after hint
    /// ([`SubmitError::Overloaded`]) instead of racing the channel and
    /// reporting a bare [`SubmitError::QueueFull`]. `None` keeps the
    /// legacy behavior. The policy type is shared with `utp-netsim`'s
    /// fleet simulator, whose E13 saturation sweep tunes it.
    pub admission: Option<AdmissionConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self::from_verifier_config(&VerifierConfig::default(), 2, 4)
    }
}

impl ServiceConfig {
    /// Default policy with explicit pool geometry.
    pub fn new(threads: usize, shards: usize) -> Self {
        Self::from_verifier_config(&VerifierConfig::default(), threads, shards)
    }

    /// Derives service sizing from an existing serial-verifier policy, so
    /// a provider that attaches a service keeps identical acceptance
    /// rules.
    pub fn from_verifier_config(config: &VerifierConfig, threads: usize, shards: usize) -> Self {
        ServiceConfig {
            threads,
            shards,
            queue_depth: 256,
            cert_cache_capacity: 1024,
            nonce_ttl: config.nonce_ttl,
            trusted_pals: config.trusted_pals.clone(),
            recorder: None,
            journal: None,
            admission: None,
        }
    }
}

/// Why a submission was not enqueued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity (backpressure; retry or shed).
    QueueFull,
    /// Admission control shed the submission before it touched the
    /// queue; the client should retry no sooner than `retry_after`.
    /// Only returned when [`ServiceConfig::admission`] is set.
    Overloaded {
        /// Back-off hint proportional to the backlog at shed time.
        retry_after: Duration,
    },
    /// The service has shut down and accepts no further work.
    ShutDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "submission queue full"),
            SubmitError::Overloaded { retry_after } => {
                write!(f, "service overloaded; retry after {retry_after:?}")
            }
            SubmitError::ShutDown => write!(f, "verification service shut down"),
        }
    }
}

impl Error for SubmitError {}

/// A claim on one in-flight verification; [`Ticket::wait`] blocks until
/// the worker publishes the verdict.
#[derive(Debug)]
pub struct Ticket<T> {
    rx: channel::Receiver<Result<T, VerifyError>>,
}

impl<T> Ticket<T> {
    /// Blocks for the verdict. If the service lost the worker before the
    /// job completed (it never does in normal operation, including
    /// shutdown, which drains the queue first), this resolves to
    /// [`VerifyError::ServiceUnavailable`] rather than hanging.
    pub fn wait(self) -> Result<T, VerifyError> {
        self.rx
            .recv()
            .unwrap_or(Err(VerifyError::ServiceUnavailable))
    }
}

/// One cached, already-validated AIK public key.
#[derive(Debug)]
struct CacheEntry {
    /// Last-touch tick for LRU eviction.
    tick: u64,
    aik: RsaPublicKey,
}

/// LRU cache of validated AIK certificates, keyed by the SHA-1 digest of
/// the exact certificate bytes (so a hit is sound: those bytes already
/// validated under the pinned CA key).
#[derive(Debug)]
struct CertCache {
    capacity: usize,
    state: Mutex<CacheState>,
    hits: Counter,
    misses: Counter,
}

#[derive(Debug, Default)]
struct CacheState {
    entries: HashMap<[u8; 20], CacheEntry>,
    tick: u64,
}

impl CertCache {
    fn new(capacity: usize) -> Self {
        CertCache {
            capacity,
            state: Mutex::new(CacheState::default()),
            hits: Counter::new(),
            misses: Counter::new(),
        }
    }

    /// Parses + validates `cert_bytes` under `ca_key`, serving repeat
    /// certificates from cache. `None` maps to `BadCertificate`.
    ///
    /// Cache hits and misses emit a volatile `svc.cache` trace event on
    /// the calling worker's sink — always after the state lock is
    /// released, never under it.
    fn resolve(&self, cert_bytes: &[u8], ca_key: &RsaPublicKey) -> Option<RsaPublicKey> {
        if self.capacity == 0 {
            self.misses.incr();
            self.trace_lookup(false);
            return AikCertificate::from_bytes(cert_bytes)?.validate(ca_key);
        }
        let key = *Sha1::digest(cert_bytes).as_bytes();
        {
            let mut state = self.state.lock();
            state.tick += 1;
            let tick = state.tick;
            if let Some(entry) = state.entries.get_mut(&key) {
                entry.tick = tick;
                let aik = entry.aik.clone();
                drop(state);
                self.hits.incr();
                self.trace_lookup(true);
                return Some(aik);
            }
        }
        self.misses.incr();
        self.trace_lookup(false);
        let aik = AikCertificate::from_bytes(cert_bytes)?.validate(ca_key)?;
        let mut state = self.state.lock();
        state.tick += 1;
        let tick = state.tick;
        if state.entries.len() >= self.capacity && !state.entries.contains_key(&key) {
            // O(capacity) eviction scan; capacities are small (certs are
            // one per client fleet, not one per transaction).
            if let Some(victim) = state
                .entries
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| *k)
            {
                state.entries.remove(&victim);
            }
        }
        state.entries.insert(
            key,
            CacheEntry {
                tick,
                aik: aik.clone(),
            },
        );
        Some(aik)
    }

    /// Emits the volatile hit/miss event (no-op on untraced threads).
    fn trace_lookup(&self, hit: bool) {
        utp_trace::event_volatile(
            names::SVC_CACHE,
            Duration::ZERO,
            &[(keys::HIT, Value::Bool(hit))],
        );
    }
}

/// Live per-shard counter cells (snapshotted into [`ShardCounters`]).
#[derive(Debug, Default)]
struct ShardCells {
    registered: Counter,
    accepted: Counter,
    rejected: Counter,
    replayed: Counter,
}

impl ShardCells {
    fn snapshot(&self) -> ShardCounters {
        ShardCounters {
            registered: self.registered.get(),
            accepted: self.accepted.get(),
            rejected: self.rejected.get(),
            replayed: self.replayed.get(),
        }
    }

    fn count(&self, outcome: &VerifyError) {
        if matches!(outcome, VerifyError::Replayed) {
            self.replayed.incr();
        } else {
            self.rejected.incr();
        }
    }
}

/// One settlement shard: its slice of the nonce space plus counters.
#[derive(Debug)]
struct Shard {
    ledger: Mutex<NonceLedger>,
    cells: ShardCells,
}

/// State shared between the handle and the workers.
#[derive(Debug)]
struct Inner {
    ca_key: RsaPublicKey,
    trusted_pals: HashSet<Sha1Digest>,
    shards: Vec<Shard>,
    cache: CertCache,
    /// Jobs accepted into the queue but not yet completed.
    queue_gauge: Gauge,
    /// Allocates one sequence number per accepted submission, shared by
    /// the deterministic `svc.submit` event and the worker's `svc.job`
    /// record so the two can be joined offline.
    submit_seq: Counter,
    /// Submissions bounced by `try_submit_evidence` on a full queue —
    /// the shed-rate numerator fleet-scale admission control keys on.
    shed: Counter,
    /// Jobs executed per worker thread (utilization spread).
    worker_jobs: Vec<Counter>,
    /// Host nanoseconds the final drain took (set once by `finish`).
    drain_ns: Counter,
    /// Settlement WAL (see [`ServiceConfig::journal`]).
    journal: Option<Arc<Journal>>,
    /// Early-shed policy (see [`ServiceConfig::admission`]).
    admission: Option<AdmissionConfig>,
    /// Submissions shed by admission control with a typed retry-after
    /// (a subset of the overload signal `shed` does not cover: these
    /// never raced the channel).
    shed_admission: Counter,
}

impl Inner {
    fn shard_of(&self, nonce: &Sha1Digest) -> &Shard {
        let mut prefix = [0u8; 8];
        prefix.copy_from_slice(&nonce.as_bytes()[..8]);
        let hash = u64::from_le_bytes(prefix);
        let index = (hash % self.shards.len() as u64) as usize;
        &self.shards[index]
    }

    /// The stateless cryptographic core, cache-accelerated. Mirrors
    /// `Verifier::verify`'s check order exactly (certificate before token
    /// binding before quote chain) so verdicts stay bit-identical to the
    /// serial path.
    fn check_crypto(
        &self,
        token: &ConfirmationToken,
        expected_digest: &Sha1Digest,
        request_bytes: &[u8],
        evidence: &Evidence,
    ) -> Result<(), VerifyError> {
        let aik = self
            .cache
            .resolve(&evidence.aik_cert, &self.ca_key)
            .ok_or(VerifyError::BadCertificate)?;
        if token.tx_digest != *expected_digest {
            return Err(VerifyError::TokenMismatch);
        }
        let io = io_digest(request_bytes, &evidence.token_bytes);
        check_quote_chain(&aik, &token.nonce, &self.trusted_pals, &io, &evidence.quote)
    }

    /// Full verification with nonce settlement: preflight the shard
    /// (read-mostly), run the crypto without holding any lock, then
    /// settle. A concurrent duplicate loses the settle race and reports
    /// `Replayed`, exactly like a sequential replay.
    fn verify_settling(
        &self,
        evidence: &Evidence,
        now: Duration,
    ) -> Result<VerifiedTransaction, VerifyError> {
        let token = evidence
            .token()
            .map_err(|_| VerifyError::MalformedEvidence)?;
        let shard = self.shard_of(&token.nonce);
        let pending = shard
            .ledger
            .lock()
            .preflight(&token.nonce, now)
            .inspect_err(|e| shard.cells.count(e))?;
        let expected = pending.transaction.digest();
        if let Err(e) = self.check_crypto(&token, &expected, &pending.request_bytes, evidence) {
            shard.cells.count(&e);
            return Err(e);
        }
        let pending = shard
            .ledger
            .lock()
            .settle(&token.nonce, now)
            .inspect_err(|e| shard.cells.count(e))?;
        if token.verdict != Verdict::Confirmed {
            // The nonce is consumed either way — the transaction settled
            // as rejected — matching the serial verifier.
            shard.cells.rejected.incr();
            return Err(VerifyError::NotConfirmed(token.verdict));
        }
        shard.cells.accepted.incr();
        Ok(VerifiedTransaction {
            transaction: pending.transaction,
            mode: token.mode,
            attempts: token.attempts,
        })
    }

    /// Stateless verification of a pre-assembled job (no nonce ledger):
    /// the contract of the old one-shot batch pipeline.
    fn verify_stateless(&self, job: &VerificationJob) -> Result<ConfirmationToken, VerifyError> {
        let token = job
            .evidence
            .token()
            .map_err(|_| VerifyError::MalformedEvidence)?;
        self.check_crypto(&token, &job.tx_digest, &job.request_bytes, &job.evidence)?;
        if token.verdict != Verdict::Confirmed {
            return Err(VerifyError::NotConfirmed(token.verdict));
        }
        Ok(token)
    }

    /// Runs one dequeued job on worker `worker`, emitting the volatile
    /// per-job flight record (queue wait, verify CPU, outcome) on the
    /// worker's sink. No lock is held at any emission point.
    fn run(&self, queued: Queued, worker: usize) {
        let wait = queued.enqueued.elapsed();
        self.queue_gauge.decr();
        self.worker_jobs[worker].incr();
        utp_trace::event_volatile(
            names::SVC_QUEUE_DEPTH,
            Duration::ZERO,
            &[(keys::DEPTH, Value::U64(self.queue_gauge.get()))],
        );
        let seq = queued.seq;
        let job_record = |ts: Duration, cpu: Duration, outcome: String| {
            utp_trace::span_volatile(
                names::SVC_JOB,
                ts,
                cpu,
                &[
                    (keys::SEQ, Value::U64(seq)),
                    (keys::WORKER, Value::U64(worker as u64)),
                    (keys::OUTCOME, Value::Str(outcome)),
                    (keys::WAIT_HOST, Value::HostNs(wait.as_nanos() as u64)),
                    (keys::VERIFY_HOST, Value::HostNs(cpu.as_nanos() as u64)),
                ],
            );
        };
        match queued.item {
            WorkItem::Settle {
                evidence,
                now,
                order,
                reply,
            } => {
                let (outcome, cpu) =
                    crate::metrics::host_timed(|| self.verify_settling(&evidence, now));
                job_record(now, cpu, outcome_label(&outcome));
                // WAL-before-ack: the decision must be durable before the
                // ticket resolves. The nonce comes from the token; if the
                // evidence didn't even parse, the decision is retryable
                // and journaled under the zero nonce (no ledger effect on
                // recovery).
                if let Some(journal) = &self.journal {
                    let nonce = evidence
                        .token()
                        .map(|t| *t.nonce.as_bytes())
                        .unwrap_or([0u8; 20]);
                    let receipt = journal.append_record(&JournalRecord::Settle {
                        order_id: order,
                        nonce,
                        at: now,
                        outcome: outcome.as_ref().map(|_| ()).map_err(|e| *e),
                    });
                    journal.sync_to(receipt.seq);
                }
                let _ = reply.send(outcome);
            }
            WorkItem::Stateless { job, reply } => {
                let (outcome, cpu) = crate::metrics::host_timed(|| self.verify_stateless(&job));
                job_record(Duration::ZERO, cpu, outcome_label(&outcome));
                let _ = reply.send(outcome);
            }
        }
    }
}

/// One queued unit of work.
enum WorkItem {
    /// Settling verification of raw evidence against registered nonces.
    Settle {
        evidence: Evidence,
        now: Duration,
        /// Store order id the evidence settles, or [`NO_ORDER`].
        order: u64,
        reply: channel::Sender<Result<VerifiedTransaction, VerifyError>>,
    },
    /// Stateless verification of a pre-assembled job.
    Stateless {
        job: VerificationJob,
        reply: channel::Sender<Result<ConfirmationToken, VerifyError>>,
    },
}

/// A [`WorkItem`] with its flight-recording envelope: the submission
/// sequence number and the host stopwatch measuring enqueue-to-dequeue
/// wait across the channel.
struct Queued {
    item: WorkItem,
    seq: u64,
    enqueued: HostStopwatch,
}

/// Flattens an outcome to the label the trace's `outcome` field carries.
fn outcome_label<T>(outcome: &Result<T, VerifyError>) -> String {
    match outcome {
        Ok(_) => "ok".to_string(),
        Err(e) => format!("{e:?}"),
    }
}

/// The long-lived sharded verification pool. See the module docs.
///
/// Dropping the service (or calling [`VerifierService::shutdown`]) stops
/// intake, drains every queued job, and joins the workers.
#[derive(Debug)]
pub struct VerifierService {
    inner: Arc<Inner>,
    queue: Option<channel::Sender<Queued>>,
    workers: Vec<JoinHandle<()>>,
}

impl VerifierService {
    /// Starts the worker pool. Thread/shard counts are clamped to ≥ 1.
    pub fn start(ca_key: RsaPublicKey, config: ServiceConfig) -> Self {
        let threads = config.threads.max(1);
        let shard_count = config.shards.max(1);
        let inner = Arc::new(Inner {
            ca_key,
            trusted_pals: config.trusted_pals,
            shards: (0..shard_count)
                .map(|_| Shard {
                    ledger: Mutex::new(NonceLedger::new(config.nonce_ttl)),
                    cells: ShardCells::default(),
                })
                .collect(),
            cache: CertCache::new(config.cert_cache_capacity),
            queue_gauge: Gauge::new(),
            submit_seq: Counter::new(),
            shed: Counter::new(),
            worker_jobs: (0..threads).map(|_| Counter::new()).collect(),
            drain_ns: Counter::new(),
            journal: config.journal,
            admission: config.admission,
            shed_admission: Counter::new(),
        });
        let (queue, intake) = channel::bounded::<Queued>(config.queue_depth.max(1));
        let workers = (0..threads)
            .map(|worker| {
                let inner = Arc::clone(&inner);
                let intake = intake.clone();
                let recorder = config.recorder.clone();
                std::thread::spawn(move || {
                    // Holds the worker's trace sink for the thread's whole
                    // life; dropping it at exit flushes the ring.
                    let _sink = recorder
                        .as_ref()
                        .map(|r| r.install(&format!("worker/{worker}")));
                    // `recv` drains remaining items after the handle drops
                    // the sender, so shutdown never abandons a ticket.
                    while let Ok(queued) = intake.recv() {
                        inner.run(queued, worker);
                    }
                })
            })
            .collect();
        VerifierService {
            inner,
            queue: Some(queue),
            workers,
        }
    }

    /// Number of settlement shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// Number of worker threads.
    pub fn thread_count(&self) -> usize {
        self.workers.len()
    }

    /// Registers an issued request with its settlement shard, enabling
    /// later evidence submission for its nonce.
    pub fn register(&self, request: &TransactionRequest, now: Duration) {
        // Serialize and clone before taking the shard lock: the receiver
        // of `lock().register(..)` is evaluated before its arguments, so
        // building the entry inline would run `to_bytes` under the guard.
        let entry = PendingNonce {
            request_bytes: request.to_bytes(),
            transaction: request.transaction.clone(),
            issued_at: now,
        };
        let shard = self.inner.shard_of(&request.nonce);
        shard.ledger.lock().register(&request.nonce, entry);
        shard.cells.registered.incr();
    }

    /// Restores an outstanding entry into its settlement shard from a
    /// recovered journal: the challenge was issued (and persisted)
    /// before the crash, so its evidence stays settleable after restart.
    pub fn restore_pending(&self, nonce: [u8; 20], pending: PendingNonce) {
        let digest = Sha1Digest(nonce);
        let shard = self.inner.shard_of(&digest);
        shard.ledger.lock().register(&digest, pending);
        shard.cells.registered.incr();
    }

    /// Restores a consumed nonce into its settlement shard so replayed
    /// evidence keeps losing after a restart.
    pub fn restore_used(&self, nonce: [u8; 20]) {
        let digest = Sha1Digest(nonce);
        self.inner
            .shard_of(&digest)
            .ledger
            .lock()
            .restore_used(nonce);
    }

    /// Exports the full ledger state across all shards — snapshot
    /// support: `(outstanding entries, consumed nonces)`, both sorted by
    /// nonce for deterministic snapshots.
    pub fn ledger_export(&self) -> LedgerExport {
        let mut pending = Vec::new();
        let mut used = Vec::new();
        for shard in &self.inner.shards {
            let ledger = shard.ledger.lock();
            pending.extend(ledger.pending_entries().map(|(n, p)| (*n, p.clone())));
            used.extend(ledger.used_entries().copied());
        }
        pending.sort_by_key(|(n, _)| *n);
        used.sort_unstable();
        (pending, used)
    }

    /// Submits evidence for settling verification, blocking while the
    /// queue is full (backpressure).
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShutDown`] once [`VerifierService::shutdown`] ran.
    pub fn submit_evidence(
        &self,
        evidence: Evidence,
        now: Duration,
    ) -> Result<Ticket<VerifiedTransaction>, SubmitError> {
        self.submit_evidence_for_order(NO_ORDER, evidence, now)
    }

    /// As [`VerifierService::submit_evidence`], but tags the settle
    /// decision with the store order it concerns so the journaled record
    /// (and recovered audit history) can name the order.
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShutDown`] once [`VerifierService::shutdown`] ran.
    pub fn submit_evidence_for_order(
        &self,
        order: u64,
        evidence: Evidence,
        now: Duration,
    ) -> Result<Ticket<VerifiedTransaction>, SubmitError> {
        let (reply, rx) = channel::bounded(1);
        let queue = self.queue.as_ref().ok_or(SubmitError::ShutDown)?;
        let seq = self.inner.submit_seq.next();
        self.inner.queue_gauge.incr();
        queue
            .send(Queued {
                item: WorkItem::Settle {
                    evidence,
                    now,
                    order,
                    reply,
                },
                seq,
                enqueued: HostStopwatch::start(),
            })
            .map_err(|_| {
                self.inner.queue_gauge.decr();
                SubmitError::ShutDown
            })?;
        utp_trace::event(names::SVC_SUBMIT, now, &[(keys::SEQ, Value::U64(seq))]);
        Ok(Ticket { rx })
    }

    /// Non-blocking variant of [`VerifierService::submit_evidence`].
    ///
    /// # Errors
    ///
    /// [`SubmitError::Overloaded`] when admission control
    /// ([`ServiceConfig::admission`]) sheds the submission early with a
    /// retry-after hint, [`SubmitError::QueueFull`] under backpressure,
    /// [`SubmitError::ShutDown`] after shutdown.
    pub fn try_submit_evidence(
        &self,
        evidence: Evidence,
        now: Duration,
    ) -> Result<Ticket<VerifiedTransaction>, SubmitError> {
        let (reply, rx) = channel::bounded(1);
        let queue = self.queue.as_ref().ok_or(SubmitError::ShutDown)?;
        if let Some(policy) = &self.inner.admission {
            let depth = self.inner.queue_gauge.get() as usize;
            if let Admission::Shed { retry_after } = policy.decide(depth) {
                self.inner.shed.incr();
                self.inner.shed_admission.incr();
                return Err(SubmitError::Overloaded { retry_after });
            }
        }
        let seq = self.inner.submit_seq.next();
        self.inner.queue_gauge.incr();
        queue
            .try_send(Queued {
                item: WorkItem::Settle {
                    evidence,
                    now,
                    order: NO_ORDER,
                    reply,
                },
                seq,
                enqueued: HostStopwatch::start(),
            })
            .map_err(|e| {
                self.inner.queue_gauge.decr();
                match e {
                    TrySendError::Full(_) => {
                        self.inner.shed.incr();
                        SubmitError::QueueFull
                    }
                    TrySendError::Disconnected(_) => SubmitError::ShutDown,
                }
            })?;
        utp_trace::event(names::SVC_SUBMIT, now, &[(keys::SEQ, Value::U64(seq))]);
        Ok(Ticket { rx })
    }

    /// Submits a stateless verification job (no nonce settlement),
    /// blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShutDown`] once the service shut down.
    pub fn submit_job(
        &self,
        job: VerificationJob,
    ) -> Result<Ticket<ConfirmationToken>, SubmitError> {
        let (reply, rx) = channel::bounded(1);
        let queue = self.queue.as_ref().ok_or(SubmitError::ShutDown)?;
        let seq = self.inner.submit_seq.next();
        self.inner.queue_gauge.incr();
        queue
            .send(Queued {
                item: WorkItem::Stateless { job, reply },
                seq,
                enqueued: HostStopwatch::start(),
            })
            .map_err(|_| {
                self.inner.queue_gauge.decr();
                SubmitError::ShutDown
            })?;
        // Stateless jobs carry no virtual clock; their submit events pin
        // to t=0 and order by sequence number.
        utp_trace::event(
            names::SVC_SUBMIT,
            Duration::ZERO,
            &[(keys::SEQ, Value::U64(seq))],
        );
        Ok(Ticket { rx })
    }

    /// Submits a batch of evidence and waits for all verdicts,
    /// positionally aligned with the input.
    pub fn verify_evidence_batch(
        &self,
        batch: Vec<Evidence>,
        now: Duration,
    ) -> Vec<Result<VerifiedTransaction, VerifyError>> {
        let tickets: Vec<_> = batch
            .into_iter()
            .map(|evidence| self.submit_evidence(evidence, now))
            .collect();
        tickets
            .into_iter()
            .map(|t| match t {
                Ok(ticket) => ticket.wait(),
                Err(_) => Err(VerifyError::ServiceUnavailable),
            })
            .collect()
    }

    /// Jobs accepted into the queue and not yet completed (queued or
    /// running), sampled from the live gauge.
    pub fn queue_depth(&self) -> u64 {
        self.inner.queue_gauge.get()
    }

    /// Outstanding (registered, unsettled) nonces across all shards.
    pub fn pending_count(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.ledger.lock().pending_count())
            .sum()
    }

    /// Snapshot of per-shard settlement counters, cache hit counters,
    /// and the overload instrumentation (sheds, queue watermark,
    /// per-worker utilization; drain time once shutdown ran).
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            shards: self
                .inner
                .shards
                .iter()
                .map(|s| s.cells.snapshot())
                .collect(),
            cert_cache_hits: self.inner.cache.hits.get(),
            cert_cache_misses: self.inner.cache.misses.get(),
            jobs_shed: self.inner.shed.get(),
            jobs_shed_admission: self.inner.shed_admission.get(),
            queue_depth_watermark: self.inner.queue_gauge.watermark(),
            drain_time: Duration::from_nanos(self.inner.drain_ns.get()),
            worker_jobs: self.inner.worker_jobs.iter().map(Counter::get).collect(),
        }
    }

    /// Stops intake, drains every queued job (their tickets resolve) and
    /// joins the workers. Returns the final counter snapshot.
    pub fn shutdown(mut self) -> ServiceStats {
        self.finish();
        self.stats()
    }

    fn finish(&mut self) {
        // Dropping the sender disconnects the intake queue; workers drain
        // what was already accepted and exit.
        let was_running = self.queue.take().is_some();
        if was_running {
            utp_trace::event_volatile(
                names::SVC_DRAIN,
                Duration::ZERO,
                &[(keys::PENDING, Value::U64(self.inner.queue_gauge.get()))],
            );
        }
        let drain = HostStopwatch::start();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if was_running {
            self.inner.drain_ns.add(drain.elapsed().as_nanos() as u64);
        }
        if was_running {
            utp_trace::event_volatile(
                names::SVC_DRAIN,
                Duration::ZERO,
                &[(keys::PENDING, Value::U64(self.inner.queue_gauge.get()))],
            );
        }
    }
}

impl Drop for VerifierService {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utp_core::ca::PrivacyCa;
    use utp_core::client::{Client, ClientConfig};
    use utp_core::operator::{ConfirmingHuman, Intent};
    use utp_core::protocol::Transaction;
    use utp_core::verifier::Verifier;
    use utp_platform::machine::{Machine, MachineConfig};

    struct World {
        ca_key: RsaPublicKey,
        requests: Vec<TransactionRequest>,
        evidence: Vec<Evidence>,
        now: Duration,
    }

    /// `n` genuine confirmations from one enrolled client.
    fn world(n: usize, seed: u64) -> World {
        let ca = PrivacyCa::new(512, seed);
        let mut verifier = Verifier::new(ca.public_key().clone(), seed + 1);
        let mut machine = Machine::new(MachineConfig::fast_for_tests(seed + 2));
        let enrollment = ca.enroll(&mut machine);
        let mut client = Client::new(ClientConfig::fast_for_tests(), enrollment);
        let mut requests = Vec::new();
        let mut evidence = Vec::new();
        for i in 0..n {
            let tx = Transaction::new(i as u64, "shop", 100 + i as u64, "EUR", "svc");
            let request = verifier.issue_request(tx.clone(), machine.now());
            let mut human = ConfirmingHuman::new(Intent::approving(&tx), 300 + i as u64);
            evidence.push(client.confirm(&mut machine, &request, &mut human).unwrap());
            requests.push(request);
        }
        World {
            ca_key: ca.public_key().clone(),
            requests,
            evidence,
            now: machine.now(),
        }
    }

    fn service(w: &World, threads: usize, shards: usize) -> VerifierService {
        let svc = VerifierService::start(w.ca_key.clone(), ServiceConfig::new(threads, shards));
        for r in &w.requests {
            svc.register(r, w.now);
        }
        svc
    }

    #[test]
    fn accepts_genuine_evidence_on_every_shard() {
        let w = world(8, 1000);
        let svc = service(&w, 2, 4);
        let verdicts = svc.verify_evidence_batch(w.evidence.clone(), w.now);
        assert!(verdicts.iter().all(|v| v.is_ok()), "{:?}", verdicts);
        let stats = svc.shutdown();
        assert_eq!(stats.totals().accepted, 8);
        assert_eq!(stats.totals().registered, 8);
        // Single client: first job misses, the rest hit the cert cache.
        assert_eq!(stats.cert_cache_misses, 1);
        assert_eq!(stats.cert_cache_hits, 7);
    }

    #[test]
    fn replay_and_unknown_nonce_are_counted() {
        let w = world(2, 1100);
        let svc = service(&w, 1, 2);
        assert!(svc
            .submit_evidence(w.evidence[0].clone(), w.now)
            .unwrap()
            .wait()
            .is_ok());
        let replay = svc
            .submit_evidence(w.evidence[0].clone(), w.now)
            .unwrap()
            .wait();
        assert_eq!(replay, Err(VerifyError::Replayed));
        // Evidence for a nonce never registered here.
        let other = world(1, 1200);
        let unknown = svc
            .submit_evidence(other.evidence[0].clone(), w.now)
            .unwrap()
            .wait();
        assert_eq!(unknown, Err(VerifyError::UnknownNonce));
        let totals = svc.stats().totals();
        assert_eq!(totals.accepted, 1);
        assert_eq!(totals.replayed, 1);
        assert_eq!(totals.rejected, 1);
    }

    #[test]
    fn expired_nonce_rejected() {
        let w = world(1, 1300);
        let svc = service(&w, 1, 1);
        let late = w.now + Duration::from_secs(301);
        let verdict = svc
            .submit_evidence(w.evidence[0].clone(), late)
            .unwrap()
            .wait();
        assert_eq!(verdict, Err(VerifyError::Expired));
        assert_eq!(svc.pending_count(), 0);
    }

    #[test]
    fn corrupted_signature_rejected_and_nonce_stays_pending() {
        let w = world(1, 1400);
        let svc = service(&w, 1, 1);
        let mut bad = w.evidence[0].clone();
        bad.quote.signature[0] ^= 1;
        let verdict = svc.submit_evidence(bad, w.now).unwrap().wait();
        assert_eq!(verdict, Err(VerifyError::BadQuote));
        // Crypto failures are retryable: the genuine evidence still lands.
        assert_eq!(svc.pending_count(), 1);
        assert!(svc
            .submit_evidence(w.evidence[0].clone(), w.now)
            .unwrap()
            .wait()
            .is_ok());
    }

    #[test]
    fn shutdown_drains_in_flight_jobs() {
        let w = world(16, 1500);
        let svc = service(&w, 2, 2);
        let tickets: Vec<_> = w
            .evidence
            .iter()
            .map(|e| svc.submit_evidence(e.clone(), w.now).unwrap())
            .collect();
        // Shut down immediately: every ticket must still resolve Ok.
        let stats = svc.shutdown();
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        assert_eq!(stats.totals().accepted, 16);
    }

    #[test]
    fn tiny_queue_applies_backpressure_without_loss() {
        let w = world(24, 1600);
        let mut config = ServiceConfig::new(2, 2);
        config.queue_depth = 1;
        let svc = VerifierService::start(w.ca_key.clone(), config);
        for r in &w.requests {
            svc.register(r, w.now);
        }
        // Blocking sends ride the backpressure; nothing is dropped.
        let verdicts = svc.verify_evidence_batch(w.evidence.clone(), w.now);
        assert!(verdicts.iter().all(|v| v.is_ok()));
    }

    #[test]
    fn try_submit_retry_loop_completes_under_backpressure() {
        let w = world(12, 1700);
        let mut config = ServiceConfig::new(1, 1);
        config.queue_depth = 1;
        let svc = VerifierService::start(w.ca_key.clone(), config);
        for r in &w.requests {
            svc.register(r, w.now);
        }
        let mut tickets = Vec::new();
        for e in &w.evidence {
            loop {
                match svc.try_submit_evidence(e.clone(), w.now) {
                    Ok(t) => {
                        tickets.push(t);
                        break;
                    }
                    Err(SubmitError::QueueFull) => std::thread::yield_now(),
                    Err(e) => panic!("no admission policy configured: {e}"),
                }
            }
        }
        assert!(tickets.into_iter().all(|t| t.wait().is_ok()));
    }

    #[test]
    fn overload_counters_track_sheds_watermark_and_drain() {
        let w = world(12, 2600);
        let mut config = ServiceConfig::new(1, 1);
        config.queue_depth = 1;
        let svc = VerifierService::start(w.ca_key.clone(), config);
        for r in &w.requests {
            svc.register(r, w.now);
        }
        let mut tickets = Vec::new();
        let mut sheds = 0u64;
        for e in &w.evidence {
            loop {
                match svc.try_submit_evidence(e.clone(), w.now) {
                    Ok(t) => {
                        tickets.push(t);
                        break;
                    }
                    Err(SubmitError::QueueFull) => {
                        sheds += 1;
                        std::thread::yield_now();
                    }
                    Err(e) => panic!("no admission policy configured: {e}"),
                }
            }
        }
        assert!(tickets.into_iter().all(|t| t.wait().is_ok()));
        let stats = svc.shutdown();
        assert_eq!(stats.jobs_shed, sheds, "every QueueFull bounce is counted");
        assert!(
            stats.queue_depth_watermark >= 1,
            "at least one job sat in the queue"
        );
        assert!(
            stats.drain_time > Duration::ZERO,
            "shutdown measured its drain"
        );
        assert_eq!(stats.worker_jobs.len(), 1);
        assert_eq!(
            stats.worker_jobs.iter().sum::<u64>(),
            12,
            "every job ran on a worker"
        );
    }

    #[test]
    fn admission_policy_sheds_early_with_typed_retry_after() {
        let w = world(1, 2700);
        let mut config = ServiceConfig::new(1, 1);
        config.queue_depth = 64;
        // One queued job is the ceiling; hint grows 200µs per queued job.
        config.admission = Some(AdmissionConfig::for_service_time(
            1,
            Duration::from_micros(200),
        ));
        let svc = VerifierService::start(w.ca_key.clone(), config);
        for r in &w.requests {
            svc.register(r, w.now);
        }
        // Burst far faster than one worker can verify: cloning and
        // enqueueing evidence is orders of magnitude cheaper than an RSA
        // verify, so the gauge is non-zero for most submissions and the
        // policy must fire. Replays of one evidence still pay the
        // full crypto path before the settle table rejects them.
        let mut tickets = Vec::new();
        let mut overloaded = 0u64;
        let mut hint = Duration::ZERO;
        for _ in 0..512 {
            match svc.try_submit_evidence(w.evidence[0].clone(), w.now) {
                Ok(t) => tickets.push(t),
                Err(SubmitError::Overloaded { retry_after }) => {
                    overloaded += 1;
                    hint = hint.max(retry_after);
                }
                Err(e) => panic!("queue is deeper than the policy: {e}"),
            }
        }
        for t in tickets {
            let _ = t.wait();
        }
        assert!(overloaded > 0, "the burst must trip admission control");
        // floor (200µs) + at least one queued job's worth (200µs).
        assert!(
            hint >= Duration::from_micros(400),
            "retry hint must reflect the backlog: {hint:?}"
        );
        let stats = svc.shutdown();
        assert_eq!(
            stats.jobs_shed_admission, overloaded,
            "every typed shed is counted"
        );
        assert_eq!(
            stats.jobs_shed, overloaded,
            "admission sheds roll up into the overall shed counter"
        );
    }

    #[test]
    fn cache_disabled_still_verifies() {
        let w = world(3, 1800);
        let mut config = ServiceConfig::new(1, 1);
        config.cert_cache_capacity = 0;
        let svc = VerifierService::start(w.ca_key.clone(), config);
        for r in &w.requests {
            svc.register(r, w.now);
        }
        let verdicts = svc.verify_evidence_batch(w.evidence.clone(), w.now);
        assert!(verdicts.iter().all(|v| v.is_ok()));
        let stats = svc.stats();
        assert_eq!(stats.cert_cache_hits, 0);
        assert_eq!(stats.cert_cache_misses, 3);
    }

    #[test]
    fn flight_recorder_captures_submit_and_job_records() {
        let w = world(4, 1900);
        let recorder = Arc::new(Recorder::new());
        let mut config = ServiceConfig::new(2, 2);
        config.recorder = Some(Arc::clone(&recorder));
        let svc = VerifierService::start(w.ca_key.clone(), config);
        for r in &w.requests {
            svc.register(r, w.now);
        }
        {
            let _sink = recorder.install("client");
            let verdicts = svc.verify_evidence_batch(w.evidence.clone(), w.now);
            assert!(verdicts.iter().all(|v| v.is_ok()));
            assert_eq!(svc.queue_depth(), 0, "all jobs completed");
            svc.shutdown();
        }
        let recs = recorder.records();
        let count = |n: &str| recs.iter().filter(|r| r.name == n).count();
        assert_eq!(count(names::SVC_SUBMIT), 4, "one submit event per job");
        assert_eq!(count(names::SVC_JOB), 4, "one worker record per job");
        assert_eq!(count(names::SVC_CACHE), 4, "one cache lookup per job");
        assert_eq!(count(names::SVC_QUEUE_DEPTH), 4);
        assert_eq!(count(names::SVC_DRAIN), 2, "drain start and end markers");
        // Submitter-side events are deterministic; worker-side records
        // are volatile and stay out of the canonical export.
        let canonical = recorder.export_jsonl(utp_trace::Export::Canonical);
        assert!(canonical.contains("svc.submit"));
        assert!(!canonical.contains("svc.job"));
        assert!(!canonical.contains("svc.cache"));
        let full = recorder.export_jsonl(utp_trace::Export::Full);
        assert!(full.contains("wait_host"));
        assert!(full.contains("verify_host"));
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let cache = CertCache::new(2);
        let cas: Vec<PrivacyCa> = (0..3).map(|i| PrivacyCa::new(512, 2000 + i)).collect();
        let ca_key = cas[0].public_key().clone();
        // Three distinct certs all signed by CA 0 so they validate.
        let certs: Vec<Vec<u8>> = (0..3)
            .map(|i| {
                let pair = utp_crypto::rsa::RsaKeyPair::generate(512, 2100 + i as u64);
                cas[0].certify(pair.public()).to_bytes()
            })
            .collect();
        assert!(cache.resolve(&certs[0], &ca_key).is_some()); // miss
        assert!(cache.resolve(&certs[1], &ca_key).is_some()); // miss
        assert!(cache.resolve(&certs[0], &ca_key).is_some()); // hit (0 fresh)
        assert!(cache.resolve(&certs[2], &ca_key).is_some()); // miss, evicts 1
        assert!(cache.resolve(&certs[0], &ca_key).is_some()); // hit (0 survived)
        assert!(cache.resolve(&certs[1], &ca_key).is_some()); // miss: was evicted
        assert_eq!(cache.hits.get(), 2);
        assert_eq!(cache.misses.get(), 4);
    }
}
