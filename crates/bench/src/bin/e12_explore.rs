//! Prints the E12 tables (bounded adversarial exploration coverage and
//! seeded-bug detection) and drops the run's perf artifacts under
//! `target/bench/`.
use utp_bench::experiments::e12_explore as e12;

fn main() {
    let report = e12::run(&[1, 2, 3], 2_000);
    println!("{}", e12::render(&report));
    assert!(e12::clean(&report), "real stack must be violation-free");
    utp_bench::emit_artifacts(&e12::artifacts(
        &report,
        "depths=1,2,3 max_states=2000 seed=7 orders=2",
    ));
}
