//! Structured diagnostics and their text / JSON renderings.

use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory; does not affect the exit code.
    Warn,
    /// Gate failure; `utp-analyze` exits non-zero if any remain.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warn => write!(f, "warn"),
            Severity::Deny => write!(f, "deny"),
        }
    }
}

/// One finding: file, line, which lint, severity, and an explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Stable lint identifier, e.g. `no-panic-in-tcb`.
    pub lint: &'static str,
    /// Gate or advisory.
    pub severity: Severity,
    /// Human-oriented explanation, including the suggested fix.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}: [{}] {}",
            self.severity, self.file, self.line, self.lint, self.message
        )
    }
}

/// Canonical diagnostic order: (file, line, lint), then deduplicated.
/// Every consumer (driver, renderers, golden snapshots) goes through
/// this so output never depends on pass traversal order.
pub fn sort_canonical(diags: &mut Vec<Diagnostic>) {
    diags.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    diags.dedup();
}

/// Renders diagnostics as line-oriented text, one finding per line,
/// in canonical order regardless of how the slice was built.
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut diags = diags.to_vec();
    sort_canonical(&mut diags);
    let mut out = String::new();
    for d in &diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    let denies = diags
        .iter()
        .filter(|d| d.severity == Severity::Deny)
        .count();
    let warns = diags.len() - denies;
    out.push_str(&format!("{denies} deny, {warns} warn\n"));
    out
}

/// Renders diagnostics as a JSON document (hand-rolled; the analyzer is
/// dependency-light by design), in canonical order.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut sorted = diags.to_vec();
    sort_canonical(&mut sorted);
    let diags = &sorted;
    let mut out = String::from("{\n  \"findings\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"lint\": \"{}\", \"severity\": \"{}\", \"message\": \"{}\"}}",
            escape_json(&d.file),
            d.line,
            escape_json(d.lint),
            d.severity,
            escape_json(&d.message),
        ));
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    let denies = diags
        .iter()
        .filter(|d| d.severity == Severity::Deny)
        .count();
    out.push_str(&format!(
        "],\n  \"deny_count\": {denies},\n  \"warn_count\": {}\n}}\n",
        diags.len() - denies
    ));
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![Diagnostic {
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            lint: "no-panic-in-tcb",
            severity: Severity::Deny,
            message: "don't \"panic\"".into(),
        }]
    }

    #[test]
    fn text_rendering_includes_location_and_counts() {
        let text = render_text(&sample());
        assert!(text.contains("crates/x/src/lib.rs:3"));
        assert!(text.contains("[no-panic-in-tcb]"));
        assert!(text.contains("1 deny, 0 warn"));
    }

    #[test]
    fn rendering_is_in_canonical_order_regardless_of_input_order() {
        let a = Diagnostic {
            file: "a.rs".into(),
            line: 9,
            lint: "wallclock-in-model",
            severity: Severity::Deny,
            message: "m1".into(),
        };
        let b = Diagnostic {
            file: "a.rs".into(),
            line: 9,
            lint: "ct-discipline",
            severity: Severity::Deny,
            message: "m2".into(),
        };
        let c = Diagnostic {
            file: "a.rs".into(),
            line: 2,
            lint: "no-panic-in-tcb",
            severity: Severity::Warn,
            message: "m3".into(),
        };
        let scrambled = vec![a.clone(), b.clone(), c.clone(), a.clone()];
        let mut sorted = scrambled.clone();
        sort_canonical(&mut sorted);
        assert_eq!(sorted, vec![c, b, a], "(file, line, lint) order, deduped");
        assert_eq!(render_text(&scrambled), render_text(&sorted));
        assert_eq!(render_json(&scrambled), render_json(&sorted));
    }

    #[test]
    fn json_rendering_escapes_and_counts() {
        let json = render_json(&sample());
        assert!(json.contains("\"deny_count\": 1"));
        assert!(json.contains("don't \\\"panic\\\""));
        assert!(json.contains("\"line\": 3"));
    }
}
