//! Prints the E6 table (CAPTCHA vs trusted path comparison).
use utp_bench::experiments::e6_captcha_compare as e6;

fn main() {
    let rows = e6::run(500);
    println!("{}", e6::render(&rows));
}
