//! E3 — end-to-end transaction confirmation latency: sweeps network RTT
//! and transaction payload size (the paper's "is this practical on the
//! real Internet" figure).
//!
//! Regenerate: `cargo run -p utp-bench --bin e3_end_to_end`

use crate::table;
use std::time::Duration;
use utp_core::ca::PrivacyCa;
use utp_core::client::{Client, ClientConfig};
use utp_core::operator::{ConfirmingHuman, Intent};
use utp_netsim::{Link, LinkConfig};
use utp_platform::machine::{Machine, MachineConfig};
use utp_server::flow::{run_transaction, E2eReport};
use utp_server::provider::ServiceProvider;
use utp_tpm::VendorProfile;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct E2eRow {
    /// Link RTT.
    pub rtt: Duration,
    /// Link bandwidth in bytes/second.
    pub bandwidth: u64,
    /// Transaction memo size in bytes (payload sweep).
    pub memo_len: usize,
    /// The full report.
    pub report: E2eReport,
}

/// Bandwidth used by the RTT and payload sweeps (the [`LinkConfig::fixed_rtt`]
/// default): every sweep now routes through [`LinkConfig::fixed_rtt_bw`] so
/// the link model is the same one the fleet simulator drives at scale.
const SWEEP_BW: u64 = 1_000_000;

fn one_transaction(link: LinkConfig, memo_len: usize, seed: u64) -> E2eReport {
    let ca = PrivacyCa::new(512, seed);
    let mut provider = ServiceProvider::new(ca.public_key().clone(), seed ^ 1);
    provider.store_mut().open_account("alice", 100_000_000);
    let mut machine = Machine::new(MachineConfig::realistic(VendorProfile::Infineon, seed ^ 2));
    let enrollment = ca.enroll(&mut machine);
    let mut client = Client::new(ClientConfig::fast_for_tests(), enrollment);
    let mut link = Link::new(link, seed ^ 3);
    let memo = "m".repeat(memo_len);
    let mut human = ConfirmingHuman::new(
        Intent {
            payee: "bookshop.example".into(),
            amount: "42.00 EUR".into(),
            approve: true,
        },
        seed ^ 4,
    );
    run_transaction(
        &mut machine,
        &mut client,
        &mut provider,
        &mut link,
        "alice",
        "bookshop.example",
        4_200,
        &memo,
        &mut human,
    )
    .expect("end-to-end flow succeeds")
}

/// RTT sweep at a small fixed payload.
pub fn run_rtt_sweep() -> Vec<E2eRow> {
    [10u64, 25, 50, 100, 200]
        .iter()
        .map(|&ms| {
            let rtt = Duration::from_millis(ms);
            E2eRow {
                rtt,
                bandwidth: SWEEP_BW,
                memo_len: 64,
                report: one_transaction(LinkConfig::fixed_rtt_bw(rtt, SWEEP_BW), 64, 1000 + ms),
            }
        })
        .collect()
}

/// Payload sweep at a fixed 50 ms RTT. The memo drags the whole request
/// through the PAL input path, so this exercises SKINIT streaming and the
/// network serialization together.
pub fn run_payload_sweep() -> Vec<E2eRow> {
    [256usize, 1024, 4096, 16_384, 60_000]
        .iter()
        .map(|&len| {
            let rtt = Duration::from_millis(50);
            E2eRow {
                rtt,
                bandwidth: SWEEP_BW,
                memo_len: len,
                report: one_transaction(
                    LinkConfig::fixed_rtt_bw(rtt, SWEEP_BW),
                    len,
                    2000 + len as u64,
                ),
            }
        })
        .collect()
}

/// Bandwidth sweep at a fixed 50 ms RTT and 16 KB payload: isolates the
/// serialization term of [`LinkConfig::fixed_rtt_bw`]. On a dial-up-class
/// link the wire time rivals the TPM; at broadband it vanishes under the
/// propagation delay.
pub fn run_bandwidth_sweep() -> Vec<E2eRow> {
    [64_000u64, 256_000, 1_000_000, 10_000_000]
        .iter()
        .map(|&bw| {
            let rtt = Duration::from_millis(50);
            E2eRow {
                rtt,
                bandwidth: bw,
                memo_len: 16_384,
                report: one_transaction(LinkConfig::fixed_rtt_bw(rtt, bw), 16_384, 3000 + bw),
            }
        })
        .collect()
}

/// Renders all three sweeps.
pub fn render(rtt_rows: &[E2eRow], payload_rows: &[E2eRow], bw_rows: &[E2eRow]) -> String {
    let fmt = |rows: &[E2eRow], title: &str| {
        table::render(
            title,
            &[
                "rtt(ms)",
                "bw(KB/s)",
                "memo(B)",
                "network",
                "session",
                "(human)",
                "verify",
                "total",
                "machine-only",
            ],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        table::ms(r.rtt),
                        (r.bandwidth / 1_000).to_string(),
                        r.memo_len.to_string(),
                        table::ms(r.report.network),
                        table::ms(r.report.session.total()),
                        table::ms(r.report.session.human),
                        table::ms(r.report.verify_cpu),
                        table::ms(r.report.total),
                        table::ms(r.report.machine_only()),
                    ]
                })
                .collect::<Vec<_>>(),
        )
    };
    format!(
        "{}\n{}\n{}",
        fmt(rtt_rows, "E3a - end-to-end latency vs RTT (ms)"),
        fmt(payload_rows, "E3b - end-to-end latency vs payload (ms)"),
        fmt(bw_rows, "E3c - end-to-end latency vs link bandwidth (ms)")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sweep_points_confirm() {
        for r in run_rtt_sweep() {
            assert!(r.report.outcome.is_ok(), "rtt {:?}", r.rtt);
        }
    }

    #[test]
    fn total_grows_with_rtt_but_is_human_dominated() {
        let rows = run_rtt_sweep();
        let m10 = rows.first().unwrap();
        let m200 = rows.last().unwrap();
        assert!(m200.report.network > m10.report.network);
        // Even at 200 ms RTT the human dwarfs the network.
        assert!(m200.report.session.human > m200.report.network * 5);
    }

    #[test]
    fn bandwidth_sweep_shrinks_wire_time_monotonically() {
        let rows = run_bandwidth_sweep();
        for r in &rows {
            assert!(r.report.outcome.is_ok(), "bw {}", r.bandwidth);
        }
        // Serialization of the 16 KB memo dominates at dial-up class
        // bandwidth and vanishes at broadband; the propagation floor
        // (the RTTs themselves) is common to every row.
        for pair in rows.windows(2) {
            assert!(
                pair[0].report.network > pair[1].report.network,
                "network time must fall as bandwidth rises: {:?} vs {:?}",
                pair[0].report.network,
                pair[1].report.network
            );
        }
    }

    #[test]
    fn payload_grows_machine_cost_moderately() {
        let rows = run_payload_sweep();
        let small = rows.first().unwrap().report.machine_only();
        let large = rows.last().unwrap().report.machine_only();
        assert!(large > small);
        // Shape: even a 60 KB payload keeps machine-only under ~2 s.
        assert!(large < Duration::from_secs(2), "{:?}", large);
    }
}
