//! PS/2 scancode set 2 codec.
//!
//! The paper's PAL contains a minimal keyboard driver: it programs the
//! i8042 controller and decodes raw set-2 scancodes itself, because no OS
//! driver exists inside the session. This module is that driver's codec:
//! [`encode`] turns key events into the make/break byte sequences the
//! keyboard hardware emits, and [`ScancodeDecoder`] reassembles events
//! from the byte stream, including shift handling and the `0xF0` break
//! prefix. The event-level [`crate::keyboard::Keyboard`] API models the
//! decoder's *output*; round-tripping through this codec is covered by
//! tests so the modeled events are exactly what the real driver would
//! produce.

use crate::keyboard::KeyEvent;

/// The `break` (key-release) prefix of scancode set 2.
pub const BREAK_PREFIX: u8 = 0xF0;
/// Left-shift make code.
pub const LSHIFT: u8 = 0x12;

/// Returns the set-2 make code for an unshifted character/key, and whether
/// shift is required, or `None` for characters outside the driver's map.
fn make_code(c: char) -> Option<(u8, bool)> {
    // (code, needs_shift)
    let unshifted = |code| Some((code, false));
    let shifted = |code| Some((code, true));
    match c {
        'a' => unshifted(0x1C),
        'b' => unshifted(0x32),
        'c' => unshifted(0x21),
        'd' => unshifted(0x23),
        'e' => unshifted(0x24),
        'f' => unshifted(0x2B),
        'g' => unshifted(0x34),
        'h' => unshifted(0x33),
        'i' => unshifted(0x43),
        'j' => unshifted(0x3B),
        'k' => unshifted(0x42),
        'l' => unshifted(0x4B),
        'm' => unshifted(0x3A),
        'n' => unshifted(0x31),
        'o' => unshifted(0x44),
        'p' => unshifted(0x4D),
        'q' => unshifted(0x15),
        'r' => unshifted(0x2D),
        's' => unshifted(0x1B),
        't' => unshifted(0x2C),
        'u' => unshifted(0x3C),
        'v' => unshifted(0x2A),
        'w' => unshifted(0x1D),
        'x' => unshifted(0x22),
        'y' => unshifted(0x35),
        'z' => unshifted(0x1A),
        '0' => unshifted(0x45),
        '1' => unshifted(0x16),
        '2' => unshifted(0x1E),
        '3' => unshifted(0x26),
        '4' => unshifted(0x25),
        '5' => unshifted(0x2E),
        '6' => unshifted(0x36),
        '7' => unshifted(0x3D),
        '8' => unshifted(0x3E),
        '9' => unshifted(0x46),
        ' ' => unshifted(0x29),
        '.' => unshifted(0x49),
        '-' => unshifted(0x4E),
        'A'..='Z' => {
            let (code, _) = make_code(c.to_ascii_lowercase())?;
            shifted(code)
        }
        _ => None,
    }
}

fn char_for_code(code: u8, shift: bool) -> Option<char> {
    let base = match code {
        0x1C => 'a',
        0x32 => 'b',
        0x21 => 'c',
        0x23 => 'd',
        0x24 => 'e',
        0x2B => 'f',
        0x34 => 'g',
        0x33 => 'h',
        0x43 => 'i',
        0x3B => 'j',
        0x42 => 'k',
        0x4B => 'l',
        0x3A => 'm',
        0x31 => 'n',
        0x44 => 'o',
        0x4D => 'p',
        0x15 => 'q',
        0x2D => 'r',
        0x1B => 's',
        0x2C => 't',
        0x3C => 'u',
        0x2A => 'v',
        0x1D => 'w',
        0x22 => 'x',
        0x35 => 'y',
        0x1A => 'z',
        0x45 => '0',
        0x16 => '1',
        0x1E => '2',
        0x26 => '3',
        0x25 => '4',
        0x2E => '5',
        0x36 => '6',
        0x3D => '7',
        0x3E => '8',
        0x46 => '9',
        0x29 => ' ',
        0x49 => '.',
        0x4E => '-',
        _ => return None,
    };
    Some(if shift {
        base.to_ascii_uppercase()
    } else {
        base
    })
}

/// Encodes one key event as the raw make+break byte sequence the keyboard
/// would emit. Returns `None` for characters outside the driver's map.
pub fn encode(event: KeyEvent) -> Option<Vec<u8>> {
    let press_release = |code: u8| vec![code, BREAK_PREFIX, code];
    match event {
        KeyEvent::Enter => Some(press_release(0x5A)),
        KeyEvent::Escape => Some(press_release(0x76)),
        KeyEvent::Backspace => Some(press_release(0x66)),
        KeyEvent::Char(c) => {
            let (code, shift) = make_code(c)?;
            let mut bytes = Vec::with_capacity(9);
            if shift {
                bytes.push(LSHIFT);
            }
            bytes.extend_from_slice(&press_release(code));
            if shift {
                bytes.push(BREAK_PREFIX);
                bytes.push(LSHIFT);
            }
            Some(bytes)
        }
    }
}

/// Encodes a whole string plus a final Enter — what the human's typing
/// looks like on the wire.
pub fn encode_line(text: &str) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    for c in text.chars() {
        out.extend(encode(KeyEvent::Char(c))?);
    }
    out.extend(encode(KeyEvent::Enter)?);
    Some(out)
}

/// Stateful set-2 decoder: feed raw bytes, collect key events.
#[derive(Debug, Clone, Default)]
pub struct ScancodeDecoder {
    breaking: bool,
    shift_held: bool,
}

impl ScancodeDecoder {
    /// A fresh decoder (no modifier held).
    pub fn new() -> Self {
        ScancodeDecoder::default()
    }

    /// Consumes one byte; returns a decoded event when a key *press*
    /// completes (releases update modifier state silently).
    pub fn feed(&mut self, byte: u8) -> Option<KeyEvent> {
        if byte == BREAK_PREFIX {
            self.breaking = true;
            return None;
        }
        let breaking = std::mem::take(&mut self.breaking);
        if byte == LSHIFT {
            self.shift_held = !breaking;
            return None;
        }
        if breaking {
            return None; // key release
        }
        match byte {
            0x5A => Some(KeyEvent::Enter),
            0x76 => Some(KeyEvent::Escape),
            0x66 => Some(KeyEvent::Backspace),
            code => char_for_code(code, self.shift_held).map(KeyEvent::Char),
        }
    }

    /// Decodes a whole byte stream.
    pub fn decode_all(&mut self, bytes: &[u8]) -> Vec<KeyEvent> {
        bytes.iter().filter_map(|&b| self.feed(b)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(events: &[KeyEvent]) -> Vec<KeyEvent> {
        let mut bytes = Vec::new();
        for &e in events {
            bytes.extend(encode(e).expect("encodable"));
        }
        ScancodeDecoder::new().decode_all(&bytes)
    }

    #[test]
    fn digits_and_letters_roundtrip() {
        let events: Vec<KeyEvent> = "confirm 482913".chars().map(KeyEvent::Char).collect();
        assert_eq!(roundtrip(&events), events);
    }

    #[test]
    fn control_keys_roundtrip() {
        let events = vec![KeyEvent::Enter, KeyEvent::Escape, KeyEvent::Backspace];
        assert_eq!(roundtrip(&events), events);
    }

    #[test]
    fn uppercase_uses_shift() {
        let bytes = encode(KeyEvent::Char('A')).unwrap();
        assert_eq!(bytes[0], LSHIFT);
        assert_eq!(*bytes.last().unwrap(), LSHIFT);
        assert_eq!(
            roundtrip(&[KeyEvent::Char('A'), KeyEvent::Char('b')]),
            vec![KeyEvent::Char('A'), KeyEvent::Char('b')]
        );
    }

    #[test]
    fn shift_state_does_not_leak_across_keys() {
        // "Ab" then "c": shift released after 'A'.
        let events: Vec<KeyEvent> = "Abc".chars().map(KeyEvent::Char).collect();
        assert_eq!(roundtrip(&events), events);
    }

    #[test]
    fn encode_line_appends_enter() {
        let bytes = encode_line("42").unwrap();
        let events = ScancodeDecoder::new().decode_all(&bytes);
        assert_eq!(
            events,
            vec![KeyEvent::Char('4'), KeyEvent::Char('2'), KeyEvent::Enter]
        );
    }

    #[test]
    fn unknown_characters_are_unencodable() {
        assert!(encode(KeyEvent::Char('€')).is_none());
        assert!(encode(KeyEvent::Char('\t')).is_none());
        assert!(encode_line("naïve").is_none());
    }

    #[test]
    fn unknown_scancodes_are_ignored() {
        let mut d = ScancodeDecoder::new();
        assert_eq!(d.decode_all(&[0x00, 0xAB, 0xE0]), vec![]);
        // And the decoder still works afterwards.
        assert_eq!(
            d.decode_all(&encode(KeyEvent::Enter).unwrap()),
            vec![KeyEvent::Enter]
        );
    }

    #[test]
    fn releases_produce_no_events() {
        let mut d = ScancodeDecoder::new();
        // A lone break sequence.
        assert_eq!(d.decode_all(&[BREAK_PREFIX, 0x1C]), vec![]);
        // Press produces exactly one event despite the trailing release.
        assert_eq!(
            d.decode_all(&encode(KeyEvent::Char('a')).unwrap()),
            vec![KeyEvent::Char('a')]
        );
    }
}
