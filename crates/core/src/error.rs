//! Top-level error type for the UTP client stack.

use std::error::Error;
use std::fmt;

/// Errors from the client-side trusted-path machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum UtpError {
    /// The Flicker session failed (launch, TPM or PAL error).
    Session(utp_flicker::FlickerError),
    /// A protocol message failed to parse.
    Protocol(String),
}

impl fmt::Display for UtpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UtpError::Session(e) => write!(f, "session failed: {}", e),
            UtpError::Protocol(why) => write!(f, "protocol error: {}", why),
        }
    }
}

impl Error for UtpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            UtpError::Session(e) => Some(e),
            UtpError::Protocol(_) => None,
        }
    }
}

impl From<utp_flicker::FlickerError> for UtpError {
    fn from(e: utp_flicker::FlickerError) -> Self {
        UtpError::Session(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_flicker_errors_with_source() {
        let e = UtpError::from(utp_flicker::FlickerError::Pal("x".into()));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("session failed"));
    }

    #[test]
    fn protocol_errors_display_reason() {
        let e = UtpError::Protocol("bad token".into());
        assert!(e.to_string().contains("bad token"));
    }
}
