//! Measured TCB-size report: what is *actually reachable* from the PAL
//! entry points, per category and per crate, in functions and lines.
//!
//! This is the machine-checked version of the paper's TCB-size
//! evaluation. The categories mirror the trust argument:
//!
//! - `pal` / `session-runtime` / `protocol` — the **measured TCB**: the
//!   code whose hash ends up in PCR 17 (PAL) plus the session runtime
//!   and wire codec it depends on. This is the number the paper reports.
//! - `tpm-model` / `crypto` / `hardware-model` / `substrate` — trusted
//!   by assumption (hardware TPM, vetted crypto, the simulated machine
//!   and its deterministic-RNG shim); reported separately.
//! - `verifier-spill` — verifier-side files that enter the closure only
//!   through the call graph's conservative name-based method resolution
//!   (e.g. every importable `to_bytes` impl). Listed so the
//!   over-approximation is visible, not counted as TCB.
//!
//! Any reachable function in a file with *no* declared category is a
//! deny-level `tcb-reachability` finding.

use std::collections::BTreeMap;

use crate::graph::WorkspaceIndex;

/// Growth allowance (percent) before the baseline check fails.
pub const MAX_GROWTH_PCT: usize = 10;

/// Categories counted as the measured TCB.
const MEASURED: &[&str] = &["pal", "session-runtime", "protocol"];

/// Declared category for a file, or `None` if reachable code there is a
/// finding. Keep this list reviewable: every entry is a trust claim.
pub fn declared_category(path: &str) -> Option<&'static str> {
    match path {
        "crates/core/src/pal.rs" | "crates/flicker/src/pal.rs" => Some("pal"),
        "crates/core/src/protocol.rs" | "crates/core/src/error.rs" => Some("protocol"),
        // Verifier-side serialization impls pulled in only by
        // conservative method-name resolution from PAL `to_bytes` /
        // `from_bytes` call sites; nothing here runs inside a session.
        "crates/core/src/verifier.rs"
        | "crates/core/src/ca.rs"
        | "crates/core/src/amortized.rs"
        | "crates/core/src/batch.rs" => Some("verifier-spill"),
        _ if path.starts_with("crates/flicker/src/") => Some("session-runtime"),
        _ if path.starts_with("crates/tpm/src/") => Some("tpm-model"),
        _ if path.starts_with("crates/crypto/src/") => Some("crypto"),
        _ if path.starts_with("crates/platform/src/") => Some("hardware-model"),
        _ if path.starts_with("shims/") => Some("substrate"),
        _ => None,
    }
}

/// Per-category (or per-crate) tallies.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Stats {
    /// Reachable functions.
    pub functions: usize,
    /// Lines covered by those functions' spans.
    pub loc: usize,
}

/// The measured TCB-size report.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct TcbReport {
    /// TCB entry-point functions (everything defined in TCB files).
    pub entry_points: usize,
    /// All functions reachable from the entry points.
    pub reachable_functions: usize,
    /// Lines covered by all reachable functions.
    pub reachable_loc: usize,
    /// The measured-TCB subtotal (pal + session-runtime + protocol).
    pub measured: Stats,
    /// Reachable code per declared category.
    pub by_category: BTreeMap<String, Stats>,
    /// Reachable code per crate.
    pub by_crate: BTreeMap<String, Stats>,
    /// Reachable functions in files with no declared category (each is
    /// also a deny-level finding).
    pub undeclared_reachable: usize,
}

/// Measures the report off a built workspace index.
pub fn measure(ws: &WorkspaceIndex) -> TcbReport {
    let mut report = TcbReport::default();
    for idx in 0..ws.fns.len() {
        if !ws.reach.reachable[idx] || !ws.is_live_fn(idx) {
            continue;
        }
        let item = ws.fn_item(idx);
        let path = ws.fn_path(idx);
        let loc = (item.end_line - item.start_line + 1) as usize;
        if crate::passes::is_tcb_path(path) {
            report.entry_points += 1;
        }
        report.reachable_functions += 1;
        report.reachable_loc += loc;
        let category = declared_category(path).unwrap_or("UNDECLARED");
        if category == "UNDECLARED" {
            report.undeclared_reachable += 1;
        }
        let c = report.by_category.entry(category.to_string()).or_default();
        c.functions += 1;
        c.loc += loc;
        let node = ws.fns[idx];
        let k = report
            .by_crate
            .entry(ws.metas[node.file].crate_alias.clone())
            .or_default();
        k.functions += 1;
        k.loc += loc;
        if MEASURED.contains(&category) {
            report.measured.functions += 1;
            report.measured.loc += loc;
        }
    }
    report
}

impl TcbReport {
    /// Stable, hand-rolled JSON rendering (BTreeMap order, fixed keys).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"tcb_report\": {\n");
        out.push_str(&format!("    \"entry_points\": {},\n", self.entry_points));
        out.push_str(&format!(
            "    \"reachable_functions\": {},\n    \"reachable_loc\": {},\n",
            self.reachable_functions, self.reachable_loc
        ));
        out.push_str(&format!(
            "    \"measured_functions\": {},\n    \"measured_loc\": {},\n",
            self.measured.functions, self.measured.loc
        ));
        out.push_str(&format!("    \"max_growth_pct\": {},\n", MAX_GROWTH_PCT));
        out.push_str(&format!(
            "    \"undeclared_reachable\": {},\n",
            self.undeclared_reachable
        ));
        render_map(&mut out, "by_category", &self.by_category);
        out.push_str(",\n");
        render_map(&mut out, "by_crate", &self.by_crate);
        out.push_str("\n  }\n}\n");
        out
    }
}

fn render_map(out: &mut String, key: &str, map: &BTreeMap<String, Stats>) {
    out.push_str(&format!("    \"{key}\": {{"));
    for (i, (name, s)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n      \"{}\": {{\"functions\": {}, \"loc\": {}}}",
            name, s.functions, s.loc
        ));
    }
    if !map.is_empty() {
        out.push_str("\n    ");
    }
    out.push('}');
}

/// Lints whose findings are produced by the flow-sensitive engine
/// (statement-level CFGs + fixpoint solver).
const FLOW_LINTS: &[&str] = &[
    "authorization-flow",
    "ct-discipline",
    "lock-discipline",
    "protocol-order",
    "secret-taint",
    "untrusted-arith",
];

/// Statistics from the flow-sensitive engine: how much of the
/// workspace lowered into structured CFGs (vs the single-block
/// fallback) and what the flow passes found. Written to
/// `target/analyze/dataflow_report.json` by CI so coverage regressions
/// in the CFG builder are visible as a fallback-count jump.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct DataflowReport {
    /// Function bodies lowered to CFGs.
    pub functions: usize,
    /// Total basic blocks across all CFGs.
    pub blocks: usize,
    /// Total statements across all CFGs.
    pub statements: usize,
    /// Bodies where structure recovery failed and the single-block
    /// over-approximation was used (flow passes degrade to
    /// flow-insensitive behavior there).
    pub fallback_functions: usize,
    /// Post-suppression finding counts for each flow-sensitive lint.
    pub findings_by_lint: BTreeMap<String, usize>,
}

/// Measures CFG coverage and flow-pass finding counts.
pub fn measure_dataflow(ws: &WorkspaceIndex, diags: &[crate::diag::Diagnostic]) -> DataflowReport {
    let mut r = DataflowReport::default();
    for lint in FLOW_LINTS {
        r.findings_by_lint.insert(lint.to_string(), 0);
    }
    for file in &ws.files {
        for f in &file.items.fns {
            let Some(body) = f.body else { continue };
            let cfg = crate::cfg::build_cfg(&file.tokens, body);
            r.functions += 1;
            r.blocks += cfg.blocks.len();
            r.statements += cfg.stmt_count();
            if cfg.fallback {
                r.fallback_functions += 1;
            }
        }
    }
    for d in diags {
        if let Some(count) = r.findings_by_lint.get_mut(d.lint) {
            *count += 1;
        }
    }
    r
}

impl DataflowReport {
    /// Stable, hand-rolled JSON rendering (same conventions as
    /// [`TcbReport::to_json`]).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"dataflow_report\": {\n");
        out.push_str(&format!("    \"functions\": {},\n", self.functions));
        out.push_str(&format!("    \"blocks\": {},\n", self.blocks));
        out.push_str(&format!("    \"statements\": {},\n", self.statements));
        out.push_str(&format!(
            "    \"fallback_functions\": {},\n",
            self.fallback_functions
        ));
        out.push_str("    \"findings_by_lint\": {");
        for (i, (lint, n)) in self.findings_by_lint.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n      \"{lint}\": {n}"));
        }
        if !self.findings_by_lint.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("}\n  }\n}\n");
        out
    }
}

/// Compares a freshly measured report against a checked-in baseline
/// JSON. Fails when the measured TCB grew beyond the baseline's
/// declared `max_growth_pct`, or when undeclared reachable code
/// appeared. Shrinkage is always fine (tighten the baseline when it
/// happens).
pub fn check_baseline(current: &TcbReport, baseline_json: &str) -> Result<String, String> {
    let base_fns = json_usize(baseline_json, "measured_functions")
        .ok_or("baseline JSON lacks \"measured_functions\"")?;
    let base_loc =
        json_usize(baseline_json, "measured_loc").ok_or("baseline JSON lacks \"measured_loc\"")?;
    let pct = json_usize(baseline_json, "max_growth_pct").unwrap_or(MAX_GROWTH_PCT);
    let limit_fns = base_fns + base_fns * pct / 100;
    let limit_loc = base_loc + base_loc * pct / 100;
    if current.undeclared_reachable > 0 {
        return Err(format!(
            "{} reachable function(s) outside the declared TCB allowlist",
            current.undeclared_reachable
        ));
    }
    if current.measured.functions > limit_fns || current.measured.loc > limit_loc {
        return Err(format!(
            "measured TCB grew beyond the +{pct}% threshold: \
             {} fns / {} loc now vs {base_fns} fns / {base_loc} loc at baseline \
             (limits {limit_fns} / {limit_loc}); shrink the TCB or re-baseline \
             scripts/tcb_report.json with a reviewed justification",
            current.measured.functions, current.measured.loc
        ));
    }
    Ok(format!(
        "measured TCB {} fns / {} loc within +{pct}% of baseline {base_fns} fns / {base_loc} loc",
        current.measured.functions, current.measured.loc
    ))
}

/// Extracts `"key": <integer>` from a JSON text (keys in the report
/// format are unique, so plain scanning suffices).
fn json_usize(json: &str, key: &str) -> Option<usize> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    #[test]
    fn measured_report_counts_pal_and_flags_undeclared() {
        let ws = WorkspaceIndex::build(vec![
            SourceFile::parse(
                "crates/core/src/pal.rs",
                "pub fn invoke() {\n    helper();\n}\n",
            ),
            SourceFile::parse("crates/core/src/rogue.rs", "pub fn helper() {}\n"),
        ]);
        let r = measure(&ws);
        assert_eq!(r.entry_points, 1);
        assert_eq!(r.reachable_functions, 2);
        assert_eq!(r.undeclared_reachable, 1);
        assert_eq!(r.by_category.get("pal").unwrap().functions, 1);
        assert_eq!(r.by_category.get("UNDECLARED").unwrap().functions, 1);
        assert_eq!(r.measured.functions, 1);
        assert_eq!(r.measured.loc, 3);
        let json = r.to_json();
        assert!(json.contains("\"measured_functions\": 1"));
        assert!(json.contains("\"utp_core\": {\"functions\": 2"));
    }

    #[test]
    fn baseline_check_allows_slack_then_fails() {
        let mut current = TcbReport {
            measured: Stats {
                functions: 104,
                loc: 1090,
            },
            ..TcbReport::default()
        };
        let baseline =
            "{\"measured_functions\": 100, \"measured_loc\": 1000, \"max_growth_pct\": 10}";
        assert!(check_baseline(&current, baseline).is_ok());
        current.measured.loc = 1101;
        assert!(check_baseline(&current, baseline).is_err());
        current.measured.loc = 1000;
        current.undeclared_reachable = 1;
        assert!(check_baseline(&current, baseline).is_err());
    }

    #[test]
    fn json_parse_helper_reads_integers() {
        assert_eq!(
            json_usize("{\"measured_loc\": 42}", "measured_loc"),
            Some(42)
        );
        assert_eq!(json_usize("{}", "measured_loc"), None);
    }
}
