//! `utp-trace` — deterministic virtual-time tracing for the UTP
//! reproduction: a structured span/event model, a per-thread bounded
//! flight recorder, log-scale latency histograms, and phase-breakdown
//! reports.
//!
//! Design rules (enforced by `utp-analyze`):
//!
//! - **Virtual time only.** Records are stamped with the simulated
//!   `Machine` clock, never the host clock, so a trace of a
//!   deterministic run is byte-identical across runs. Host-CPU
//!   measurements enter only through `metrics::host_timed` and must be
//!   attached via the `*_volatile` emitters; the canonical JSONL export
//!   drops those records.
//! - **Never in the TCB.** No PAL-reachable function may call into this
//!   crate (`tcb-reachability` gates it), and no key material may appear
//!   in a trace field (`secret-taint` treats the emitters as sinks).
//! - **Bounded.** Each thread's sink is a fixed-capacity drop-oldest
//!   ring; overflow is counted and exported, never silently lost.
//!
//! Emission is thread-local and lock-free: install a sink with
//! [`Recorder::install`], then call [`span`]/[`event`] from that thread.
//! With no sink installed the emitters are no-ops.

#![forbid(unsafe_code)]

pub mod histogram;
pub mod record;
pub mod recorder;
pub mod report;
pub mod ring;

use std::time::Duration;

pub use histogram::LatencyHistogram;
pub use record::{keys, names, TraceRecord, Value};
pub use recorder::{thread_is_traced, Export, Recorder, SinkGuard};

/// Emits a span: `ts` is the virtual start time, `dur` the virtual
/// duration. No-op unless the calling thread has a sink installed.
pub fn span(name: &'static str, ts: Duration, dur: Duration, fields: &[(&'static str, Value)]) {
    recorder::emit(name, ts, Some(dur), fields, false);
}

/// Emits an instantaneous event at virtual time `ts`.
pub fn event(name: &'static str, ts: Duration, fields: &[(&'static str, Value)]) {
    recorder::emit(name, ts, None, fields, false);
}

/// Emits a volatile span — one carrying host-measured or scheduling-
/// dependent data, excluded from the canonical export.
pub fn span_volatile(
    name: &'static str,
    ts: Duration,
    dur: Duration,
    fields: &[(&'static str, Value)],
) {
    recorder::emit(name, ts, Some(dur), fields, true);
}

/// Emits a volatile event (see [`span_volatile`]).
pub fn event_volatile(name: &'static str, ts: Duration, fields: &[(&'static str, Value)]) {
    recorder::emit(name, ts, None, fields, true);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_fns_emit_through_the_thread_sink() {
        let rec = Recorder::new();
        {
            let _g = rec.install("lib");
            span(
                names::SESSION_PAL,
                Duration::from_millis(1),
                Duration::from_millis(2),
                &[(keys::MODE, Value::Str("press-enter".into()))],
            );
            event(names::SVC_SUBMIT, Duration::from_millis(3), &[]);
            event_volatile(
                names::SVC_CACHE,
                Duration::ZERO,
                &[(keys::HIT, Value::Bool(true))],
            );
            span_volatile(
                names::SVC_JOB,
                Duration::ZERO,
                Duration::ZERO,
                &[(keys::VERIFY_HOST, Value::HostNs(5))],
            );
        }
        let recs = rec.records();
        assert_eq!(recs.len(), 4);
        assert_eq!(recs.iter().filter(|r| r.volatile).count(), 2);
        let pal = recs.iter().find(|r| r.name == names::SESSION_PAL).unwrap();
        assert_eq!(pal.dur, Some(Duration::from_millis(2)));
    }
}
