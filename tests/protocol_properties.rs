//! Property-based tests over the full protocol: arbitrary transactions
//! survive the complete confirm→verify pipeline, and arbitrary mutations
//! of evidence are rejected.

use proptest::prelude::*;
use utp::core::ca::PrivacyCa;
use utp::core::client::{Client, ClientConfig};
use utp::core::operator::{ConfirmingHuman, Intent};
use utp::core::protocol::{
    ConfirmMode, ConfirmationToken, Evidence, Transaction, TransactionRequest,
};
use utp::core::verifier::Verifier;
use utp::platform::machine::{Machine, MachineConfig};

fn arb_transaction() -> impl Strategy<Value = Transaction> {
    (
        any::<u64>(),
        "[a-z0-9.]{1,24}",
        0u64..100_000_000,
        "[A-Z]{3}",
        "[ -~]{0,40}",
    )
        .prop_map(|(id, payee, amount, currency, memo)| {
            Transaction::new(id, payee, amount, currency, memo)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn transaction_wire_roundtrip(tx in arb_transaction()) {
        prop_assert_eq!(Transaction::from_bytes(&tx.to_bytes()).unwrap(), tx);
    }

    #[test]
    fn request_wire_roundtrip(tx in arb_transaction(), nonce in any::<[u8; 20]>()) {
        let req = TransactionRequest {
            transaction: tx,
            nonce: utp::crypto::sha1::Sha1Digest(nonce),
            mode: ConfirmMode::TypeCode,
        };
        prop_assert_eq!(TransactionRequest::from_bytes(&req.to_bytes()).unwrap(), req);
    }

    #[test]
    fn token_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = ConfirmationToken::from_bytes(&bytes);
    }

    #[test]
    fn evidence_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = Evidence::from_bytes(&bytes);
    }
}

proptest! {
    // Full-pipeline cases are expensive (RSA keygen per world); keep low.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn any_transaction_confirms_and_verifies(tx in arb_transaction(), seed in any::<u64>()) {
        let ca = PrivacyCa::new(512, seed);
        let mut verifier = Verifier::new(ca.public_key().clone(), seed ^ 1);
        let mut machine = Machine::new(MachineConfig::fast_for_tests(seed ^ 2));
        let enrollment = ca.enroll(&mut machine);
        let mut client = Client::new(ClientConfig::fast_for_tests(), enrollment);
        let request = verifier.issue_request_with_mode(
            tx.clone(),
            ConfirmMode::PressEnter,
            machine.now(),
        );
        let mut human = ConfirmingHuman::new(Intent::approving(&tx), seed ^ 3);
        let evidence = client.confirm(&mut machine, &request, &mut human).unwrap();
        let verified = verifier.verify(&evidence, machine.now()).unwrap();
        prop_assert_eq!(verified.transaction, tx);
    }

    #[test]
    fn random_mutations_of_evidence_are_rejected(
        seed in any::<u64>(),
        target in 0usize..3,
        offset in any::<proptest::sample::Index>(),
        flip in 1u8..255
    ) {
        let ca = PrivacyCa::new(512, seed);
        let mut verifier = Verifier::new(ca.public_key().clone(), seed ^ 1);
        let mut machine = Machine::new(MachineConfig::fast_for_tests(seed ^ 2));
        let enrollment = ca.enroll(&mut machine);
        let mut client = Client::new(ClientConfig::fast_for_tests(), enrollment);
        let tx = Transaction::new(7, "shop.example", 4_200, "EUR", "order");
        let request = verifier.issue_request(tx.clone(), machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&tx), seed ^ 3);
        let mut evidence = client.confirm(&mut machine, &request, &mut human).unwrap();
        match target {
            0 => {
                let i = offset.index(evidence.token_bytes.len());
                evidence.token_bytes[i] ^= flip;
            }
            1 => {
                let i = offset.index(evidence.quote.signature.len());
                evidence.quote.signature[i] ^= flip;
            }
            _ => {
                let i = offset.index(evidence.aik_cert.len());
                evidence.aik_cert[i] ^= flip;
            }
        }
        prop_assert!(verifier.verify(&evidence, machine.now()).is_err());
    }
}

// ----- parser totality for the extension types --------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn aik_certificate_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = utp::core::ca::AikCertificate::from_bytes(&bytes);
    }

    #[test]
    fn batch_request_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = utp::core::batch::BatchRequest::from_bytes(&bytes);
    }

    #[test]
    fn batch_token_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = utp::core::batch::BatchToken::from_bytes(&bytes);
    }

    #[test]
    fn amortized_evidence_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = utp::core::amortized::AmortizedEvidence::from_bytes(&bytes);
    }

    #[test]
    fn sealed_blob_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = utp::tpm::seal::SealedBlob::from_bytes(&bytes);
    }
}
