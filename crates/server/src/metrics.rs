//! Service-level metric snapshots, plus the single sanctioned
//! host-clock reader.
//!
//! The primitive cells ([`Counter`], [`Gauge`], [`Summary`]) and
//! [`throughput`] moved to `utp-obs` so the journal, explorer, and
//! bench harness share one vocabulary; they are re-exported here, so
//! `utp_server::metrics::Counter` remains a valid path. What stays in
//! this module is the service's own snapshot shapes and the host-clock
//! readers — the `wallclock-in-model` analyzer pass exempts exactly
//! this file, so [`host_timed`] and [`HostStopwatch`] must live here.

use std::time::Duration;
use utp_obs::MetricsRegistry;

pub use utp_obs::metrics::{throughput, Counter, Gauge, Summary};

/// Per-shard settlement counters, snapshotted from the live atomics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardCounters {
    /// Nonces registered with this shard.
    pub registered: u64,
    /// Evidence accepted (human-confirmed, nonce consumed).
    pub accepted: u64,
    /// Evidence rejected before settlement (crypto or nonce rules).
    pub rejected: u64,
    /// Replays caught, including concurrent duplicate submissions that
    /// lost the settle race.
    pub replayed: u64,
}

impl ShardCounters {
    /// Element-wise sum (for whole-service totals).
    pub fn merge(&self, other: &ShardCounters) -> ShardCounters {
        ShardCounters {
            registered: self.registered + other.registered,
            accepted: self.accepted + other.accepted,
            rejected: self.rejected + other.rejected,
            replayed: self.replayed + other.replayed,
        }
    }
}

/// A point-in-time snapshot of the verification service's counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// One entry per settlement shard.
    pub shards: Vec<ShardCounters>,
    /// AIK-certificate cache hits (an RSA verify skipped each).
    pub cert_cache_hits: u64,
    /// AIK-certificate cache misses (full validation performed).
    pub cert_cache_misses: u64,
    /// Submissions shed by [`try_submit_evidence`] because the queue
    /// was full — the overload signal fleet-scale admission control
    /// keys on.
    ///
    /// [`try_submit_evidence`]: crate::service::VerifierService::try_submit_evidence
    pub jobs_shed: u64,
    /// The subset of `jobs_shed` turned away by admission control with
    /// a typed retry-after ([`SubmitError::Overloaded`]) before ever
    /// racing the channel. Zero when no admission policy is set.
    ///
    /// [`SubmitError::Overloaded`]: crate::service::SubmitError::Overloaded
    pub jobs_shed_admission: u64,
    /// Highest queue depth observed over the service's life (the
    /// gauge's persistent watermark — it survives snapshots).
    pub queue_depth_watermark: u64,
    /// Host time the final drain took: from intake close until the
    /// last worker joined. Zero until shutdown.
    pub drain_time: Duration,
    /// Jobs executed per worker thread, in worker order — the
    /// utilization spread across the pool.
    pub worker_jobs: Vec<u64>,
}

impl ServiceStats {
    /// Whole-service totals across shards.
    pub fn totals(&self) -> ShardCounters {
        self.shards
            .iter()
            .fold(ShardCounters::default(), |acc, s| acc.merge(s))
    }

    /// Fraction of certificate lookups served from cache, in `[0, 1]`.
    /// Zero when no lookups happened yet.
    pub fn cert_cache_hit_rate(&self) -> f64 {
        let total = self.cert_cache_hits + self.cert_cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.cert_cache_hits as f64 / total as f64
    }

    /// Fraction of submissions shed at the queue, in `[0, 1]`: sheds
    /// over sheds-plus-settled-outcomes. Zero before any submission.
    pub fn shed_rate(&self) -> f64 {
        let t = self.totals();
        let outcomes = t.accepted + t.rejected + t.replayed + self.jobs_shed;
        if outcomes == 0 {
            return 0.0;
        }
        self.jobs_shed as f64 / outcomes as f64
    }

    /// Registers this snapshot on a metrics registry: per-shard
    /// settlement counters, per-worker job counters, cache and
    /// overload totals. Labels follow the shard/worker index.
    pub fn export_metrics(&self, registry: &MetricsRegistry) {
        for (i, shard) in self.shards.iter().enumerate() {
            let idx = i.to_string();
            let labels: &[(&str, &str)] = &[("shard", idx.as_str())];
            registry
                .counter("svc.registered", labels)
                .add(shard.registered);
            registry.counter("svc.accepted", labels).add(shard.accepted);
            registry.counter("svc.rejected", labels).add(shard.rejected);
            registry.counter("svc.replayed", labels).add(shard.replayed);
        }
        for (i, jobs) in self.worker_jobs.iter().enumerate() {
            let idx = i.to_string();
            registry
                .counter("svc.worker_jobs", &[("worker", idx.as_str())])
                .add(*jobs);
        }
        registry
            .counter("svc.cert_cache_hits", &[])
            .add(self.cert_cache_hits);
        registry
            .counter("svc.cert_cache_misses", &[])
            .add(self.cert_cache_misses);
        registry.counter("svc.jobs_shed", &[]).add(self.jobs_shed);
        registry
            .counter("svc.jobs_shed_admission", &[])
            .add(self.jobs_shed_admission);
        registry
            .gauge("svc.queue_depth", &[])
            .set(self.queue_depth_watermark);
        registry
            .counter("svc.drain_ns", &[])
            .add(self.drain_time.as_nanos() as u64);
    }
}

/// Measures the host CPU time of `f` and returns its result alongside.
///
/// This module is the single place the simulation may read the host
/// clock (the `wallclock-in-model` pass exempts it): callers fold the
/// measured duration into virtual time via `Machine::advance`, so the
/// rest of the model stays deterministic.
pub fn host_timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = std::time::Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// A host-clock stopwatch for intervals that cannot be expressed as one
/// closure — e.g. the enqueue-to-dequeue wait of a job crossing a
/// channel between threads. Lives here for the same reason as
/// [`host_timed`]: this module is the single sanctioned host-clock
/// reader, and all measurements taken through it are treated as
/// *volatile* (never part of deterministic model state or canonical
/// trace exports).
#[derive(Debug, Clone, Copy)]
pub struct HostStopwatch(std::time::Instant);

impl HostStopwatch {
    /// Starts the stopwatch now.
    pub fn start() -> HostStopwatch {
        HostStopwatch(std::time::Instant::now())
    }

    /// Host time elapsed since [`HostStopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utp_obs::SampleValue;

    #[test]
    fn service_stats_totals_and_hit_rate() {
        let stats = ServiceStats {
            shards: vec![
                ShardCounters {
                    registered: 3,
                    accepted: 2,
                    rejected: 1,
                    replayed: 0,
                },
                ShardCounters {
                    registered: 5,
                    accepted: 4,
                    rejected: 0,
                    replayed: 1,
                },
            ],
            cert_cache_hits: 9,
            cert_cache_misses: 1,
            ..ServiceStats::default()
        };
        let t = stats.totals();
        assert_eq!(t.registered, 8);
        assert_eq!(t.accepted, 6);
        assert_eq!(t.rejected, 1);
        assert_eq!(t.replayed, 1);
        assert!((stats.cert_cache_hit_rate() - 0.9).abs() < 1e-12);
        assert_eq!(ServiceStats::default().cert_cache_hit_rate(), 0.0);
    }

    #[test]
    fn shed_rate_counts_sheds_against_all_outcomes() {
        let stats = ServiceStats {
            shards: vec![ShardCounters {
                registered: 8,
                accepted: 6,
                rejected: 0,
                replayed: 0,
            }],
            jobs_shed: 2,
            ..ServiceStats::default()
        };
        assert!((stats.shed_rate() - 0.25).abs() < 1e-12);
        assert_eq!(ServiceStats::default().shed_rate(), 0.0);
    }

    #[test]
    fn export_metrics_registers_labeled_cells() {
        let stats = ServiceStats {
            shards: vec![
                ShardCounters {
                    registered: 2,
                    accepted: 1,
                    rejected: 1,
                    replayed: 0,
                },
                ShardCounters::default(),
            ],
            cert_cache_hits: 3,
            cert_cache_misses: 1,
            jobs_shed: 4,
            jobs_shed_admission: 2,
            queue_depth_watermark: 7,
            drain_time: Duration::from_micros(5),
            worker_jobs: vec![9, 0],
        };
        let registry = MetricsRegistry::new();
        stats.export_metrics(&registry);
        let snap = registry.snapshot(Duration::ZERO);
        let get = |name: &str, labels: &[(&str, &str)]| {
            let id = utp_obs::MetricId::new(name, labels);
            snap.samples
                .iter()
                .find(|s| s.id == id)
                .map(|s| s.value.clone())
        };
        assert_eq!(
            get("svc.accepted", &[("shard", "0")]),
            Some(SampleValue::Counter(1))
        );
        assert_eq!(
            get("svc.worker_jobs", &[("worker", "0")]),
            Some(SampleValue::Counter(9))
        );
        assert_eq!(get("svc.jobs_shed", &[]), Some(SampleValue::Counter(4)));
        assert_eq!(
            get("svc.jobs_shed_admission", &[]),
            Some(SampleValue::Counter(2))
        );
        assert_eq!(
            get("svc.queue_depth", &[]),
            Some(SampleValue::Gauge {
                level: 7,
                watermark: 7
            })
        );
        assert_eq!(get("svc.drain_ns", &[]), Some(SampleValue::Counter(5_000)));
    }
}
