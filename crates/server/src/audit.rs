//! Audit log: the provider's record of verification decisions, the
//! artifact a compliance review (or the paper's incident analysis) would
//! consult.
//!
//! Retention is **bounded**: the log holds at most its configured
//! capacity and evicts the oldest entry first, counting every eviction
//! (so a truncated history is always detectable). Every recorded
//! decision also emits a deterministic `audit.decision` trace event on
//! the calling thread's sink (a no-op when untraced).
//!
//! **Durable mode**: when backed by the settlement journal
//! ([`AuditLog::attach_journal`]), eviction stops losing history — every
//! settle decision is already on the WAL, so [`AuditLog::for_order_durable`]
//! and [`AuditLog::in_window_durable`] page evicted entries back in from
//! the journal instead of silently returning only the retained tail.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;
use utp_core::verifier::VerifyError;
use utp_journal::{Journal, NO_ORDER};
use utp_trace::{keys, names, Value};

/// Default retention: enough for every experiment in the suite while
/// still bounding a long-lived provider's memory.
pub const DEFAULT_RETENTION: usize = 65_536;

/// One audited decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEntry {
    /// Virtual time of the decision.
    pub at: Duration,
    /// Order the evidence claimed to settle.
    pub order_id: u64,
    /// Outcome: `Ok(())` for accepted, the typed error otherwise.
    pub outcome: Result<(), VerifyError>,
}

/// Bounded, oldest-first-evicting audit log with simple query helpers.
#[derive(Debug, Clone)]
pub struct AuditLog {
    entries: VecDeque<AuditEntry>,
    retention: usize,
    evicted: u64,
    journal: Option<Arc<Journal>>,
}

impl Default for AuditLog {
    fn default() -> Self {
        AuditLog::new()
    }
}

impl AuditLog {
    /// An empty log with [`DEFAULT_RETENTION`].
    pub fn new() -> Self {
        AuditLog::with_retention(DEFAULT_RETENTION)
    }

    /// An empty log keeping at most `retention` entries (clamped to 1).
    pub fn with_retention(retention: usize) -> Self {
        AuditLog {
            entries: VecDeque::new(),
            retention: retention.max(1),
            evicted: 0,
            journal: None,
        }
    }

    /// Switches to durable mode: evicted entries stay recoverable via
    /// the settlement journal's WAL records.
    pub fn attach_journal(&mut self, journal: Arc<Journal>) {
        self.journal = Some(journal);
    }

    /// True when a journal backs this log.
    pub fn is_durable(&self) -> bool {
        self.journal.is_some()
    }

    /// The configured retention capacity.
    pub fn retention(&self) -> usize {
        self.retention
    }

    /// Entries evicted so far to stay within retention.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Appends a decision, evicting the oldest entry when full, and
    /// emits the `audit.decision` trace event.
    pub fn record(&mut self, at: Duration, order_id: u64, outcome: Result<(), VerifyError>) {
        utp_trace::event(
            names::AUDIT_DECISION,
            at,
            &[
                (keys::ORDER, Value::U64(order_id)),
                (keys::OUTCOME, Value::Str(outcome_label(&outcome))),
            ],
        );
        if self.entries.len() >= self.retention {
            self.entries.pop_front();
            self.evicted += 1;
        }
        self.entries.push_back(AuditEntry {
            at,
            order_id,
            outcome,
        });
    }

    /// All retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &AuditEntry> {
        self.entries.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Accepted decisions among retained entries.
    pub fn accepted(&self) -> usize {
        self.entries.iter().filter(|e| e.outcome.is_ok()).count()
    }

    /// Entries for one order.
    pub fn for_order(&self, order_id: u64) -> Vec<&AuditEntry> {
        self.entries
            .iter()
            .filter(|e| e.order_id == order_id)
            .collect()
    }

    /// Rejections matching a predicate — e.g. count replay attempts in a
    /// time window, the provider's attack-monitoring signal.
    pub fn rejections_where(&self, mut pred: impl FnMut(&VerifyError) -> bool) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(&e.outcome, Err(err) if pred(err)))
            .count()
    }

    /// Entries within `[from, to)`.
    pub fn in_window(&self, from: Duration, to: Duration) -> Vec<&AuditEntry> {
        self.entries
            .iter()
            .filter(|e| e.at >= from && e.at < to)
            .collect()
    }

    /// Restores one decision from a recovered journal: same retention
    /// bookkeeping as [`AuditLog::record`], but no trace event — recovery
    /// must not re-emit history into the canonical trace.
    pub fn restore(&mut self, at: Duration, order_id: u64, outcome: Result<(), VerifyError>) {
        if self.entries.len() >= self.retention {
            self.entries.pop_front();
            self.evicted += 1;
        }
        self.entries.push_back(AuditEntry {
            at,
            order_id,
            outcome,
        });
    }

    /// The full decision history the journal can reproduce (including
    /// records staged but not yet flushed), mapped to audit entries.
    /// Untracked decisions carry `order_id == u64::MAX`.
    fn journal_history(&self) -> Option<Vec<AuditEntry>> {
        let journal = self.journal.as_ref()?;
        Some(
            journal
                .replay_live()
                .audit
                .into_iter()
                .map(|d| AuditEntry {
                    at: d.at,
                    order_id: d.order_id.unwrap_or(NO_ORDER),
                    outcome: d.outcome,
                })
                .collect(),
        )
    }

    /// Durable [`AuditLog::for_order`]: in durable mode, pages evicted
    /// entries back in from the journal so the result covers the whole
    /// history, not just the retained tail. Falls back to the in-memory
    /// entries when no journal is attached.
    pub fn for_order_durable(&self, order_id: u64) -> Vec<AuditEntry> {
        match self.journal_history() {
            Some(history) => history
                .into_iter()
                .filter(|e| e.order_id == order_id)
                .collect(),
            None => self.for_order(order_id).into_iter().cloned().collect(),
        }
    }

    /// Durable [`AuditLog::in_window`] (see [`AuditLog::for_order_durable`]).
    pub fn in_window_durable(&self, from: Duration, to: Duration) -> Vec<AuditEntry> {
        match self.journal_history() {
            Some(history) => history
                .into_iter()
                .filter(|e| e.at >= from && e.at < to)
                .collect(),
            None => self.in_window(from, to).into_iter().cloned().collect(),
        }
    }
}

/// Flattens an outcome into the trace `outcome` field's label.
fn outcome_label(outcome: &Result<(), VerifyError>) -> String {
    match outcome {
        Ok(()) => "ok".to_string(),
        Err(e) => format!("{e:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utp_trace::Recorder;

    fn t(secs: u64) -> Duration {
        Duration::from_secs(secs)
    }

    #[test]
    fn records_and_counts() {
        let mut log = AuditLog::new();
        log.record(t(1), 1, Ok(()));
        log.record(t(2), 2, Err(VerifyError::Replayed));
        log.record(t(3), 2, Err(VerifyError::Replayed));
        assert_eq!(log.len(), 3);
        assert_eq!(log.accepted(), 1);
        assert_eq!(
            log.rejections_where(|e| matches!(e, VerifyError::Replayed)),
            2
        );
        assert_eq!(log.evicted(), 0);
    }

    #[test]
    fn per_order_and_window_queries() {
        let mut log = AuditLog::new();
        log.record(t(1), 7, Err(VerifyError::UntrustedPal));
        log.record(t(5), 7, Ok(()));
        log.record(t(9), 8, Ok(()));
        assert_eq!(log.for_order(7).len(), 2);
        assert_eq!(log.in_window(t(0), t(6)).len(), 2);
        assert_eq!(log.in_window(t(6), t(10)).len(), 1);
    }

    #[test]
    fn empty_log_behaves() {
        let log = AuditLog::new();
        assert!(log.is_empty());
        assert_eq!(log.accepted(), 0);
        assert!(log.for_order(1).is_empty());
    }

    #[test]
    fn retention_evicts_oldest_first() {
        let mut log = AuditLog::with_retention(3);
        for i in 0..5 {
            log.record(t(i), i, Ok(()));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.evicted(), 2);
        let oldest = log.entries().next().unwrap();
        assert_eq!(oldest.order_id, 2, "orders 0 and 1 were evicted");
        assert!(log.for_order(0).is_empty());
        assert_eq!(log.for_order(4).len(), 1);
    }

    #[test]
    fn zero_retention_is_clamped_to_one() {
        let mut log = AuditLog::with_retention(0);
        log.record(t(1), 1, Ok(()));
        log.record(t(2), 2, Ok(()));
        assert_eq!(log.retention(), 1);
        assert_eq!(log.len(), 1);
        assert_eq!(log.evicted(), 1);
    }

    #[test]
    fn durable_mode_pages_evicted_entries_from_journal() {
        let journal = Arc::new(Journal::new(utp_journal::JournalConfig::fast_for_tests()));
        let mut log = AuditLog::with_retention(2);
        assert!(!log.is_durable());
        log.attach_journal(Arc::clone(&journal));
        assert!(log.is_durable());
        for i in 0..5u64 {
            journal.append_record(&utp_journal::JournalRecord::Settle {
                order_id: i,
                nonce: [i as u8; 20],
                at: t(i),
                outcome: Ok(()),
            });
            log.record(t(i), i, Ok(()));
        }
        journal.sync();
        assert_eq!(log.len(), 2);
        assert_eq!(log.evicted(), 3);
        // Evicted from memory, but the journal still has it.
        assert!(log.for_order(0).is_empty());
        let paged = log.for_order_durable(0);
        assert_eq!(paged.len(), 1);
        assert_eq!(paged[0].at, t(0));
        assert!(paged[0].outcome.is_ok());
        // Window queries cover the full history in durable mode.
        assert_eq!(log.in_window(t(0), t(5)).len(), 2);
        assert_eq!(log.in_window_durable(t(0), t(5)).len(), 5);
    }

    #[test]
    fn restore_keeps_retention_bookkeeping_without_tracing() {
        let recorder = Recorder::new();
        let mut log = AuditLog::with_retention(2);
        {
            let _sink = recorder.install("restart");
            for i in 0..3u64 {
                log.restore(t(i), i, Ok(()));
            }
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.evicted(), 1);
        assert!(
            recorder.records().is_empty(),
            "recovery must not re-emit audit history into the trace"
        );
    }

    #[test]
    fn decisions_emit_trace_events() {
        let recorder = Recorder::new();
        let mut log = AuditLog::new();
        {
            let _sink = recorder.install("provider");
            log.record(t(1), 7, Ok(()));
            log.record(t(2), 8, Err(VerifyError::Replayed));
        }
        let recs = recorder.records();
        assert_eq!(recs.len(), 2);
        assert!(recs.iter().all(|r| r.name == names::AUDIT_DECISION));
        assert!(!recs[0].volatile, "audit decisions are deterministic");
        let json = recs[1].to_json();
        assert!(json.contains("\"order\":8"), "{json}");
        assert!(json.contains("Replayed"), "{json}");
    }
}
