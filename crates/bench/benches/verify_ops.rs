//! Criterion benchmarks for provider-side evidence verification — the
//! real-CPU measurement behind E4 (throughput table).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use utp_bench::experiments::e4_server_throughput::build_jobs;
use utp_server::pipeline::{check_crypto, verify_batch_parallel};

fn bench_single_verification(c: &mut Criterion) {
    let (ca_key, pals, jobs) = build_jobs(1, 512);
    c.bench_function("verify_evidence_512b_keys", |b| {
        b.iter(|| check_crypto(&ca_key, &pals, &jobs[0]).unwrap())
    });
}

fn bench_batch_threads(c: &mut Criterion) {
    let (ca_key, pals, jobs) = build_jobs(64, 512);
    let mut group = c.benchmark_group("verify_batch_64");
    group.sample_size(10);
    group.throughput(Throughput::Elements(jobs.len() as u64));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| b.iter(|| verify_batch_parallel(&ca_key, &pals, &jobs, threads)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_single_verification, bench_batch_threads);
criterion_main!(benches);
