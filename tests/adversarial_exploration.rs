//! Tier-1 adversarial exploration smoke tests.
//!
//! The full explorer suite lives in `crates/explore/tests`; this file
//! pins the properties the roadmap's acceptance gate depends on:
//!
//! - at the CI smoke budget the **real** provider stack survives every
//!   interleaving of adversary actions with **zero** invariant
//!   violations and without exhausting the state budget;
//! - the exploration log is **byte-identical** across two runs — the
//!   explorer itself is a deterministic artifact, like the journal's
//!   crash-recovery sweep;
//! - every deliberately buggy provider shim is caught, so a green
//!   "zero violations" from the real stack is evidence, not silence;
//! - a pinned counterexample schedule replays byte-identically.

use utp::explore::{
    default_alphabet, explore, replay_schedule, Action, AuditTruncationShim, CrashKind,
    DoubleSettleShim, EvidenceKind, ExploreConfig, ForgottenOrderShim, Scenario, Strategy,
};

const SEED: u64 = 7;
const ORDERS: usize = 2;

fn smoke_config() -> ExploreConfig {
    ExploreConfig {
        max_depth: 2,
        max_states: 5_000,
        strategy: Strategy::Bfs,
        stop_at_first_violation: false,
    }
}

#[test]
fn bounded_exploration_of_the_real_stack_is_clean() {
    let (scenario, root) = Scenario::build(SEED, ORDERS);
    let alphabet = default_alphabet(scenario.order_count(), scenario.nonce_ttl);
    let report = explore(&scenario, &root, &alphabet, &smoke_config());
    assert!(
        report.violations.is_empty(),
        "adversary found an invariant violation: {:?}\nschedule:\n{}",
        report.violations[0].violation,
        utp::explore::render_schedule(&report.violations[0].schedule)
    );
    assert!(
        !report.budget_exhausted,
        "smoke budget must drain the frontier"
    );
    assert!(report.explored > 100);
    assert!(report.checks >= report.explored * utp::explore::INVARIANT_COUNT);
}

#[test]
fn exploration_log_is_deterministic_across_runs() {
    let run = || {
        let (scenario, root) = Scenario::build(SEED, ORDERS);
        let alphabet = default_alphabet(scenario.order_count(), scenario.nonce_ttl);
        explore(&scenario, &root, &alphabet, &smoke_config()).log
    };
    assert_eq!(run(), run(), "exploration log must be byte-identical");
}

#[test]
fn oracle_self_check_catches_every_seeded_bug() {
    let config = ExploreConfig {
        stop_at_first_violation: true,
        ..smoke_config()
    };
    let caught = |report: utp::explore::ExploreReport| {
        report
            .violations
            .first()
            .map(|c| c.violation.invariant)
            .unwrap_or("none")
    };

    let (scenario, root) = Scenario::build(SEED, ORDERS);
    let alphabet = default_alphabet(scenario.order_count(), scenario.nonce_ttl);
    assert_eq!(
        caught(explore(
            &scenario,
            &DoubleSettleShim::new(root),
            &alphabet,
            &config
        )),
        "balance-conservation"
    );

    let (scenario, root) = Scenario::build(SEED, ORDERS);
    assert_eq!(
        caught(explore(
            &scenario,
            &ForgottenOrderShim::new(root),
            &alphabet,
            &config
        )),
        "recovery-matches-durable"
    );

    let (scenario, root) = Scenario::build(SEED, ORDERS);
    assert_eq!(
        caught(explore(
            &scenario,
            &AuditTruncationShim::new(root),
            &alphabet,
            &config
        )),
        "audit-append-only"
    );
}

#[test]
fn pinned_counterexample_replays_byte_identically() {
    let minimal = vec![
        Action::Deliver {
            order: 0,
            kind: EvidenceKind::Genuine,
        },
        Action::Crash(CrashKind::PowerLoss),
    ];
    let run = || {
        let (scenario, root) = Scenario::build(SEED, ORDERS);
        replay_schedule(&scenario, &ForgottenOrderShim::new(root), &minimal)
    };
    let first = run();
    let second = run();
    assert_eq!(first.trace, second.trace);
    assert_eq!(
        first.violation.map(|(step, v)| (step, v.invariant)),
        Some((1, "recovery-matches-durable"))
    );
}
