//! Multi-threaded evidence verification.
//!
//! The provider-side cost of the trusted path is one certificate check,
//! two hashes and one RSA signature verification per transaction — all
//! stateless. Only nonce settlement needs serialization. The pipeline
//! therefore fans the crypto out over worker threads and settles nonces in
//! the submitting thread, which is how the paper argues one commodity
//! server scales to thousands of confirmations per second (experiment E4
//! measures this for real on the host CPU).
//!
//! [`verify_batch_parallel`] is now a thin one-shot wrapper around the
//! persistent [`crate::service::VerifierService`]; new code should hold a
//! service instead of paying thread start-up per batch.

use crate::service::{ServiceConfig, SubmitError, VerifierService};
use std::collections::HashSet;
use utp_core::ca::AikCertificate;
use utp_core::protocol::{ConfirmationToken, Evidence, Verdict};
use utp_core::verifier::{check_quote_chain, VerifyError};
use utp_crypto::rsa::RsaPublicKey;
use utp_crypto::sha1::Sha1Digest;
use utp_flicker::runtime::io_digest;

/// One unit of verification work: the issued request bytes (the provider
/// stored them when issuing) plus the evidence that came back.
#[derive(Debug, Clone)]
pub struct VerificationJob {
    /// Canonical bytes of the issued `TransactionRequest`.
    pub request_bytes: Vec<u8>,
    /// Digest of the issued transaction.
    pub tx_digest: Sha1Digest,
    /// The client's evidence.
    pub evidence: Evidence,
}

/// The stateless cryptographic core of verification: certificate, token
/// consistency, PCR-17 chain, quote signature, verdict. Everything except
/// nonce bookkeeping.
///
/// # Errors
///
/// The same [`VerifyError`] variants the stateful verifier produces for
/// these checks.
pub fn check_crypto(
    ca_key: &RsaPublicKey,
    trusted_pals: &HashSet<Sha1Digest>,
    job: &VerificationJob,
) -> Result<ConfirmationToken, VerifyError> {
    let token = job
        .evidence
        .token()
        .map_err(|_| VerifyError::MalformedEvidence)?;
    let cert =
        AikCertificate::from_bytes(&job.evidence.aik_cert).ok_or(VerifyError::BadCertificate)?;
    let aik = cert.validate(ca_key).ok_or(VerifyError::BadCertificate)?;
    if token.tx_digest != job.tx_digest {
        return Err(VerifyError::TokenMismatch);
    }
    let io = io_digest(&job.request_bytes, &job.evidence.token_bytes);
    check_quote_chain(&aik, &token.nonce, trusted_pals, &io, &job.evidence.quote)?;
    if token.verdict != Verdict::Confirmed {
        return Err(VerifyError::NotConfirmed(token.verdict));
    }
    Ok(token)
}

/// Verifies a batch on `threads` worker threads; results are positionally
/// aligned with `jobs`.
///
/// One-shot wrapper over [`VerifierService`]: submissions ride the bounded
/// queue (bounded memory, unlike the old unbounded index channel), and a
/// job whose worker is lost resolves to
/// [`VerifyError::ServiceUnavailable`] instead of panicking. The
/// certificate cache is disabled so the per-job cost matches the original
/// revalidate-every-job pipeline — experiment E10 relies on this when it
/// compares the two.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn verify_batch_parallel(
    ca_key: &RsaPublicKey,
    trusted_pals: &HashSet<Sha1Digest>,
    jobs: &[VerificationJob],
    threads: usize,
) -> Vec<Result<ConfirmationToken, VerifyError>> {
    assert!(threads > 0, "need at least one worker");
    let config = ServiceConfig {
        threads,
        shards: 1,
        queue_depth: threads.saturating_mul(4),
        cert_cache_capacity: 0,
        trusted_pals: trusted_pals.clone(),
        ..ServiceConfig::default()
    };
    let service = VerifierService::start(ca_key.clone(), config);
    let tickets: Vec<Result<_, SubmitError>> = jobs
        .iter()
        .map(|job| service.submit_job(job.clone()))
        .collect();
    tickets
        .into_iter()
        .map(|ticket| match ticket {
            Ok(ticket) => ticket.wait(),
            Err(_) => Err(VerifyError::ServiceUnavailable),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use utp_core::ca::PrivacyCa;
    use utp_core::client::{Client, ClientConfig};
    use utp_core::operator::{ConfirmingHuman, Intent};
    use utp_core::pal::ConfirmationPal;
    use utp_core::protocol::Transaction;
    use utp_core::verifier::Verifier;
    use utp_platform::machine::{Machine, MachineConfig};

    fn make_jobs(n: usize) -> (RsaPublicKey, HashSet<Sha1Digest>, Vec<VerificationJob>) {
        let ca = PrivacyCa::new(512, 111);
        let mut verifier = Verifier::new(ca.public_key().clone(), 112);
        let mut machine = Machine::new(MachineConfig::fast_for_tests(113));
        let enrollment = ca.enroll(&mut machine);
        let mut client = Client::new(ClientConfig::fast_for_tests(), enrollment);
        let mut jobs = Vec::new();
        for i in 0..n {
            let tx = Transaction::new(i as u64, "shop", 100 + i as u64, "EUR", "b");
            let request = verifier.issue_request(tx.clone(), machine.now());
            let mut human = ConfirmingHuman::new(Intent::approving(&tx), 200 + i as u64);
            let evidence = client.confirm(&mut machine, &request, &mut human).unwrap();
            jobs.push(VerificationJob {
                request_bytes: request.to_bytes(),
                tx_digest: tx.digest(),
                evidence,
            });
        }
        let mut pals = HashSet::new();
        pals.insert(ConfirmationPal::v1().measurement());
        (ca.public_key().clone(), pals, jobs)
    }

    #[test]
    fn check_crypto_accepts_genuine_evidence() {
        let (ca_key, pals, jobs) = make_jobs(1);
        check_crypto(&ca_key, &pals, &jobs[0]).unwrap();
    }

    #[test]
    fn check_crypto_rejects_cross_wired_jobs() {
        let (ca_key, pals, jobs) = make_jobs(2);
        // Evidence for tx 0 presented against tx 1's request.
        let frankenstein = VerificationJob {
            request_bytes: jobs[1].request_bytes.clone(),
            tx_digest: jobs[1].tx_digest,
            evidence: jobs[0].evidence.clone(),
        };
        assert!(check_crypto(&ca_key, &pals, &frankenstein).is_err());
    }

    #[test]
    fn parallel_results_match_serial() {
        let (ca_key, pals, mut jobs) = make_jobs(6);
        // Corrupt one job's signature so the batch has a failure.
        jobs[3].evidence.quote.signature[0] ^= 1;
        let serial: Vec<bool> = jobs
            .iter()
            .map(|j| check_crypto(&ca_key, &pals, j).is_ok())
            .collect();
        for threads in [1usize, 2, 4] {
            let parallel: Vec<bool> = verify_batch_parallel(&ca_key, &pals, &jobs, threads)
                .into_iter()
                .map(|r| r.is_ok())
                .collect();
            assert_eq!(parallel, serial, "threads={}", threads);
        }
        assert!(!serial[3]);
        assert_eq!(serial.iter().filter(|&&b| b).count(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        let (ca_key, pals, jobs) = make_jobs(1);
        let _ = verify_batch_parallel(&ca_key, &pals, &jobs, 0);
    }
}
