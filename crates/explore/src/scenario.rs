//! The bounded protocol run the explorer branches over.
//!
//! Everything expensive and adversary-independent happens once, up
//! front: CA key generation, AIK enrollment, order placement, and the
//! PAL runs that produce confirmation evidence. The prologue captures
//! an *evidence kit* per order — the genuine human-approved evidence
//! plus tampered and rogue-certificate variants — and from then on the
//! adversary only replays, reorders, withholds, delays, or crashes;
//! the victim machine and client are never touched again. That is what
//! makes state forking cheap: a branch only needs to clone the
//! provider-side state (store, ledger, audit log, journal).

use std::sync::Arc;
use std::time::Duration;

use utp_core::ca::PrivacyCa;
use utp_core::client::{Client, ClientConfig};
use utp_core::operator::{ConfirmingHuman, Intent};
use utp_core::protocol::Evidence;
use utp_core::verifier::VerifierConfig;
use utp_journal::{Journal, JournalConfig};
use utp_platform::machine::{Machine, MachineConfig};
use utp_server::provider::ServiceProvider;

use crate::action::EvidenceKind;
use crate::sut::RealSystem;

/// The account every scenario order debits.
pub const ACCOUNT: &str = "victim";

/// Opening balance of [`ACCOUNT`] in cents.
pub const OPENING_CENTS: i64 = 100_000;

/// One order's captured evidence kit.
#[derive(Debug, Clone)]
pub struct ScenarioOrder {
    /// Provider-side order id.
    pub order_id: u64,
    /// Transaction amount in cents.
    pub amount_cents: u64,
    /// The challenge nonce bound to this order.
    pub nonce: [u8; 20],
    /// Digest of the transaction the human saw and approved.
    pub tx_digest: [u8; 20],
    /// Genuine human-approved evidence.
    pub genuine: Evidence,
    /// Evidence from a PAL run the human rejected (order 0 only).
    pub rejected: Option<Evidence>,
    /// Genuine token re-encoded with a bumped attempts field: the
    /// quote's IO digest no longer covers the token bytes.
    pub tampered: Evidence,
    /// Genuine evidence with the AIK certificate swapped for one from
    /// an untrusted CA.
    pub rogue: Evidence,
}

/// A fully provisioned bounded run: provider-side state plus the
/// adversary's captured evidence. Immutable during exploration.
#[derive(Debug)]
pub struct Scenario {
    /// Captured kits, indexed by scenario order index.
    pub orders: Vec<ScenarioOrder>,
    /// Virtual time when the prologue finished (exploration starts here).
    pub base_now: Duration,
    /// The provider's nonce TTL (alphabet needs it for expiry skips).
    pub nonce_ttl: Duration,
}

impl Scenario {
    /// Builds the prologue deterministically from a seed: a journaled
    /// provider holding `k` pending orders, and the adversary's captured
    /// evidence kits for each. Returns the scenario (immutable) and the
    /// live system positioned at the branch point.
    pub fn build(seed: u64, k: usize) -> (Scenario, RealSystem) {
        let ca = PrivacyCa::new(512, seed ^ 0xCA);
        let rogue_ca = PrivacyCa::new(512, seed ^ 0x60);
        let verifier_config = VerifierConfig::default();
        let mut provider = ServiceProvider::with_config(
            ca.public_key().clone(),
            verifier_config.clone(),
            seed ^ 0x5E,
        );
        let journal = Arc::new(Journal::new(JournalConfig::fast_for_tests()));
        provider.attach_journal(Arc::clone(&journal));
        provider.open_account(ACCOUNT, OPENING_CENTS);

        let mut machine = Machine::new(MachineConfig::fast_for_tests(seed));
        let enrollment = ca.enroll(&mut machine);
        let rogue_cert = rogue_ca.enroll(&mut machine).certificate.to_bytes();
        let mut client = Client::new(ClientConfig::fast_for_tests(), enrollment);

        let mut orders = Vec::with_capacity(k);
        for i in 0..k {
            let amount = 4_200 + 1_100 * i as u64;
            let (order_id, request) = provider.place_order(
                ACCOUNT,
                "shop.example",
                amount,
                "EUR",
                "explore",
                machine.now(),
            );
            let mut human = ConfirmingHuman::new(
                Intent::approving(&request.transaction),
                seed ^ (0x100 + i as u64),
            );
            let genuine = client
                .confirm(&mut machine, &request, &mut human)
                .expect("prologue confirmation succeeds");
            // A second PAL run on order 0's challenge where the human
            // walks away: same nonce, Rejected verdict.
            let rejected = if i == 0 {
                let mut refuser = ConfirmingHuman::new(Intent::rejecting(), seed ^ 0x200);
                Some(
                    client
                        .confirm(&mut machine, &request, &mut refuser)
                        .expect("prologue rejection run succeeds"),
                )
            } else {
                None
            };
            let tampered = tamper_token(&genuine);
            let rogue = Evidence {
                token_bytes: genuine.token_bytes.clone(),
                quote: genuine.quote.clone(),
                aik_cert: rogue_cert.clone(),
            };
            orders.push(ScenarioOrder {
                order_id,
                amount_cents: amount,
                nonce: *request.nonce.as_bytes(),
                tx_digest: *request.transaction.digest().as_bytes(),
                genuine,
                rejected,
                tampered,
                rogue,
            });
        }
        // The branch point must be fully durable: every fork replays the
        // same WAL, and the adversary's initial rollback image is the
        // prologue itself.
        journal.sync();
        let scenario = Scenario {
            orders,
            base_now: machine.now(),
            nonce_ttl: verifier_config.nonce_ttl,
        };
        let system = RealSystem::new(
            provider,
            ca.public_key().clone(),
            verifier_config,
            JournalConfig::fast_for_tests(),
        );
        (scenario, system)
    }

    /// Number of orders in the scenario.
    pub fn order_count(&self) -> usize {
        self.orders.len()
    }

    /// The evidence variant for `(order, kind)`, or `None` when the
    /// scenario never captured it (inapplicable actions are no-ops).
    pub fn kit(&self, order: usize, kind: EvidenceKind) -> Option<&Evidence> {
        let entry = self.orders.get(order)?;
        match kind {
            EvidenceKind::Genuine => Some(&entry.genuine),
            EvidenceKind::Rejected => entry.rejected.as_ref(),
            EvidenceKind::TamperedToken => Some(&entry.tampered),
            EvidenceKind::RogueCert => Some(&entry.rogue),
        }
    }
}

/// Re-encodes the token with its attempts counter bumped. The token
/// still names the right transaction and nonce — only the quote's IO
/// digest betrays the modification, so this specifically exercises the
/// quote-chain check rather than the order-binding check.
fn tamper_token(genuine: &Evidence) -> Evidence {
    let mut token = genuine.token().expect("prologue token parses");
    token.attempts += 1;
    Evidence {
        token_bytes: token.to_bytes(),
        quote: genuine.quote.clone(),
        aik_cert: genuine.aik_cert.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prologue_is_deterministic_and_durable() {
        let (a, sys_a) = Scenario::build(11, 2);
        let (b, sys_b) = Scenario::build(11, 2);
        assert_eq!(a.order_count(), 2);
        assert_eq!(a.base_now, b.base_now);
        assert_eq!(a.orders[0].nonce, b.orders[0].nonce);
        assert_eq!(a.orders[1].tx_digest, b.orders[1].tx_digest);
        // Same prologue, same observable state.
        assert_eq!(
            crate::sut::System::view(&sys_a),
            crate::sut::System::view(&sys_b)
        );
        // Kits: order 0 has all four variants, order 1 lacks `rejected`.
        assert!(a.kit(0, EvidenceKind::Rejected).is_some());
        assert!(a.kit(1, EvidenceKind::Rejected).is_none());
        assert!(a.kit(2, EvidenceKind::Genuine).is_none());
        assert_ne!(
            a.kit(0, EvidenceKind::Genuine).map(|e| &e.token_bytes),
            a.kit(0, EvidenceKind::TamperedToken)
                .map(|e| &e.token_bytes),
        );
    }
}
