//! Revert-fixture for PR 7's second provider bug: sticky-Confirmed
//! removed. A replayed rejection demotes an already-Confirmed order
//! back to Rejected unless the status is checked first; the
//! authorization-flow pass must deny the unguarded demotion for the
//! missing `confirmed-checked` capability.

pub fn reject_unchecked(order: &mut Order, err: VerifyError) {
    order.status = OrderStatus::Rejected(err);
}

pub fn reject_checked(order: &mut Order, err: VerifyError) {
    if matches!(order.status, OrderStatus::Confirmed) {
        return;
    }
    order.status = OrderStatus::Rejected(err);
}
