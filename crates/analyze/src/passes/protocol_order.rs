//! `protocol-order` — declarative happens-before rules over the
//! settlement protocol.
//!
//! PR 5 established two ordering disciplines by convention: the
//! settlement decision is journaled before the ticket is resolved
//! (WAL-before-ack), and the order/nonce binding is WAL'd before the
//! confirmation challenge is registered for issuance
//! (WAL-before-challenge). This pass turns both from convention into
//! machine-checked rule, driven by `scripts/authz_spec.json`.
//!
//! Each rule names a *before* event (a call, optionally constrained by
//! an ident in its arguments), an *after* event (a call, optionally
//! constrained by a receiver-chain ident), an optional *when* path
//! marker (the rule applies to an after-site only on paths through a
//! statement carrying the marker — e.g. only the `Settle` work-item arm
//! resolves a settlement ticket), and an optional *guard* ident whose
//! appearance in a branch condition discharges the obligation (the
//! volatile no-journal mode is entered through a `if let Some(journal)`
//! check, which is exactly the discharge the spec encodes).
//!
//! The engine is the same must-analysis substrate as
//! [`crate::passes::authz_flow`]: three state bits {BEFORE, GUARD,
//! WHEN} joined by intersection, so an obligation counts as met only
//! when met on *every* path into the after-site; loop back-edges
//! correctly erase bits that do not hold around the cycle. A
//! *performer closure* lifts the rule across the call graph: a function
//! whose body must-performs the before-event on every entry→exit path
//! becomes a before-event itself (name-based, same caveat as the
//! granting closure). Functions containing no before-event at all are
//! skipped entirely — a recovery path that never journals is not
//! *violating* the ordering, it is outside the protocol segment the
//! rule describes.

use std::collections::{BTreeMap, BTreeSet};

use crate::cfg::{build_cfg, Cfg, Role, Stmt};
use crate::dataflow::{solve, Lattice};
use crate::diag::Severity;
use crate::graph::WorkspaceIndex;
use crate::items::{CallSite, FnItem};
use crate::lexer::Token;
use crate::passes::flow::{calls_in, range_has_ident, recv_chain_idents};
use crate::passes::{Finding, Pass};
use crate::source::SourceFile;
use crate::spec::{AuthzSpec, OrderRule};

/// Performer-closure iteration bound (wrapper-of-wrapper chains).
const MAX_CLOSURE_ROUNDS: usize = 4;

/// The before-event happened on every path here.
const BEFORE: u8 = 1;
/// A guard-ident branch check dominates this point.
const GUARD: u8 = 2;
/// The when-ident path marker dominates this point.
const WHEN: u8 = 4;

/// The pass (see module docs).
pub struct ProtocolOrder;

impl Pass for ProtocolOrder {
    fn id(&self) -> &'static str {
        "protocol-order"
    }

    fn description(&self) -> &'static str {
        "happens-before protocol rules (WAL-before-ack, WAL-before-challenge) hold on every path"
    }

    fn check_workspace(&self, ws: &WorkspaceIndex) -> Vec<(usize, Finding)> {
        let spec = crate::spec::embedded();
        analyze(ws, spec)
    }
}

/// Must-held ordering bits; the join is intersection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Bits(u8);

impl Lattice for Bits {
    fn join_from(&mut self, other: &Self) -> bool {
        let met = self.0 & other.0;
        let changed = met != self.0;
        self.0 = met;
        changed
    }
}

/// Live library function inside the spec's scope, with a body.
fn analyzable(ws: &WorkspaceIndex, spec: &AuthzSpec, idx: usize) -> bool {
    ws.is_live_fn(idx) && spec.in_scope(ws.fn_path(idx)) && ws.fn_item(idx).body.is_some()
}

/// Is this call site a before-event for the rule (direct, or a
/// closure-derived performer)?
fn is_before_call(
    rule: &OrderRule,
    performers: &BTreeSet<String>,
    toks: &[Token],
    call: &CallSite,
) -> bool {
    if call.name == rule.before {
        match &rule.before_ident {
            Some(id) => range_has_ident(toks, call.args.0, call.args.1, id),
            None => true,
        }
    } else {
        performers.contains(&call.name)
    }
}

/// Is this call site an after-event for the rule?
fn is_after_call(rule: &OrderRule, toks: &[Token], call: &CallSite) -> bool {
    call.name == rule.after
        && match &rule.after_recv {
            Some(r) => recv_chain_idents(toks, call.tok).iter().any(|c| c == r),
            None => true,
        }
}

/// The transfer function: statements only *set* bits; merges clear them.
fn transfer(
    rule: &OrderRule,
    performers: &BTreeSet<String>,
    file: &SourceFile,
    item: &FnItem,
    s: &Stmt,
    state: &mut Bits,
) {
    let toks = &file.tokens;
    for call in calls_in(item, s) {
        if is_before_call(rule, performers, toks, call) {
            state.0 |= BEFORE;
        }
    }
    if let Some(g) = &rule.guard_ident {
        if matches!(
            s.role,
            Role::If | Role::While | Role::Match | Role::MatchArm
        ) && range_has_ident(toks, s.lo, s.hi, g)
        {
            state.0 |= GUARD;
        }
    }
    if let Some(w) = &rule.when_ident {
        if range_has_ident(toks, s.lo, s.hi, w) {
            state.0 |= WHEN;
        }
    }
}

fn solved(
    ws: &WorkspaceIndex,
    rule: &OrderRule,
    performers: &BTreeSet<String>,
    idx: usize,
) -> (Cfg, Vec<Option<Bits>>) {
    let file = &ws.files[ws.fns[idx].file];
    let item = ws.fn_item(idx);
    let body = item.body.expect("checked by analyzable()");
    let cfg = build_cfg(&file.tokens, body);
    let entries = solve(&cfg, Bits(0), |s, st| {
        transfer(rule, performers, file, item, s, st)
    });
    (cfg, entries)
}

/// Builds the performer closure: functions that must-perform the
/// before-event on every entry→exit path become before-events.
fn build_performers(ws: &WorkspaceIndex, spec: &AuthzSpec, rule: &OrderRule) -> BTreeSet<String> {
    let mut performers = BTreeSet::new();
    for _ in 0..MAX_CLOSURE_ROUNDS {
        let mut changed = false;
        for idx in 0..ws.fns.len() {
            if !analyzable(ws, spec, idx) {
                continue;
            }
            let name = &ws.fn_item(idx).name;
            if *name == rule.before || performers.contains(name) {
                continue;
            }
            let (cfg, entries) = solved(ws, rule, &performers, idx);
            if entries[cfg.exit].is_some_and(|b| b.0 & BEFORE != 0) {
                performers.insert(name.clone());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    performers
}

/// Does the function contain a before-event at all? Rules only apply
/// inside the protocol segment that performs the before-event;
/// unrelated code (recovery, accessors) is out of the rule's domain.
fn aware(
    rule: &OrderRule,
    performers: &BTreeSet<String>,
    file: &SourceFile,
    item: &FnItem,
) -> bool {
    item.calls
        .iter()
        .any(|c| is_before_call(rule, performers, &file.tokens, c))
}

/// Runs the pass over the workspace.
pub(crate) fn analyze(ws: &WorkspaceIndex, spec: &AuthzSpec) -> Vec<(usize, Finding)> {
    let mut findings = Vec::new();
    for rule in &spec.order {
        let performers = build_performers(ws, spec, rule);
        for idx in 0..ws.fns.len() {
            if !analyzable(ws, spec, idx) {
                continue;
            }
            let file = &ws.files[ws.fns[idx].file];
            let item = ws.fn_item(idx);
            if !aware(rule, &performers, file, item) {
                continue;
            }
            let (cfg, entries) = solved(ws, rule, &performers, idx);
            for (bi, block) in cfg.blocks.iter().enumerate() {
                let Some(entry) = entries[bi] else { continue };
                let mut state = entry;
                for s in &block.stmts {
                    for call in calls_in(item, s) {
                        if !is_after_call(rule, &file.tokens, call) {
                            continue;
                        }
                        if rule.when_ident.is_some() && state.0 & WHEN == 0 {
                            continue; // rule scoped to marked paths only
                        }
                        if state.0 & (BEFORE | GUARD) == 0 {
                            findings.push((
                                ws.fns[idx].file,
                                Finding {
                                    line: call.line,
                                    severity: Severity::Deny,
                                    message: format!(
                                        "`{}` here can run before `{}` on some path through \
                                         `{}`: {} (protocol-order rule `{}`; see \
                                         scripts/authz_spec.json)",
                                        rule.after,
                                        rule.before,
                                        item.name,
                                        rule.describe,
                                        rule.rule,
                                    ),
                                },
                            ));
                        }
                    }
                    transfer(rule, &performers, file, item, s, &mut state);
                }
            }
        }
    }
    findings
}

/// Report helper: after-event sites checked per rule (inside aware
/// functions, matching the analysis' domain).
pub(crate) fn order_site_counts(ws: &WorkspaceIndex, spec: &AuthzSpec) -> BTreeMap<String, usize> {
    let mut out: BTreeMap<String, usize> = BTreeMap::new();
    for rule in &spec.order {
        let performers = build_performers(ws, spec, rule);
        let mut n = 0;
        for idx in 0..ws.fns.len() {
            if !analyzable(ws, spec, idx) {
                continue;
            }
            let file = &ws.files[ws.fns[idx].file];
            let item = ws.fn_item(idx);
            if !aware(rule, &performers, file, item) {
                continue;
            }
            n += item
                .calls
                .iter()
                .filter(|c| is_after_call(rule, &file.tokens, c))
                .count();
        }
        out.insert(rule.rule.clone(), n);
    }
    out
}
