//! Deterministic network model between the client machine and the service
//! provider.
//!
//! The paper's end-to-end numbers include ordinary Internet round trips.
//! We model a link as base propagation delay + seedable jitter +
//! bandwidth-limited serialization, which is all the end-to-end latency
//! experiment (E3) needs. No packets are simulated — only time.
//!
//! # Example
//!
//! ```
//! use utp_netsim::{Link, LinkConfig};
//! use std::time::Duration;
//!
//! let mut link = Link::new(LinkConfig::broadband(), 7);
//! let d = link.one_way_delay(1500);
//! assert!(d >= Duration::from_millis(10)); // half the 20 ms base RTT
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Link parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkConfig {
    /// Base round-trip time (propagation both ways, no payload).
    pub base_rtt: Duration,
    /// Maximum extra jitter per one-way trip (uniform in `[0, jitter]`).
    pub jitter: Duration,
    /// Serialization bandwidth in bytes per second.
    pub bandwidth: u64,
}

impl LinkConfig {
    /// 2011-era home broadband: 20 ms RTT, ±5 ms jitter, 1 MB/s up.
    pub fn broadband() -> Self {
        LinkConfig {
            base_rtt: Duration::from_millis(20),
            jitter: Duration::from_millis(5),
            bandwidth: 1_000_000,
        }
    }

    /// Continental path: 80 ms RTT.
    pub fn continental() -> Self {
        LinkConfig {
            base_rtt: Duration::from_millis(80),
            jitter: Duration::from_millis(15),
            bandwidth: 1_000_000,
        }
    }

    /// Intercontinental path: 200 ms RTT.
    pub fn intercontinental() -> Self {
        LinkConfig {
            base_rtt: Duration::from_millis(200),
            jitter: Duration::from_millis(30),
            bandwidth: 500_000,
        }
    }

    /// A custom symmetric link with the given RTT and no jitter — used by
    /// parameter sweeps.
    pub fn fixed_rtt(rtt: Duration) -> Self {
        LinkConfig {
            base_rtt: rtt,
            jitter: Duration::ZERO,
            bandwidth: 1_000_000,
        }
    }
}

/// A seeded link instance.
#[derive(Debug, Clone)]
pub struct Link {
    config: LinkConfig,
    rng: StdRng,
    bytes_carried: u64,
    messages_carried: u64,
}

impl Link {
    /// Creates a link with the given config and jitter seed.
    pub fn new(config: LinkConfig, seed: u64) -> Self {
        Link {
            config,
            rng: StdRng::seed_from_u64(seed ^ 0x4e_4554_u64),
            bytes_carried: 0,
            messages_carried: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Time for one message of `payload_len` bytes to cross the link.
    pub fn one_way_delay(&mut self, payload_len: usize) -> Duration {
        self.bytes_carried += payload_len as u64;
        self.messages_carried += 1;
        let propagation = self.config.base_rtt / 2;
        let jitter = self.config.jitter.mul_f64(self.rng.gen::<f64>());
        let serialization =
            Duration::from_secs_f64(payload_len as f64 / self.config.bandwidth as f64);
        propagation + jitter + serialization
    }

    /// Time for a request/response exchange with the given payload sizes.
    pub fn round_trip(&mut self, request_len: usize, response_len: usize) -> Duration {
        self.one_way_delay(request_len) + self.one_way_delay(response_len)
    }

    /// Total bytes carried (both directions).
    pub fn bytes_carried(&self) -> u64 {
        self.bytes_carried
    }

    /// Total messages carried.
    pub fn messages_carried(&self) -> u64 {
        self.messages_carried
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_has_floor_of_half_rtt() {
        let mut link = Link::new(LinkConfig::fixed_rtt(Duration::from_millis(100)), 1);
        for _ in 0..20 {
            assert!(link.one_way_delay(0) >= Duration::from_millis(50));
        }
    }

    #[test]
    fn larger_payloads_take_longer() {
        let mut a = Link::new(LinkConfig::fixed_rtt(Duration::from_millis(10)), 1);
        let small = a.one_way_delay(100);
        let mut b = Link::new(LinkConfig::fixed_rtt(Duration::from_millis(10)), 1);
        let large = b.one_way_delay(1_000_000);
        assert!(large > small + Duration::from_millis(500)); // 1 MB at 1 MB/s
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let cfg = LinkConfig {
            base_rtt: Duration::from_millis(20),
            jitter: Duration::from_millis(5),
            bandwidth: 1_000_000,
        };
        let mut a = Link::new(cfg.clone(), 9);
        let mut b = Link::new(cfg.clone(), 9);
        for _ in 0..50 {
            let da = a.one_way_delay(64);
            let db = b.one_way_delay(64);
            assert_eq!(da, db);
            assert!(da >= Duration::from_millis(10));
            assert!(da <= Duration::from_millis(16));
        }
    }

    #[test]
    fn round_trip_is_sum_of_legs() {
        let mut link = Link::new(LinkConfig::fixed_rtt(Duration::from_millis(40)), 3);
        let rt = link.round_trip(100, 100);
        assert!(rt >= Duration::from_millis(40));
        assert_eq!(link.messages_carried(), 2);
        assert_eq!(link.bytes_carried(), 200);
    }

    #[test]
    fn presets_order_sensibly() {
        assert!(LinkConfig::broadband().base_rtt < LinkConfig::continental().base_rtt);
        assert!(LinkConfig::continental().base_rtt < LinkConfig::intercontinental().base_rtt);
    }
}
