//! Criterion benchmarks for the full client-side stack: one complete
//! attested confirmation session (host-CPU cost of running the whole
//! simulator, complementing E2's modeled virtual-time table).

use criterion::{criterion_group, criterion_main, Criterion};
use utp_core::ca::PrivacyCa;
use utp_core::client::{Client, ClientConfig};
use utp_core::operator::{ConfirmingHuman, Intent};
use utp_core::protocol::{ConfirmMode, Transaction};
use utp_core::verifier::Verifier;
use utp_platform::machine::{Machine, MachineConfig};

fn bench_full_confirmation(c: &mut Criterion) {
    let ca = PrivacyCa::new(512, 71);
    let mut verifier = Verifier::new(ca.public_key().clone(), 72);
    let mut machine = Machine::new(MachineConfig::fast_for_tests(73));
    let enrollment = ca.enroll(&mut machine);
    let mut client = Client::new(ClientConfig::fast_for_tests(), enrollment);
    let mut group = c.benchmark_group("session");
    group.sample_size(20);
    group.bench_function("confirm_and_verify_press_enter", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let tx = Transaction::new(i, "shop.example", 100, "EUR", "x");
            let request = verifier.issue_request_with_mode(
                tx.clone(),
                ConfirmMode::PressEnter,
                machine.now(),
            );
            let mut human = ConfirmingHuman::new(Intent::approving(&tx), i);
            let evidence = client
                .confirm(&mut machine, &request, &mut human)
                .expect("session succeeds");
            verifier
                .verify(&evidence, machine.now())
                .expect("evidence verifies")
        })
    });
    group.finish();
}

fn bench_amortized_confirmation(c: &mut Criterion) {
    use utp_core::amortized::{AmortizedClient, AmortizedVerifier};
    let ca = PrivacyCa::new(512, 75);
    let mut verifier = AmortizedVerifier::new(ca.public_key().clone(), 512, 76);
    let mut machine = Machine::new(MachineConfig::fast_for_tests(77));
    let enrollment = ca.enroll(&mut machine);
    let mut client = AmortizedClient::new(enrollment);
    client.setup(&mut machine, &mut verifier).expect("setup");
    let mut group = c.benchmark_group("session");
    group.sample_size(20);
    group.bench_function("confirm_and_verify_amortized", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let tx = Transaction::new(i, "shop.example", 100, "EUR", "x");
            let request =
                verifier.issue_request(tx.clone(), ConfirmMode::PressEnter, machine.now());
            let mut human = ConfirmingHuman::new(Intent::approving(&tx), i);
            let (evidence, _) = client
                .confirm_with_report(&mut machine, &request, &mut human)
                .expect("session succeeds");
            verifier.verify(&evidence).expect("mac verifies")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_full_confirmation,
    bench_amortized_confirmation
);
criterion_main!(benches);
