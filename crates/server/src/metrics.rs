//! Latency/throughput summaries shared by the experiment harnesses, plus
//! the lock-free counters the sharded verification service exports.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically increasing, thread-safe event counter.
///
/// The service's hot path bumps these with relaxed ordering — counts are
/// monitoring data, not synchronization; a snapshot taken while workers
/// run may lag individual increments but never loses one.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` in one atomic step (batch completions).
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one and returns the pre-increment value — an atomic sequence
    /// allocator (submission sequence numbers in trace records).
    pub fn next(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed)
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A thread-safe instantaneous-level gauge (queue depth, in-flight
/// jobs). Same relaxed-ordering contract as [`Counter`]: monitoring
/// data, not synchronization.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the level outright.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Raises the level by one.
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Lowers the level by one, saturating at zero (a decrement racing
    /// a `set(0)` must not wrap to `u64::MAX`).
    pub fn decr(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }
}

/// Per-shard settlement counters, snapshotted from the live atomics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardCounters {
    /// Nonces registered with this shard.
    pub registered: u64,
    /// Evidence accepted (human-confirmed, nonce consumed).
    pub accepted: u64,
    /// Evidence rejected before settlement (crypto or nonce rules).
    pub rejected: u64,
    /// Replays caught, including concurrent duplicate submissions that
    /// lost the settle race.
    pub replayed: u64,
}

impl ShardCounters {
    /// Element-wise sum (for whole-service totals).
    pub fn merge(&self, other: &ShardCounters) -> ShardCounters {
        ShardCounters {
            registered: self.registered + other.registered,
            accepted: self.accepted + other.accepted,
            rejected: self.rejected + other.rejected,
            replayed: self.replayed + other.replayed,
        }
    }
}

/// A point-in-time snapshot of the verification service's counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// One entry per settlement shard.
    pub shards: Vec<ShardCounters>,
    /// AIK-certificate cache hits (an RSA verify skipped each).
    pub cert_cache_hits: u64,
    /// AIK-certificate cache misses (full validation performed).
    pub cert_cache_misses: u64,
}

impl ServiceStats {
    /// Whole-service totals across shards.
    pub fn totals(&self) -> ShardCounters {
        self.shards
            .iter()
            .fold(ShardCounters::default(), |acc, s| acc.merge(s))
    }

    /// Fraction of certificate lookups served from cache, in `[0, 1]`.
    /// Zero when no lookups happened yet.
    pub fn cert_cache_hit_rate(&self) -> f64 {
        let total = self.cert_cache_hits + self.cert_cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.cert_cache_hits as f64 / total as f64
    }
}

/// Summary statistics over a set of duration samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Minimum.
    pub min: Duration,
    /// Median (p50).
    pub p50: Duration,
    /// 90th percentile.
    pub p90: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Maximum.
    pub max: Duration,
}

impl Summary {
    /// Computes a summary; returns `None` for an empty sample set.
    pub fn of(samples: &[Duration]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let total: Duration = sorted.iter().sum();
        let pct = |p: f64| -> Duration {
            let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
            sorted[idx]
        };
        Some(Summary {
            count: sorted.len(),
            mean: total / sorted.len() as u32,
            min: sorted[0],
            p50: pct(0.50),
            p90: pct(0.90),
            p95: pct(0.95),
            p99: pct(0.99),
            // The emptiness check above already ran; index the checked
            // sorted slice instead of re-proving non-emptiness.
            max: sorted[sorted.len() - 1],
        })
    }

    /// Renders as `mean / p50 / p90 / p95 / p99` in milliseconds, the
    /// format the experiment tables print.
    pub fn to_ms_row(&self) -> String {
        format!(
            "{:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
            self.mean.as_secs_f64() * 1e3,
            self.p50.as_secs_f64() * 1e3,
            self.p90.as_secs_f64() * 1e3,
            self.p95.as_secs_f64() * 1e3,
            self.p99.as_secs_f64() * 1e3
        )
    }
}

/// Measures the host CPU time of `f` and returns its result alongside.
///
/// This module is the single place the simulation may read the host
/// clock (the `wallclock-in-model` pass exempts it): callers fold the
/// measured duration into virtual time via `Machine::advance`, so the
/// rest of the model stays deterministic.
pub fn host_timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = std::time::Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// A host-clock stopwatch for intervals that cannot be expressed as one
/// closure — e.g. the enqueue-to-dequeue wait of a job crossing a
/// channel between threads. Lives here for the same reason as
/// [`host_timed`]: this module is the single sanctioned host-clock
/// reader, and all measurements taken through it are treated as
/// *volatile* (never part of deterministic model state or canonical
/// trace exports).
#[derive(Debug, Clone, Copy)]
pub struct HostStopwatch(std::time::Instant);

impl HostStopwatch {
    /// Starts the stopwatch now.
    pub fn start() -> HostStopwatch {
        HostStopwatch(std::time::Instant::now())
    }

    /// Host time elapsed since [`HostStopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }
}

/// Throughput in operations per second given a batch size and elapsed time.
pub fn throughput(ops: usize, elapsed: Duration) -> f64 {
    if elapsed.is_zero() {
        return f64::INFINITY;
    }
    ops as f64 / elapsed.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn empty_samples_give_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn single_sample_summary() {
        let s = Summary::of(&[ms(10)]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, ms(10));
        assert_eq!(s.min, ms(10));
        assert_eq!(s.p50, ms(10));
        assert_eq!(s.p90, ms(10));
        assert_eq!(s.p95, ms(10));
        assert_eq!(s.p99, ms(10));
        assert_eq!(s.max, ms(10));
    }

    #[test]
    fn percentiles_are_order_invariant() {
        let a = Summary::of(&[ms(1), ms(2), ms(3), ms(4), ms(100)]).unwrap();
        let b = Summary::of(&[ms(100), ms(3), ms(1), ms(4), ms(2)]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.p50, ms(3));
        assert_eq!(a.max, ms(100));
        assert_eq!(a.min, ms(1));
        assert_eq!(a.mean, ms(22));
    }

    #[test]
    fn p95_tracks_tail() {
        let mut samples = vec![ms(10); 99];
        samples.push(ms(1000));
        let s = Summary::of(&samples).unwrap();
        assert_eq!(s.p50, ms(10));
        assert_eq!(s.p90, ms(10));
        assert!(s.p95 <= ms(1000));
        // Nearest-rank rounding puts p99 of 100 samples at index 98,
        // one short of the single outlier; max still reports it.
        assert_eq!(s.p99, ms(10));
        assert_eq!(s.max, ms(1000));
    }

    #[test]
    fn p99_lands_on_tail_with_enough_samples() {
        // Index round(999 * 0.99) = 989 must fall inside the tail block.
        let mut samples = vec![ms(10); 989];
        samples.extend(std::iter::repeat_n(ms(1000), 11));
        let s = Summary::of(&samples).unwrap();
        assert_eq!(s.p99, ms(1000));
        assert_eq!(s.p90, ms(10));
    }

    #[test]
    fn throughput_computes_ops_per_sec() {
        assert!((throughput(100, Duration::from_secs(2)) - 50.0).abs() < 1e-9);
        assert!(throughput(1, Duration::ZERO).is_infinite());
    }

    #[test]
    fn ms_row_is_fixed_width() {
        let s = Summary::of(&[ms(1), ms(2)]).unwrap();
        let row = s.to_ms_row();
        assert_eq!(row.split_whitespace().count(), 5);
    }

    #[test]
    fn counter_is_thread_safe() {
        let c = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        c.add(58);
        assert_eq!(c.get(), 4058);
        assert_eq!(c.next(), 4058, "next returns the pre-increment value");
        assert_eq!(c.get(), 4059);
    }

    #[test]
    fn gauge_is_thread_safe() {
        let g = Gauge::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        g.incr();
                        g.decr();
                        g.incr();
                    }
                });
            }
        });
        assert_eq!(g.get(), 4000, "balanced incr/decr leave the net level");
        g.set(7);
        assert_eq!(g.get(), 7);
        g.set(0);
        g.decr();
        assert_eq!(g.get(), 0, "decr saturates at zero");
    }

    #[test]
    fn service_stats_totals_and_hit_rate() {
        let stats = ServiceStats {
            shards: vec![
                ShardCounters {
                    registered: 3,
                    accepted: 2,
                    rejected: 1,
                    replayed: 0,
                },
                ShardCounters {
                    registered: 5,
                    accepted: 4,
                    rejected: 0,
                    replayed: 1,
                },
            ],
            cert_cache_hits: 9,
            cert_cache_misses: 1,
        };
        let t = stats.totals();
        assert_eq!(t.registered, 8);
        assert_eq!(t.accepted, 6);
        assert_eq!(t.rejected, 1);
        assert_eq!(t.replayed, 1);
        assert!((stats.cert_cache_hit_rate() - 0.9).abs() < 1e-12);
        assert_eq!(ServiceStats::default().cert_cache_hit_rate(), 0.0);
    }
}
