//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of proptest the workspace's property tests use: the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`, tuple and
//! range strategies, a single-character-class regex strategy for string
//! literals, `collection::vec`, `char::range`, `sample::Index`,
//! [`prop_oneof!`] and [`Just`]. Cases are *generated* deterministically
//! but never *shrunk*; on failure the macro prints the offending inputs
//! and case number instead.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::rngs::StdRng;

    /// A recipe for generating values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree and no shrinking: a
    /// strategy is just a deterministic function of an RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value: std::fmt::Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: std::fmt::Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: std::fmt::Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + std::fmt::Debug>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed strategies; built by [`crate::prop_oneof!`].
    pub struct Union<T: std::fmt::Debug> {
        choices: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T: std::fmt::Debug> Union<T> {
        /// Builds a union; panics if `choices` is empty.
        pub fn new(choices: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
            Union { choices }
        }

        /// An empty union; `push` arms onto it before use.
        pub fn empty() -> Self {
            Union {
                choices: Vec::new(),
            }
        }

        /// Adds one arm (`prop_oneof!` builds unions this way so each
        /// concrete strategy coerces to a trait object at the call).
        pub fn push(&mut self, choice: Box<dyn Strategy<Value = T>>) {
            self.choices.push(choice);
        }
    }

    impl<T: std::fmt::Debug> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            use rand::Rng;
            let i = rng.gen_range(0..self.choices.len());
            self.choices[i].generate(rng)
        }
    }

    impl<T: std::fmt::Debug> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<T> Strategy for std::ops::Range<T>
    where
        T: rand::SampleUniform + Copy + std::fmt::Debug,
        std::ops::Range<T>: rand::SampleRange<T>,
    {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            use rand::Rng;
            rng.gen_range(self.start..self.end)
        }
    }

    impl<T> Strategy for std::ops::RangeInclusive<T>
    where
        T: rand::SampleUniform + Copy + std::fmt::Debug,
        std::ops::RangeInclusive<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    /// String literals are single-char-class regex strategies:
    /// `"[a-z0-9.]{1,24}"` generates strings of 1–24 chars drawn from the
    /// class. Supported syntax: one `[...]` class (literal chars, `a-z`
    /// ranges, leading/trailing `-` literal) followed by `{n}` or `{n,m}`.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut StdRng) -> String {
            use rand::Rng;
            let (chars, lo, hi) = parse_class_pattern(self)
                .unwrap_or_else(|| panic!("unsupported regex strategy pattern: {self:?}"));
            let len = if lo == hi {
                lo
            } else {
                rng.gen_range(lo..hi + 1)
            };
            (0..len)
                .map(|_| chars[rng.gen_range(0..chars.len())])
                .collect()
        }
    }

    /// Parses `[class]{n}` / `[class]{n,m}` into (alphabet, min, max).
    fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let (class, quant) = rest.split_once(']')?;
        let mut chars: Vec<char> = Vec::new();
        let cs: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < cs.len() {
            if cs[i] == '\\' && i + 1 < cs.len() {
                chars.push(cs[i + 1]);
                i += 2;
            } else if i + 2 < cs.len() && cs[i + 1] == '-' {
                let (a, b) = (cs[i], cs[i + 2]);
                if a > b {
                    return None;
                }
                chars.extend(a..=b);
                i += 3;
            } else {
                chars.push(cs[i]);
                i += 1;
            }
        }
        if chars.is_empty() {
            return None;
        }
        let quant = quant.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match quant.split_once(',') {
            Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
            None => {
                let n = quant.trim().parse().ok()?;
                (n, n)
            }
        };
        if lo > hi {
            return None;
        }
        Some((chars, lo, hi))
    }

    macro_rules! impl_strategy_for_tuple {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_strategy_for_tuple!(A: 0);
    impl_strategy_for_tuple!(A: 0, B: 1);
    impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
    impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);
    impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait: types with a canonical full-range strategy.

    use rand::rngs::StdRng;

    /// Types [`crate::prelude::any`] can generate.
    pub trait Arbitrary: std::fmt::Debug + Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_standard {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    use rand::Rng;
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut StdRng) -> Self {
            use rand::Rng;
            rng.gen()
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut StdRng) -> Self {
            use rand::RngCore;
            crate::sample::Index::from_raw(rng.next_u64())
        }
    }
}

/// Marker strategy returned by [`prelude::any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: arbitrary::Arbitrary> strategy::Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for vectors with a length drawn from `range` and elements
    /// drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        range: std::ops::Range<usize>,
    }

    /// Generates `Vec`s whose length lies in `range` (half-open).
    pub fn vec<S: Strategy>(element: S, range: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(
            range.start < range.end,
            "collection::vec: empty length range"
        );
        VecStrategy { element, range }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.range.start..self.range.end);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod char {
    //! Character strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy over an inclusive character range.
    #[derive(Debug, Clone, Copy)]
    pub struct CharRange {
        start: u32,
        end: u32,
    }

    /// Uniform characters in `[start, end]` (inclusive, like proptest).
    pub fn range(start: char, end: char) -> CharRange {
        assert!(start <= end, "char::range: start > end");
        CharRange {
            start: start as u32,
            end: end as u32,
        }
    }

    impl Strategy for CharRange {
        type Value = char;

        fn generate(&self, rng: &mut StdRng) -> char {
            // Resample on the (rare) unassigned code points in the range.
            loop {
                let v = rng.gen_range(self.start..self.end + 1);
                if let Some(c) = char::from_u32(v) {
                    return c;
                }
            }
        }
    }
}

pub mod sample {
    //! Sampling helpers.

    /// An index into a collection whose length is unknown at generation
    /// time; resolve with [`Index::index`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index {
        raw: u64,
    }

    impl Index {
        /// Builds an index from raw entropy.
        pub fn from_raw(raw: u64) -> Self {
            Index { raw }
        }

        /// Maps the stored entropy onto `[0, len)`. Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            ((self.raw as u128 * len as u128) >> 64) as usize
        }
    }
}

/// Marker returned (via `Err`) by [`prop_assume!`] when a case does not
/// satisfy the assumption; the harness skips such cases.
#[derive(Debug)]
pub struct AssumeRejected;

/// Per-block configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Derives the deterministic per-test base seed.
pub fn base_seed(test_name: &str) -> u64 {
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        seed = (seed ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    seed
}

/// Builds the RNG for one test case.
pub fn case_rng(base: u64, case: u32) -> StdRng {
    use rand::SeedableRng;
    StdRng::seed_from_u64(base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The canonical strategy for `T`.
    pub fn any<T: crate::arbitrary::Arbitrary>() -> crate::Any<T> {
        crate::Any {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases; a
/// failing case prints its inputs before propagating the panic.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal recursion for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let base = $crate::base_seed(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut rng = $crate::case_rng(base, case);
                let mut reprs: Vec<String> = Vec::new();
                $(
                    let value = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    reprs.push(format!("{} = {:?}", stringify!($pat), &value));
                    let $pat = value;
                )+
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || -> ::std::result::Result<(), $crate::AssumeRejected> {
                        $body
                        ::std::result::Result::Ok(())
                    },
                ));
                match outcome {
                    Ok(Ok(())) => {}
                    // prop_assume! rejected this case; move on.
                    Ok(Err($crate::AssumeRejected)) => {}
                    Err(payload) => {
                        eprintln!(
                            "[proptest shim] {} failed on case {}/{} with inputs:\n  {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            reprs.join("\n  "),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when `cond` is false. Only usable inside a
/// [`proptest!`] body (it returns `Err(AssumeRejected)` from the case
/// closure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::AssumeRejected);
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        // Built by pushing so each `Box<Concrete>` coerces to the boxed
        // trait object independently; `vec![.. as _]` breaks inference of
        // the shared `Value` type.
        let mut union = $crate::strategy::Union::empty();
        $(union.push(Box::new($strat));)+
        union
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn class_pattern_strategy_respects_alphabet_and_length() {
        let mut rng = crate::case_rng(1, 0);
        for _ in 0..50 {
            let s = "[a-c.]{1,4}".generate(&mut rng);
            assert!((1..=4).contains(&s.len()));
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | '.')));
            let t = "[A-Z]{3}".generate(&mut rng);
            assert_eq!(t.len(), 3);
        }
    }

    #[test]
    fn index_maps_into_bounds() {
        let mut rng = crate::case_rng(2, 0);
        for _ in 0..100 {
            let idx: crate::sample::Index = crate::arbitrary::Arbitrary::arbitrary(&mut rng);
            assert!(idx.index(7) < 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_runs(
            v in crate::collection::vec(any::<u8>(), 1..9),
            c in crate::char::range('a', 'z'),
            n in 3u64..9,
            choice in prop_oneof![Just(1u8), (5u8..7).prop_map(|x| x)]
        ) {
            prop_assert!((1..=8).contains(&v.len()));
            prop_assert!(c.is_ascii_lowercase());
            prop_assert!((3..9).contains(&n));
            prop_assert!(choice == 1 || (5..7).contains(&choice));
        }
    }
}
