//! Non-volatile storage (`TPM_NV_DefineSpace` / `ReadValue` / `WriteValue`).
//!
//! The client stores the AIK certificate and the PAL's sealed-state blob in
//! NV indices so the trusted path works from first boot without OS help.

use crate::error::TpmError;
use crate::locality::Locality;
use std::collections::HashMap;

/// One NV index definition with contents and a minimal access policy.
#[derive(Debug, Clone)]
struct NvSpace {
    data: Vec<u8>,
    write_locality_min: u8,
}

/// The TPM's NV storage.
#[derive(Debug, Clone, Default)]
pub struct NvStore {
    spaces: HashMap<u32, NvSpace>,
}

impl NvStore {
    /// Creates empty NV storage.
    pub fn new() -> Self {
        NvStore::default()
    }

    /// Defines an index of `size` bytes, writable only at or above
    /// `write_locality_min`. Redefining an index replaces it (owner-
    /// authorized in a real TPM; we model the owner as the caller).
    pub fn define(&mut self, index: u32, size: usize, write_locality_min: u8) {
        self.spaces.insert(
            index,
            NvSpace {
                data: vec![0u8; size],
                write_locality_min,
            },
        );
    }

    /// Reads `len` bytes at `offset`.
    pub fn read(&self, index: u32, offset: usize, len: usize) -> Result<Vec<u8>, TpmError> {
        let space = self.spaces.get(&index).ok_or(TpmError::BadNvIndex(index))?;
        let end = offset.checked_add(len).ok_or(TpmError::BadNvIndex(index))?;
        space
            .data
            .get(offset..end)
            .map(|s| s.to_vec())
            .ok_or(TpmError::BadNvIndex(index))
    }

    /// Writes `data` at `offset`, enforcing the locality policy.
    pub fn write(
        &mut self,
        locality: Locality,
        index: u32,
        offset: usize,
        data: &[u8],
    ) -> Result<(), TpmError> {
        let space = self
            .spaces
            .get_mut(&index)
            .ok_or(TpmError::BadNvIndex(index))?;
        if locality.as_u8() < space.write_locality_min {
            return Err(TpmError::BadLocality {
                got: locality.as_u8(),
                required: space.write_locality_min,
            });
        }
        let end = offset
            .checked_add(data.len())
            .ok_or(TpmError::BadNvIndex(index))?;
        space
            .data
            .get_mut(offset..end)
            .ok_or(TpmError::BadNvIndex(index))?
            .copy_from_slice(data);
        Ok(())
    }

    /// Size of an index, if defined.
    pub fn size_of(&self, index: u32) -> Option<usize> {
        self.spaces.get(&index).map(|s| s.data.len())
    }

    /// Number of defined indices.
    pub fn len(&self) -> usize {
        self.spaces.len()
    }

    /// True if nothing is defined.
    pub fn is_empty(&self) -> bool {
        self.spaces.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn define_read_write_roundtrip() {
        let mut nv = NvStore::new();
        nv.define(0x1000, 32, 0);
        nv.write(Locality::Zero, 0x1000, 4, b"hello").unwrap();
        assert_eq!(nv.read(0x1000, 4, 5).unwrap(), b"hello");
        assert_eq!(nv.read(0x1000, 0, 4).unwrap(), vec![0u8; 4]);
    }

    #[test]
    fn undefined_index_errors() {
        let nv = NvStore::new();
        assert!(matches!(
            nv.read(0x9999, 0, 1).unwrap_err(),
            TpmError::BadNvIndex(0x9999)
        ));
    }

    #[test]
    fn bounds_are_enforced() {
        let mut nv = NvStore::new();
        nv.define(0x1, 8, 0);
        assert!(nv.read(0x1, 4, 5).is_err());
        assert!(nv.write(Locality::Zero, 0x1, 7, &[1, 2]).is_err());
    }

    #[test]
    fn locality_policy_enforced_on_write_not_read() {
        let mut nv = NvStore::new();
        nv.define(0x2, 8, 2);
        let err = nv.write(Locality::Zero, 0x2, 0, &[1]).unwrap_err();
        assert!(matches!(err, TpmError::BadLocality { required: 2, .. }));
        nv.write(Locality::Two, 0x2, 0, &[1]).unwrap();
        // Reads are unrestricted in our model (the blob is ciphertext).
        assert_eq!(nv.read(0x2, 0, 1).unwrap(), vec![1]);
    }

    #[test]
    fn redefine_clears_contents() {
        let mut nv = NvStore::new();
        nv.define(0x3, 4, 0);
        nv.write(Locality::Zero, 0x3, 0, &[9, 9, 9, 9]).unwrap();
        nv.define(0x3, 4, 0);
        assert_eq!(nv.read(0x3, 0, 4).unwrap(), vec![0; 4]);
    }
}
