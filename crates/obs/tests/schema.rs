//! Cross-module integration tests: registry → snapshot → artifact →
//! JSON → gate, exercised through the public API only.

use std::time::Duration;
use utp_obs::{
    compare, render_exposition, Artifact, ArtifactPair, Baseline, Class, MetricValue,
    MetricsRegistry, BASELINE_SCHEMA, SCHEMA,
};

/// A registry populated the way a service run would.
fn populated_registry() -> MetricsRegistry {
    let registry = MetricsRegistry::new();
    registry.counter("svc.accepted", &[("shard", "0")]).add(40);
    registry.counter("svc.accepted", &[("shard", "1")]).add(24);
    registry.gauge("svc.queue_depth", &[]).set(3);
    registry.gauge("svc.queue_depth", &[]).set(1); // watermark stays 3
    let hist = registry.histogram("svc.verify_ns", &[]);
    for ns in [1_000, 2_000, 4_000, 8_000] {
        hist.record_ns(ns);
    }
    registry
}

#[test]
fn registry_snapshot_flows_into_a_round_tripping_artifact() {
    let registry = populated_registry();
    let snap = registry.snapshot(Duration::from_millis(5));

    let mut artifact = Artifact::new("E99", Class::Virtual, "itest");
    snap.append_to(&mut artifact);
    let doc = artifact.to_json();
    assert!(doc.contains(SCHEMA), "schema header present");

    let parsed = Artifact::from_json(&doc).expect("artifact parses");
    assert_eq!(parsed.to_json(), doc, "re-serialization is byte-equal");

    // The gauge's watermark survives the whole pipeline.
    let wm = parsed
        .metrics
        .iter()
        .find(|m| m.id.name == "svc.queue_depth.watermark")
        .expect("watermark metric present");
    assert_eq!(wm.value, MetricValue::U64(3));
    // The histogram flattened into a dist with all four samples.
    let dist = parsed
        .metrics
        .iter()
        .find(|m| m.id.name == "svc.verify_ns")
        .expect("dist metric present");
    match dist.value {
        MetricValue::Dist(d) => assert_eq!(d.count, 4),
        ref other => panic!("expected dist, got {other:?}"),
    }
}

#[test]
fn baseline_derives_from_artifact_and_round_trips() {
    let registry = populated_registry();
    let mut artifact = Artifact::new("E99", Class::Virtual, "itest");
    registry.snapshot(Duration::ZERO).append_to(&mut artifact);

    let baseline = Baseline::from_artifact(&artifact);
    let doc = baseline.to_json();
    assert!(doc.contains(BASELINE_SCHEMA), "baseline schema header");
    let parsed = Baseline::from_json(&doc).expect("baseline parses");
    assert_eq!(parsed.to_json(), doc, "baseline re-serializes byte-equal");

    // A freshly derived baseline gates its own artifact cleanly.
    let report = compare(&parsed, &artifact);
    assert!(report.clean(), "self-comparison must be clean: {report:?}");
}

#[test]
fn perturbed_baseline_fails_the_gate_with_a_per_metric_diff() {
    let registry = populated_registry();
    let mut artifact = Artifact::new("E99", Class::Virtual, "itest");
    registry.snapshot(Duration::ZERO).append_to(&mut artifact);

    // Perturb one metric in the baseline: the gate must name it.
    let mut baseline = Baseline::from_artifact(&artifact);
    for bm in &mut baseline.metrics {
        if bm.metric.id.name == "svc.accepted" && bm.metric.id.labels[0].1 == "0" {
            bm.metric.value = MetricValue::U64(41);
        }
    }
    let report = compare(&baseline, &artifact);
    assert!(!report.clean());
    assert_eq!(report.diffs.len(), 1);
    assert!(report.diffs[0].metric.contains("svc.accepted"));
    assert!(
        report.diffs[0].detail.contains("41") && report.diffs[0].detail.contains("40"),
        "diff states both values: {}",
        report.diffs[0].detail
    );
}

#[test]
fn artifact_pair_writes_all_three_files() {
    let dir = std::env::temp_dir().join("utp-obs-itest");
    let _ = std::fs::remove_dir_all(&dir);
    let mut pair = ArtifactPair::new("E98", "itest");
    pair.canonical.push_u64("a.count", &[], 7);
    pair.host.push_f64("a.rate", &[], 9.5);
    let written = pair.write(&dir).expect("write succeeds");
    assert_eq!(written.len(), 3);
    let canonical = std::fs::read_to_string(dir.join("BENCH_E98.json")).expect("canonical exists");
    assert_eq!(
        Artifact::from_json(&canonical).expect("parses").class,
        Class::Virtual
    );
    let host = std::fs::read_to_string(dir.join("BENCH_E98.host.json")).expect("host exists");
    assert_eq!(
        Artifact::from_json(&host).expect("parses").class,
        Class::Host
    );
    let prom = std::fs::read_to_string(dir.join("BENCH_E98.prom")).expect("prom exists");
    assert!(prom.contains("a_count{class=\"virtual\"} 7"), "{prom}");
    assert!(prom.contains("a_rate{class=\"host\"} 9.5"), "{prom}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exposition_renders_quantile_series_for_dists() {
    let registry = populated_registry();
    let mut artifact = Artifact::new("E99", Class::Virtual, "itest");
    registry.snapshot(Duration::ZERO).append_to(&mut artifact);
    let text = render_exposition(&[&artifact]);
    assert!(text.contains("svc_verify_ns_count{class=\"virtual\"} 4"));
    assert!(text.contains("quantile=\"0.999\""));
    assert!(text.lines().any(|l| l.starts_with("# experiment E99")));
}
