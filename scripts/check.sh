#!/usr/bin/env bash
# Full local gate: formatting, clippy (warnings are errors), the
# utp-analyze static analyzer, and the test suite. CI runs exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> utp-analyze (findings + TCB baseline + dataflow coverage + authz spec gate)"
mkdir -p target
cargo run -q -p utp-analyze -- --format json \
  --tcb-report target/tcb_report.json \
  --check-tcb-baseline scripts/tcb_report.json \
  --dataflow-report target/analyze/dataflow_report.json \
  --authz-report target/analyze/authz_report.json \
  --check-authz-spec scripts/authz_spec.json

echo "==> utp-analyze self-check (analyzer's own crate must be clean)"
cargo run -q -p utp-analyze -- --root crates/analyze --format json > /dev/null

echo "==> cargo test -q"
cargo test -q

echo "==> trace smoke (two E2 runs, byte-identical canonical JSONL)"
cargo run --release -q -p utp-bench --bin trace_smoke

echo "==> recovery smoke (two crash->recover runs, byte-identical trace; E11 durability tables)"
cargo run --release -q -p utp-bench --bin recovery_smoke

echo "==> differential pipeline test (timed)"
cargo test --release -q --test pipeline_differential -- --nocapture

echo "==> explore smoke (bounded adversarial exploration: 0 violations, byte-identical log, seeded bugs caught; E12 tables)"
cargo run --release -q -p utp-bench --bin explore_smoke

echo "==> fleet smoke (two 2k-client lossy fleet runs, byte-identical report digest + artifact; invariants)"
cargo run --release -q -p utp-bench --bin fleet_smoke

echo "==> perf artifacts + regression gate (virtual metrics exact, host metrics warn-only)"
for bin in e2_session_breakdown e4_server_throughput e8_amortized \
           e10_service e11_durability e12_explore e13_fleet; do
  cargo run --release -q -p utp-bench --bin "$bin" > /dev/null
done
cargo run --release -q -p utp-obs -- gate --warn-host

echo "All checks passed."
