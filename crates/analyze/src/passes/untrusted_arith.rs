//! Pass 10: length/offset values decoded from untrusted bytes (the WAL,
//! the wire codec, evidence blobs) must pass a bounds check before they
//! feed arithmetic, slice indexing, or a narrowing cast.
//!
//! This is the static twin of `tests/journal_fuzz.rs`: a torn frame or
//! a lying length field is exactly a value that flows from
//! `from_le_bytes` / `Reader::u32` / `Reader::take` into `pos + len` or
//! `&buf[start..start + len]` with no dominating comparison. The pass
//! runs the flow engine per function:
//!
//! * **Sources** (→ `Tainted`): locals bound from decode calls
//!   (`u16`/`u32`/`u64`/`bytes`/`take`, `from_le_bytes`/`from_be_bytes`).
//! * **Checks** (`Tainted` → `Checked`): mention in an `if`/`while`/
//!   `match` condition, a comparison in a normal statement, or a
//!   bounding call (`min`, `clamp`, `try_into`/`try_from`,
//!   `checked_*`, `saturating_*`). Arithmetic *over already-checked
//!   values stays checked* — `pos += HEADER_LEN + len` after both were
//!   compared does not re-taint the cursor.
//! * **Sinks** (on `Tainted` only, in non-condition statements):
//!   adjacency to `+`/`-`/`*`, use inside postfix `[...]` indexing, and
//!   `as` casts to a narrower integer type (`usize`/`u64`/`i64` are
//!   exempt: `as i64` from a `u64` is a same-width reinterpretation and
//!   `as usize` cannot truncate a `u32` on our targets).
//!
//! Soundness caveats, accepted deliberately: arithmetic *inside* a
//! condition (`if buf.len() - pos < HDR`) is not a sink — it *is* the
//! check idiom used by `record::scan` and `snapshot::decode_snapshot`;
//! field projections (`self.amount_cents`) are not tracked; and a
//! function whose body falls back to the single-block CFG is skipped
//! rather than flooded with unordered findings.

use crate::cfg::{build_cfg, Role, Stmt};
use crate::dataflow::{solve, JoinMap, Lattice};
use crate::diag::Severity;
use crate::lexer::{Token, TokenKind};
use crate::passes::flow::{binding_of, is_local_use};
use crate::passes::{Finding, Pass};
use crate::source::SourceFile;

/// Files that parse attacker-controlled bytes: the journal (WAL replay,
/// snapshot decode), the wire codec, and the protocol layer.
const SCOPE: &[&str] = &["crates/journal/src/", "crates/flicker/src/marshal.rs"];
const SCOPE_FILES: &[&str] = &["crates/core/src/protocol.rs"];

/// Decode calls whose integer results are attacker-controlled.
const SOURCE_FNS: &[&str] = &[
    "u16",
    "u32",
    "u64",
    "bytes",
    "take",
    "from_le_bytes",
    "from_be_bytes",
];

/// Calls that bound their receiver/argument.
const CHECK_FNS: &[&str] = &["min", "clamp", "try_into", "try_from"];

/// Integer types an `as` cast can truncate into.
const NARROW_TYPES: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ua {
    /// Not attacker-controlled (or already consumed by a check).
    Clean,
    /// Attacker-controlled but dominated by a bounds comparison.
    Checked,
    /// Attacker-controlled, unchecked.
    Tainted,
}

impl Lattice for Ua {
    fn join_from(&mut self, other: &Self) -> bool {
        if *other > *self {
            *self = *other;
            true
        } else {
            false
        }
    }
}

type Env = JoinMap<Ua>;

pub struct UntrustedArith;

impl Pass for UntrustedArith {
    fn id(&self) -> &'static str {
        "untrusted-arith"
    }

    fn description(&self) -> &'static str {
        "lengths/offsets decoded from untrusted bytes are bounds-checked before \
         arithmetic, indexing, or narrowing casts"
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        if !in_scope(&file.path) {
            return Vec::new();
        }
        let mut findings = Vec::new();
        for f in &file.items.fns {
            let Some(body) = f.body else { continue };
            let toks = &file.tokens;
            if file.in_test_code(f.start_line) {
                continue;
            }
            let cfg = build_cfg(toks, body);
            if cfg.fallback {
                continue; // no statement order to reason about
            }
            let entries = solve(&cfg, Env::default(), |s, env| transfer(toks, s, env));
            for (bi, block) in cfg.blocks.iter().enumerate() {
                let Some(entry) = &entries[bi] else { continue };
                let mut env = entry.clone();
                for s in &block.stmts {
                    check_sinks(toks, s, &env, &mut findings);
                    transfer(toks, s, &mut env);
                }
            }
        }
        findings
    }
}

fn in_scope(path: &str) -> bool {
    SCOPE.iter().any(|p| path.starts_with(p)) || SCOPE_FILES.contains(&path)
}

fn has_source_call(toks: &[Token], lo: usize, hi: usize) -> bool {
    (lo..hi.saturating_sub(1)).any(|i| {
        toks[i].kind == TokenKind::Ident
            && toks[i + 1].is_punct("(")
            && SOURCE_FNS.contains(&toks[i].text.as_str())
    })
}

fn has_check_call(toks: &[Token], lo: usize, hi: usize) -> bool {
    (lo..hi.saturating_sub(1)).any(|i| {
        toks[i].kind == TokenKind::Ident
            && toks[i + 1].is_punct("(")
            && (CHECK_FNS.contains(&toks[i].text.as_str())
                || toks[i].text.starts_with("checked_")
                || toks[i].text.starts_with("saturating_"))
    })
}

/// Any comparison operator in the range (`<=`/`>=` lex as `<`/`>`
/// followed by `=`).
fn has_comparison(toks: &[Token], lo: usize, hi: usize) -> bool {
    toks[lo..hi]
        .iter()
        .any(|t| t.is_punct("<") || t.is_punct(">") || t.is_punct("==") || t.is_punct("!="))
}

/// Taint of an expression range under `env`.
fn eval(toks: &[Token], lo: usize, hi: usize, env: &Env) -> Ua {
    if has_source_call(toks, lo, hi) {
        return Ua::Tainted;
    }
    let mut out = Ua::Clean;
    for i in lo..hi {
        if is_local_use(toks, i) {
            if let Some(&v) = env.0.get(&toks[i].text) {
                if v > out {
                    out = v;
                }
            }
        }
    }
    // A comparison or bounding call consumes the taint: the bound
    // value is a bool / clamped quantity.
    if out == Ua::Tainted && (has_comparison(toks, lo, hi) || has_check_call(toks, lo, hi)) {
        return Ua::Checked;
    }
    out
}

fn transfer(toks: &[Token], s: &Stmt, env: &mut Env) {
    // Mention in a condition is the bounds check.
    if s.role != Role::Normal {
        for i in s.lo..s.hi {
            if is_local_use(toks, i) {
                if let Some(v) = env.0.get_mut(&toks[i].text) {
                    if *v == Ua::Tainted {
                        *v = Ua::Checked;
                    }
                }
            }
        }
        return;
    }
    let checked_stmt = has_comparison(toks, s.lo, s.hi) || has_check_call(toks, s.lo, s.hi);
    if let Some((name, rhs_lo, compound)) = binding_of(toks, s) {
        let mut v = eval(toks, rhs_lo, s.hi, env);
        if compound {
            if let Some(&old) = env.0.get(&name) {
                if old > v {
                    v = old;
                }
            }
        }
        env.0.insert(name, v);
    }
    if checked_stmt {
        // `assert!(len <= max)` / `let ok = len < cap;` style: every
        // tainted local the comparison mentions is now bounded.
        for i in s.lo..s.hi {
            if is_local_use(toks, i) {
                if let Some(v) = env.0.get_mut(&toks[i].text) {
                    if *v == Ua::Tainted {
                        *v = Ua::Checked;
                    }
                }
            }
        }
    }
}

fn check_sinks(toks: &[Token], s: &Stmt, env: &Env, out: &mut Vec<Finding>) {
    if s.role != Role::Normal {
        return; // arithmetic inside the condition IS the check idiom
    }
    // When this statement performs the comparison itself, its uses are
    // the check, not a sink.
    if has_comparison(toks, s.lo, s.hi) && !has_index_sink_shape(toks, s) {
        return;
    }
    let mut index_depth = 0usize;
    for i in s.lo..s.hi {
        let t = &toks[i];
        if t.is_punct("[") && i > s.lo && is_postfix_position(&toks[i - 1]) {
            index_depth += 1;
        } else if t.is_punct("]") && index_depth > 0 {
            index_depth -= 1;
        }
        if !is_local_use(toks, i) || env.0.get(&t.text) != Some(&Ua::Tainted) {
            continue;
        }
        let line = t.line;
        // `op ident` counts only when the op is *binary* (something
        // that can end an operand precedes it) — `*request` is a deref
        // and `-1` a negation, not arithmetic on the value.
        let prev_binary = i.checked_sub(2).and_then(|j| {
            let op = ["+", "-", "*"]
                .into_iter()
                .find(|op| toks[j + 1].is_punct(op))?;
            let ender = &toks[j];
            (matches!(ender.kind, TokenKind::Ident | TokenKind::Number)
                || ender.is_punct(")")
                || ender.is_punct("]"))
            .then_some(op)
        });
        let next_op = toks
            .get(i + 1)
            .and_then(|n| ["+", "-", "*"].into_iter().find(|op| n.is_punct(op)));
        let arith_op = prev_binary.or(next_op);
        if let Some(op) = arith_op {
            out.push(deny(
                line,
                format!(
                    "`{}` comes from untrusted bytes and feeds `{}` before any bounds \
                     check; compare it against the available length (or use checked_* \
                     arithmetic) first",
                    t.text, op
                ),
            ));
            continue;
        }
        if toks.get(i + 1).is_some_and(|n| n.is_ident("as"))
            && toks
                .get(i + 2)
                .is_some_and(|ty| NARROW_TYPES.contains(&ty.text.as_str()))
        {
            out.push(deny(
                line,
                format!(
                    "`{}` comes from untrusted bytes and is narrowed with `as {}` before \
                     any range check; a lying length survives the truncation — validate \
                     the range (or use try_into) first",
                    t.text,
                    toks[i + 2].text
                ),
            ));
            continue;
        }
        if index_depth > 0 {
            out.push(deny(
                line,
                format!(
                    "`{}` comes from untrusted bytes and is used as a slice index/offset \
                     before any bounds check; verify it against the buffer length first",
                    t.text
                ),
            ));
        }
    }
}

/// Whether the statement contains postfix indexing at all (used to keep
/// the index sink active even in statements that also compare).
fn has_index_sink_shape(toks: &[Token], s: &Stmt) -> bool {
    (s.lo + 1..s.hi).any(|i| toks[i].is_punct("[") && is_postfix_position(&toks[i - 1]))
}

/// Is a `[` after this token an indexing bracket (vs an array literal)?
fn is_postfix_position(prev: &Token) -> bool {
    prev.kind == TokenKind::Ident && !prev.is_ident("return") && !prev.is_ident("in")
        || prev.is_punct(")")
        || prev.is_punct("]")
}

fn deny(line: u32, message: String) -> Finding {
    Finding {
        line,
        severity: Severity::Deny,
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let file = SourceFile::parse("crates/journal/src/fixture.rs", src);
        UntrustedArith.check(&file)
    }

    #[test]
    fn unchecked_length_arithmetic_is_flagged() {
        let f = run("fn decode(bytes: &[u8], pos: usize) -> usize {\n\
             let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;\n\
             pos + len\n\
             }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("feeds `+`"));
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn checked_then_used_is_clean() {
        // The record::scan / decode_snapshot idiom: compare first, then
        // slice and advance the cursor.
        let f = run(
            "fn decode(bytes: &[u8], mut pos: usize) -> Option<&[u8]> {\n\
             let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;\n\
             if bytes.len() - pos < len {\n\
             return None;\n\
             }\n\
             let body = &bytes[pos..pos + len];\n\
             pos += len;\n\
             Some(body)\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn narrowing_cast_is_flagged_but_widening_is_not() {
        let f = run("fn narrow(r: &mut Reader) -> (u16, i64) {\n\
             let n = r.u64().unwrap();\n\
             let small = n as u16;\n\
             let wide = n as i64;\n\
             (small, wide)\n\
             }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("as u16"));
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn check_on_one_branch_only_does_not_launder_the_join() {
        let f = run(
            "fn partial(r: &mut Reader, cap: usize, c: bool) -> usize {\n\
             let len = r.u32().unwrap() as usize;\n\
             if c {\n\
             let ok = len < cap;\n\
             ignore(ok);\n\
             }\n\
             len * 2\n\
             }\n",
        );
        // `len` is Checked on the then-path but Tainted on the skip
        // path; the join is Tainted, so the multiply is still flagged.
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("feeds `*`"));
    }

    #[test]
    fn tainted_index_is_flagged() {
        let f = run("fn pick(bytes: &[u8], r: &mut Reader) -> u8 {\n\
             let idx = r.u32().unwrap() as usize;\n\
             bytes[idx]\n\
             }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("slice index"));
    }

    #[test]
    fn out_of_scope_files_are_ignored() {
        let file = SourceFile::parse(
            "crates/server/src/service.rs",
            "fn f(r: &mut Reader) -> u64 { let n = r.u64().unwrap(); n + 1 }\n",
        );
        assert!(UntrustedArith.check(&file).is_empty());
    }

    #[test]
    fn bounding_call_launders() {
        let f = run("fn clamp(r: &mut Reader, cap: usize) -> usize {\n\
             let len = r.u32().unwrap() as usize;\n\
             let len = len.min(cap);\n\
             len + 1\n\
             }\n");
        assert!(f.is_empty(), "{f:?}");
    }
}
