//! The schema-versioned perf artifact every experiment bin emits.
//!
//! One experiment produces an [`ArtifactPair`]: the *canonical*
//! artifact (`BENCH_<exp>.json`, class `virtual`) carries only
//! metrics derived from the virtual clock and seeded randomness — it
//! is byte-identical across runs and machines and the regression gate
//! holds it to zero drift — while the *host* artifact
//! (`BENCH_<exp>.host.json`, class `host`) carries wall-clock
//! measurements that vary run to run and get loose tolerance bands.
//! A Prometheus-style `.prom` rendering of both rides along for human
//! inspection.

use crate::json::{escape_into, Json};
use crate::registry::MetricId;
use std::io;
use std::path::{Path, PathBuf};
use utp_trace::LatencyHistogram;

/// Artifact schema identifier; bump on breaking format changes.
pub const SCHEMA: &str = "utp-bench-artifact/v1";

/// Determinism class of a metric set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Virtual-clock / seeded values: byte-reproducible everywhere.
    Virtual,
    /// Host-clock measurements: machine- and load-dependent.
    Host,
}

impl Class {
    /// Wire name (`"virtual"` / `"host"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Class::Virtual => "virtual",
            Class::Host => "host",
        }
    }

    /// Parses the wire name.
    pub fn parse(s: &str) -> Result<Class, String> {
        match s {
            "virtual" => Ok(Class::Virtual),
            "host" => Ok(Class::Host),
            other => Err(format!("unknown class `{other}`")),
        }
    }

    /// Default gate tolerance: virtual metrics are exact; host metrics
    /// get an order-of-magnitude band (they only guard against
    /// collapse, and the per-PR gate treats them as warnings anyway).
    pub fn default_tolerance(&self) -> f64 {
        match self {
            Class::Virtual => 0.0,
            Class::Host => 9.0,
        }
    }
}

/// A latency distribution flattened out of a [`LatencyHistogram`],
/// in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Dist {
    /// Sample count.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Minimum (0 when empty).
    pub min: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Maximum.
    pub max: u64,
}

impl Dist {
    /// Flattens a histogram through its public accessors.
    pub fn of(h: &LatencyHistogram) -> Dist {
        if h.is_empty() {
            return Dist::default();
        }
        Dist {
            count: h.count(),
            sum: h.sum().as_nanos() as u64,
            min: h.min().as_nanos() as u64,
            p50: h.p50().as_nanos() as u64,
            p90: h.p90().as_nanos() as u64,
            p99: h.p99().as_nanos() as u64,
            p999: h.p999().as_nanos() as u64,
            max: h.max().as_nanos() as u64,
        }
    }

    /// The `(field, value)` pairs in canonical order.
    pub fn fields(&self) -> [(&'static str, u64); 8] {
        [
            ("count", self.count),
            ("sum", self.sum),
            ("min", self.min),
            ("p50", self.p50),
            ("p90", self.p90),
            ("p99", self.p99),
            ("p999", self.p999),
            ("max", self.max),
        ]
    }
}

/// The value of one artifact metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// Exact integer (counts, nanoseconds, watermarks).
    U64(u64),
    /// Derived rate (ops/sec, hit rates). Must be finite.
    F64(f64),
    /// Latency distribution.
    Dist(Dist),
}

/// One named, labeled metric inside an artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Identity (name + sorted labels).
    pub id: MetricId,
    /// The value.
    pub value: MetricValue,
}

/// A schema-versioned set of metrics from one experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// Experiment key (`"E10"`), also the artifact file stem.
    pub experiment: String,
    /// Determinism class of every metric in this artifact.
    pub class: Class,
    /// Human-readable run configuration; the gate refuses to compare
    /// artifacts recorded at different configurations.
    pub config: String,
    /// The metrics. Sorted by id at serialization time.
    pub metrics: Vec<Metric>,
}

impl Artifact {
    /// An empty artifact.
    pub fn new(experiment: &str, class: Class, config: &str) -> Artifact {
        Artifact {
            experiment: experiment.to_string(),
            class,
            config: config.to_string(),
            metrics: Vec::new(),
        }
    }

    /// Appends an exact integer metric.
    pub fn push_u64(&mut self, name: &str, labels: &[(&str, &str)], v: u64) {
        self.metrics.push(Metric {
            id: MetricId::new(name, labels),
            value: MetricValue::U64(v),
        });
    }

    /// Appends a derived-rate metric. Panics on non-finite values —
    /// they have no JSON representation and no meaningful tolerance.
    pub fn push_f64(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        assert!(v.is_finite(), "non-finite metric `{name}`: {v}");
        self.metrics.push(Metric {
            id: MetricId::new(name, labels),
            value: MetricValue::F64(v),
        });
    }

    /// Appends a distribution metric.
    pub fn push_dist(&mut self, name: &str, labels: &[(&str, &str)], d: Dist) {
        self.metrics.push(Metric {
            id: MetricId::new(name, labels),
            value: MetricValue::Dist(d),
        });
    }

    /// Appends a histogram, flattened.
    pub fn push_hist(&mut self, name: &str, labels: &[(&str, &str)], h: &LatencyHistogram) {
        self.push_dist(name, labels, Dist::of(h));
    }

    /// Metrics sorted by id; panics on duplicate ids (two pushes of
    /// the same `name{labels}` would make the gate's lookup ambiguous).
    fn sorted_metrics(&self) -> Vec<&Metric> {
        let mut sorted: Vec<&Metric> = self.metrics.iter().collect();
        sorted.sort_by(|a, b| a.id.cmp(&b.id));
        for pair in sorted.windows(2) {
            assert!(
                pair[0].id != pair[1].id,
                "duplicate metric `{}` in artifact {}",
                pair[0].id.render(),
                self.experiment
            );
        }
        sorted
    }

    /// Canonical serialization: headers, then one sorted metric per
    /// line. Byte-identical for equal contents, regardless of push
    /// order.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str("  \"experiment\": \"");
        escape_into(&mut out, &self.experiment);
        out.push_str("\",\n");
        out.push_str(&format!("  \"class\": \"{}\",\n", self.class.as_str()));
        out.push_str("  \"config\": \"");
        escape_into(&mut out, &self.config);
        out.push_str("\",\n");
        let sorted = self.sorted_metrics();
        if sorted.is_empty() {
            out.push_str("  \"metrics\": []\n}\n");
            return out;
        }
        out.push_str("  \"metrics\": [\n");
        for (i, m) in sorted.iter().enumerate() {
            out.push_str("    ");
            render_metric(&mut out, m, None);
            out.push_str(if i + 1 == sorted.len() { "\n" } else { ",\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a canonical artifact document.
    pub fn from_json(src: &str) -> Result<Artifact, String> {
        let doc = Json::parse(src)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing schema")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema `{schema}` (want `{SCHEMA}`)"));
        }
        let (experiment, class, config) = parse_header(&doc)?;
        let metrics = doc
            .get("metrics")
            .and_then(Json::items)
            .ok_or("missing metrics array")?
            .iter()
            .map(parse_metric)
            .collect::<Result<Vec<(Metric, Option<f64>)>, String>>()?
            .into_iter()
            .map(|(m, _)| m)
            .collect();
        Ok(Artifact {
            experiment,
            class,
            config,
            metrics,
        })
    }
}

/// Parses the header fields shared by artifacts and baselines.
pub(crate) fn parse_header(doc: &Json) -> Result<(String, Class, String), String> {
    let experiment = doc
        .get("experiment")
        .and_then(Json::as_str)
        .ok_or("missing experiment")?
        .to_string();
    let class = Class::parse(
        doc.get("class")
            .and_then(Json::as_str)
            .ok_or("missing class")?,
    )?;
    let config = doc
        .get("config")
        .and_then(Json::as_str)
        .ok_or("missing config")?
        .to_string();
    Ok((experiment, class, config))
}

/// Renders one metric object onto a single line. `tol` is appended for
/// baseline files.
pub(crate) fn render_metric(out: &mut String, m: &Metric, tol: Option<f64>) {
    out.push_str("{\"name\":\"");
    escape_into(out, &m.id.name);
    out.push_str("\",\"labels\":{");
    for (i, (k, v)) in m.id.labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(out, k);
        out.push_str("\":\"");
        escape_into(out, v);
        out.push('"');
    }
    out.push_str("},");
    match &m.value {
        MetricValue::U64(v) => out.push_str(&format!("\"u64\":{v}")),
        MetricValue::F64(v) => out.push_str(&format!("\"f64\":{v:?}")),
        MetricValue::Dist(d) => {
            out.push_str("\"dist\":{");
            for (i, (k, v)) in d.fields().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{k}\":{v}"));
            }
            out.push('}');
        }
    }
    if let Some(tol) = tol {
        out.push_str(&format!(",\"tol\":{tol:?}"));
    }
    out.push('}');
}

/// Parses one metric object; returns the optional `tol` field so the
/// baseline loader can share this.
pub(crate) fn parse_metric(v: &Json) -> Result<(Metric, Option<f64>), String> {
    let name = v
        .get("name")
        .and_then(Json::as_str)
        .ok_or("metric missing name")?;
    let labels = v
        .get("labels")
        .and_then(Json::entries)
        .ok_or("metric missing labels")?;
    let label_refs: Vec<(&str, &str)> = labels
        .iter()
        .map(|(k, v)| {
            v.as_str()
                .map(|s| (k.as_str(), s))
                .ok_or_else(|| format!("non-string label `{k}`"))
        })
        .collect::<Result<_, String>>()?;
    let value = if let Some(u) = v.get("u64") {
        MetricValue::U64(u.as_u64().ok_or("bad u64 value")?)
    } else if let Some(f) = v.get("f64") {
        MetricValue::F64(f.as_f64().ok_or("bad f64 value")?)
    } else if let Some(d) = v.get("dist") {
        let field = |k: &str| -> Result<u64, String> {
            d.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("dist missing `{k}`"))
        };
        MetricValue::Dist(Dist {
            count: field("count")?,
            sum: field("sum")?,
            min: field("min")?,
            p50: field("p50")?,
            p90: field("p90")?,
            p99: field("p99")?,
            p999: field("p999")?,
            max: field("max")?,
        })
    } else {
        return Err(format!("metric `{name}` has no value field"));
    };
    let tol = match v.get("tol") {
        Some(t) => Some(t.as_f64().ok_or("bad tol value")?),
        None => None,
    };
    Ok((
        Metric {
            id: MetricId::new(name, &label_refs),
            value,
        },
        tol,
    ))
}

/// The canonical + host artifacts of one experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct ArtifactPair {
    /// Virtual-clock metrics — byte-reproducible.
    pub canonical: Artifact,
    /// Host-clock metrics — machine-dependent.
    pub host: Artifact,
}

impl ArtifactPair {
    /// An empty pair for `experiment` at `config`.
    pub fn new(experiment: &str, config: &str) -> ArtifactPair {
        ArtifactPair {
            canonical: Artifact::new(experiment, Class::Virtual, config),
            host: Artifact::new(experiment, Class::Host, config),
        }
    }

    /// The three file names this pair serializes to.
    pub fn file_names(experiment: &str) -> (String, String, String) {
        (
            format!("BENCH_{experiment}.json"),
            format!("BENCH_{experiment}.host.json"),
            format!("BENCH_{experiment}.prom"),
        )
    }

    /// Writes `BENCH_<exp>.json`, `BENCH_<exp>.host.json`, and the
    /// `.prom` exposition into `dir` (created if missing); returns the
    /// paths written.
    pub fn write(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let (canonical, host, prom) = Self::file_names(&self.canonical.experiment);
        let paths = [
            (dir.join(canonical), self.canonical.to_json()),
            (dir.join(host), self.host.to_json()),
            (
                dir.join(prom),
                crate::expo::render_exposition(&[&self.canonical, &self.host]),
            ),
        ];
        let mut written = Vec::new();
        for (path, contents) in paths {
            std::fs::write(&path, contents)?;
            written.push(path);
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Artifact {
        let mut a = Artifact::new("E99", Class::Virtual, "jobs=8 key_bits=512");
        a.push_u64("e99.jobs", &[("threads", "2")], 8);
        a.push_f64("e99.rate", &[], 123.25);
        let mut h = LatencyHistogram::new();
        h.record_ns(1_000);
        h.record_ns(2_000);
        a.push_hist("e99.lat_ns", &[("mode", "svc")], &h);
        a
    }

    #[test]
    fn serialization_is_push_order_independent() {
        let a = sample();
        let mut b = Artifact::new("E99", Class::Virtual, "jobs=8 key_bits=512");
        let mut h = LatencyHistogram::new();
        h.record_ns(1_000);
        h.record_ns(2_000);
        b.push_hist("e99.lat_ns", &[("mode", "svc")], &h);
        b.push_f64("e99.rate", &[], 123.25);
        b.push_u64("e99.jobs", &[("threads", "2")], 8);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn round_trips_through_json() {
        let a = sample();
        let parsed = Artifact::from_json(&a.to_json()).unwrap();
        assert_eq!(parsed.experiment, a.experiment);
        assert_eq!(parsed.class, a.class);
        assert_eq!(parsed.config, a.config);
        // Parsed metrics come back in serialized (sorted) order;
        // compare as sorted sets.
        let mut ours = a.metrics.clone();
        ours.sort_by(|x, y| x.id.cmp(&y.id));
        assert_eq!(parsed.metrics, ours);
        assert_eq!(parsed.to_json(), a.to_json(), "re-serialize byte-equal");
    }

    #[test]
    #[should_panic(expected = "duplicate metric")]
    fn duplicate_ids_are_rejected() {
        let mut a = Artifact::new("E99", Class::Virtual, "x");
        a.push_u64("m", &[], 1);
        a.push_u64("m", &[], 2);
        let _ = a.to_json();
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_rates_are_rejected() {
        let mut a = Artifact::new("E99", Class::Host, "x");
        a.push_f64("m", &[], f64::INFINITY);
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let doc = sample().to_json().replace("/v1", "/v0");
        assert!(Artifact::from_json(&doc).is_err());
    }

    #[test]
    fn empty_dist_is_all_zero() {
        assert_eq!(Dist::of(&LatencyHistogram::new()), Dist::default());
    }
}
