//! Tier-1 gate: `cargo test -q` at the workspace root runs `utp-analyze`
//! over every `.rs` file and fails on any deny-level finding, so the TCB
//! discipline the paper's minimal-TCB argument rests on is enforced on
//! every test run, not just when someone remembers to run the binary.

use utp_analyze::{analyze_workspace, deny_count, diag::render_text};

#[test]
fn static_analysis_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let diags = analyze_workspace(root)
        .expect("workspace walk failed")
        .diagnostics;
    assert_eq!(
        deny_count(&diags),
        0,
        "utp-analyze found deny-level violations; fix them or annotate with \
         `// utp-analyze: allow(<lint>) <reason>`:\n{}",
        render_text(&diags)
    );
}
