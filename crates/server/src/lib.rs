//! The service-provider stack.
//!
//! Everything that runs on the provider's side of the uni-directional
//! trusted path:
//!
//! * [`store`] — accounts and order lifecycle;
//! * [`provider`] — the [`provider::ServiceProvider`] facade: place an
//!   order → get a [`utp_core::protocol::TransactionRequest`]; submit
//!   [`utp_core::protocol::Evidence`] → get a receipt or a typed
//!   rejection;
//! * [`pipeline`] — a multi-threaded verification pipeline (the paper's
//!   scalability claim: quote verification is a cheap RSA verify, so one
//!   commodity server sustains thousands of confirmations per second);
//! * [`service`] — the persistent [`service::VerifierService`]: bounded
//!   submission queues with backpressure, nonce settlement sharded by
//!   nonce hash, and an LRU cache of validated AIK certificates;
//! * [`flow`] — end-to-end orchestration of one transaction across the
//!   network model (used by the latency experiments and examples);
//! * [`metrics`] — latency summaries (mean / percentiles) shared by the
//!   experiment harnesses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod flow;
pub mod metrics;
pub mod pipeline;
pub mod provider;
pub mod service;
pub mod store;
