// Fed as `crates/server/src/obs_leak.rs`. Key material passed into a
// metrics registration and an artifact push: `utp-obs` serializes
// names, label values, and metric values verbatim into the checked-in
// `BENCH_*.json` perf artifacts and the `.prom` exposition text. The
// rule is workspace-wide — this file is outside the key crates. The
// `names::`-qualified path segment picks a metric-name constant and
// must not trip the scan on its own.
pub fn export_session(session_key: &str, registry: &MetricsRegistry) {
    registry.counter(names::SVC_KEY, &[("key", session_key)]).incr();
}

pub fn push_session(session_key: u64, artifact: &mut Artifact) {
    artifact.push_u64("svc.key_value", &[], session_key);
}
