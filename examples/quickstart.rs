//! Quickstart: one human-confirmed transaction, end to end.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Walks the complete uni-directional trusted path once, printing each
//! step: enrollment, challenge, DRTM session (with the screen the human
//! saw), evidence, and server-side verification.

use utp::core::ca::PrivacyCa;
use utp::core::client::{Client, ClientConfig};
use utp::core::operator::{ConfirmingHuman, Intent};
use utp::core::protocol::Transaction;
use utp::core::verifier::Verifier;
use utp::platform::machine::{Machine, MachineConfig};
use utp::tpm::VendorProfile;

fn main() {
    println!("== Uni-directional trusted path: quickstart ==\n");

    // --- Provider side -----------------------------------------------------
    // The provider pins the privacy CA key and the published measurement of
    // the confirmation PAL (baked into the default verifier policy).
    let ca = PrivacyCa::new(1024, 1);
    let mut verifier = Verifier::new(ca.public_key().clone(), 2);
    println!("[provider] pinned privacy-CA key and PAL v1 measurement");

    // --- Client side -------------------------------------------------------
    // A machine with an Infineon TPM; the CA certifies a fresh AIK.
    let mut machine = Machine::new(MachineConfig::realistic(VendorProfile::Infineon, 3));
    let enrollment = ca.enroll(&mut machine);
    println!(
        "[client]   enrolled AIK (certificate serial {})",
        enrollment.certificate.serial
    );
    let mut client = Client::new(ClientConfig::default(), enrollment);

    // --- The transaction -----------------------------------------------------
    let tx = Transaction::new(1, "bookshop.example", 4_200, "EUR", "order #77");
    println!(
        "[human]    wants to pay {} to {}",
        tx.display_amount(),
        tx.payee
    );
    let request = verifier.issue_request(tx.clone(), machine.now());
    println!(
        "[provider] issued challenge with fresh nonce {}",
        request.nonce
    );

    // --- The trusted session ---------------------------------------------------
    let mut human = ConfirmingHuman::new(Intent::approving(&tx), 4);
    let (evidence, report) = client
        .confirm_with_report(&mut machine, &request, &mut human)
        .expect("confirmation session runs");
    println!("\n[client]   DRTM session complete:");
    println!("             PAL measurement : {}", report.measurement);
    println!(
        "             suspend  {:>8.1} ms",
        report.timings.suspend.as_secs_f64() * 1e3
    );
    println!(
        "             skinit   {:>8.1} ms",
        report.timings.skinit.as_secs_f64() * 1e3
    );
    println!(
        "             pal      {:>8.1} ms (human {:.1} ms)",
        report.timings.pal.as_secs_f64() * 1e3,
        report.timings.human.as_secs_f64() * 1e3
    );
    println!(
        "             quote    {:>8.1} ms",
        report.timings.attest.as_secs_f64() * 1e3
    );
    println!(
        "             resume   {:>8.1} ms",
        report.timings.resume.as_secs_f64() * 1e3
    );
    println!(
        "             total    {:>8.1} ms",
        report.timings.total().as_secs_f64() * 1e3
    );

    // --- Verification ---------------------------------------------------------
    let verified = verifier
        .verify(&evidence, machine.now())
        .expect("evidence verifies");
    println!(
        "\n[provider] VERIFIED: a human confirmed '{}' for {} ({} code attempt(s))",
        verified.transaction.payee,
        verified.transaction.display_amount(),
        verified.attempts
    );

    // Replay is futile.
    let replay = verifier.verify(&evidence, machine.now());
    println!(
        "[provider] replaying the same evidence → {:?}",
        replay.unwrap_err()
    );
}
