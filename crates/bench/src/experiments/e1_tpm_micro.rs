//! E1 — TPM 1.2 primitive latencies by vendor (the Flicker-style
//! microbenchmark table the paper's session costs decompose into).
//!
//! Regenerate: `cargo run -p utp-bench --bin e1_tpm_micro`

use crate::table;
use std::time::Duration;
use utp_tpm::keys::SRK_HANDLE;
use utp_tpm::locality::Locality;
use utp_tpm::pcr::{PcrIndex, PcrSelection};
use utp_tpm::{Tpm, TpmConfig, VendorProfile};

/// One vendor's measured primitive latencies.
#[derive(Debug, Clone)]
pub struct VendorRow {
    /// The chip.
    pub vendor: VendorProfile,
    /// `TPM_Extend` of one 20-byte digest.
    pub extend: Duration,
    /// `TPM_PCRRead`.
    pub pcr_read: Duration,
    /// `TPM_Quote` over PCR 17.
    pub quote: Duration,
    /// `TPM_Seal` of a 128-byte payload.
    pub seal: Duration,
    /// `TPM_Unseal` of the same blob.
    pub unseal: Duration,
    /// `TPM_GetRandom` of 20 bytes.
    pub get_random: Duration,
}

/// Runs the microbenchmark by driving each vendor's modeled chip through
/// real command sequences and reading the accumulated busy time.
pub fn run(key_bits: usize) -> Vec<VendorRow> {
    VendorProfile::all_real()
        .iter()
        .map(|&vendor| {
            let mut tpm = Tpm::new(TpmConfig {
                vendor,
                key_bits,
                seed: 1,
                fault_rate: 0.0,
            });
            tpm.startup_clear();
            let aik = tpm.make_identity();
            let pcr0 = PcrIndex::new(0).unwrap();

            let measure = |tpm: &mut Tpm, f: &mut dyn FnMut(&mut Tpm)| -> Duration {
                let before = tpm.busy_time();
                f(tpm);
                tpm.busy_time() - before
            };

            let extend = measure(&mut tpm, &mut |t| {
                t.extend(Locality::Zero, pcr0, &[0u8; 20]).unwrap();
            });
            let pcr_read = measure(&mut tpm, &mut |t| {
                t.pcr_read(pcr0).unwrap();
            });
            let quote = measure(&mut tpm, &mut |t| {
                t.quote(
                    aik,
                    PcrSelection::drtm_only(),
                    utp_crypto::sha1::Sha1Digest::zero(),
                )
                .unwrap();
            });
            let mut blob = None;
            let seal = measure(&mut tpm, &mut |t| {
                blob = Some(
                    t.seal_to_current(SRK_HANDLE, PcrSelection::of(&[pcr0]), &[0u8; 128])
                        .unwrap(),
                );
            });
            let blob = blob.expect("sealed");
            let unseal = measure(&mut tpm, &mut |t| {
                t.unseal(SRK_HANDLE, &blob).unwrap();
            });
            let get_random = measure(&mut tpm, &mut |t| {
                t.get_random(20).unwrap();
            });
            VendorRow {
                vendor,
                extend,
                pcr_read,
                quote,
                seal,
                unseal,
                get_random,
            }
        })
        .collect()
}

/// Renders the E1 table.
pub fn render(rows: &[VendorRow]) -> String {
    table::render(
        "E1 - TPM 1.2 primitive latency by vendor (modeled, ms)",
        &[
            "chip", "extend", "pcrread", "quote", "seal", "unseal", "getrand",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.vendor.name().to_string(),
                    table::ms(r.extend),
                    table::ms(r.pcr_read),
                    table::ms(r.quote),
                    table::ms(r.seal),
                    table::ms(r.unseal),
                    table::ms(r.get_random),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quote_dominates_on_every_vendor() {
        for row in run(512) {
            assert!(row.quote > row.extend * 5, "{:?}", row.vendor);
            assert!(row.quote > row.pcr_read * 5);
            assert!(row.quote > row.get_random * 5);
        }
    }

    #[test]
    fn vendor_ordering_matches_flicker_era_data() {
        let rows = run(512);
        let quote_of = |v: VendorProfile| rows.iter().find(|r| r.vendor == v).unwrap().quote;
        assert!(quote_of(VendorProfile::Infineon) < quote_of(VendorProfile::Atmel));
        assert!(quote_of(VendorProfile::Atmel) < quote_of(VendorProfile::StMicro));
        assert!(quote_of(VendorProfile::StMicro) < quote_of(VendorProfile::Broadcom));
    }

    #[test]
    fn render_includes_all_vendors() {
        let rows = run(512);
        let t = render(&rows);
        for v in VendorProfile::all_real() {
            assert!(t.contains(v.name()), "{} missing", v.name());
        }
    }
}
