// Fed as `crates/flicker/src/helper.rs`: a declared session-runtime
// file, so reachability is fine — but the `.expect()` is a panic path
// one call away from the TCB, which no-panic-transitive must flag.
pub fn helper_parse() -> u32 {
    let s = "42";
    s.parse().expect("static literal parses")
}
