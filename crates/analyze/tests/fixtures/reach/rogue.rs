// Fed as `crates/core/src/rogue.rs`: same crate as the TCB caller so the
// call resolves, but the path has no declared TCB category — reachable
// code outside the allowlist, the exact thing tcb-reachability denies.
pub fn rogue_helper() {
    let _ = 1 + 1;
}
