//! Network topologies: trees of nodes with per-link profiles.
//!
//! Topologies are trees rooted at the provider (node 0). Each non-root
//! node has exactly one uplink toward the provider, so a link is
//! identified by the node at its lower end. To keep a million-leaf
//! fleet cheap, leaf links are not stored individually: every link
//! references a shared *class* ([`LinkProfile`]) and per-link traffic
//! accounting aggregates per class in the [`MessageBus`].
//!
//! [`MessageBus`]: crate::bus::MessageBus

use crate::LinkConfig;
use std::time::Duration;

/// A node's identity inside one topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// What a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// The service provider (always node 0, the tree root).
    Provider,
    /// An aggregation hub between clients and the provider.
    Hub,
    /// A client machine.
    Client,
}

/// A scripted outage: the link drops everything departing inside
/// `[from, until)`, then heals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionWindow {
    /// Outage start (inclusive).
    pub from: Duration,
    /// Outage end (exclusive).
    pub until: Duration,
}

/// Per-link behavior: the delay model plus loss, reordering, and
/// scripted partitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkProfile {
    /// Latency / jitter / bandwidth, as in the flat [`Link`] model.
    ///
    /// [`Link`]: crate::Link
    pub config: LinkConfig,
    /// Per-message loss probability in parts-per-million.
    pub loss_ppm: u32,
    /// Fraction of messages (ppm) that take an extra uniform delay in
    /// `[0, reorder_window]`, letting later sends overtake them.
    pub reorder_ppm: u32,
    /// Maximum extra delay for a reordered message.
    pub reorder_window: Duration,
    /// Scripted partition/heal windows, in ascending order.
    pub partitions: Vec<PartitionWindow>,
}

impl LinkProfile {
    /// A clean (lossless, in-order, never-partitioned) profile over
    /// the given delay model.
    pub fn clean(config: LinkConfig) -> LinkProfile {
        LinkProfile {
            config,
            loss_ppm: 0,
            reorder_ppm: 0,
            reorder_window: Duration::ZERO,
            partitions: Vec::new(),
        }
    }

    /// Sets the loss probability (parts-per-million).
    pub fn with_loss_ppm(mut self, ppm: u32) -> LinkProfile {
        self.loss_ppm = ppm;
        self
    }

    /// Sets the reorder fraction (ppm) and window.
    pub fn with_reorder(mut self, ppm: u32, window: Duration) -> LinkProfile {
        self.reorder_ppm = ppm;
        self.reorder_window = window;
        self
    }

    /// Adds a scripted partition window.
    pub fn with_partition(mut self, from: Duration, until: Duration) -> LinkProfile {
        self.partitions.push(PartitionWindow { from, until });
        self
    }

    /// True when a message departing at `at` hits a partition window.
    pub fn is_partitioned(&self, at: Duration) -> bool {
        self.partitions.iter().any(|w| at >= w.from && at < w.until)
    }
}

/// A tree topology rooted at the provider.
#[derive(Debug, Clone)]
pub struct Topology {
    roles: Vec<NodeRole>,
    /// Parent node id per node; the provider points at itself.
    uplink: Vec<u32>,
    /// Class index of each node's uplink link (unused for the root).
    class_of: Vec<u16>,
    classes: Vec<(String, LinkProfile)>,
}

impl Topology {
    /// A star: every client hangs directly off the provider over the
    /// `leaf` profile.
    pub fn star(clients: u32, leaf: LinkProfile) -> Topology {
        let mut t = Topology {
            roles: vec![NodeRole::Provider],
            uplink: vec![0],
            class_of: vec![0],
            classes: vec![("leaf".to_string(), leaf)],
        };
        for _ in 0..clients {
            t.roles.push(NodeRole::Client);
            t.uplink.push(0);
            t.class_of.push(0);
        }
        t
    }

    /// A two-tier star-of-stars: `hubs` hubs on the `core` profile,
    /// each serving `clients_per_hub` clients on the `leaf` profile.
    pub fn two_tier(
        hubs: u32,
        clients_per_hub: u32,
        core: LinkProfile,
        leaf: LinkProfile,
    ) -> Topology {
        let mut t = Topology {
            roles: vec![NodeRole::Provider],
            uplink: vec![0],
            class_of: vec![0],
            classes: vec![("core".to_string(), core), ("leaf".to_string(), leaf)],
        };
        for h in 0..hubs {
            let hub_id = t.roles.len() as u32;
            t.roles.push(NodeRole::Hub);
            t.uplink.push(0);
            t.class_of.push(0);
            let _ = h;
            for _ in 0..clients_per_hub {
                t.roles.push(NodeRole::Client);
                t.uplink.push(hub_id);
                t.class_of.push(1);
            }
        }
        t
    }

    /// A generated hub fan-out: `clients` clients spread over `hubs`
    /// hubs with a seeded RNG choosing each client's hub and leaf
    /// class from `leaf_classes`. Hub uplinks use `core`.
    pub fn generated(
        seed: u64,
        hubs: u32,
        clients: u32,
        core: LinkProfile,
        leaf_classes: &[(&str, LinkProfile)],
    ) -> Topology {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        assert!(hubs > 0, "generated topology needs at least one hub");
        assert!(!leaf_classes.is_empty(), "need at least one leaf class");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x544f_504f_u64);
        let mut classes = vec![("core".to_string(), core)];
        for (name, profile) in leaf_classes {
            classes.push((name.to_string(), profile.clone()));
        }
        let mut t = Topology {
            roles: vec![NodeRole::Provider],
            uplink: vec![0],
            class_of: vec![0],
            classes,
        };
        for _ in 0..hubs {
            t.roles.push(NodeRole::Hub);
            t.uplink.push(0);
            t.class_of.push(0);
        }
        for _ in 0..clients {
            let hub = 1 + rng.gen_range(0..hubs);
            let class = 1 + rng.gen_range(0..leaf_classes.len() as u32) as u16;
            t.roles.push(NodeRole::Client);
            t.uplink.push(hub);
            t.class_of.push(class);
        }
        t
    }

    /// The provider node (the tree root).
    pub fn provider(&self) -> NodeId {
        NodeId(0)
    }

    /// Total node count (provider + hubs + clients).
    pub fn node_count(&self) -> u32 {
        self.roles.len() as u32
    }

    /// Ids of every client node, in id order.
    pub fn clients(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.roles
            .iter()
            .enumerate()
            .filter(|(_, r)| **r == NodeRole::Client)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// The role of `node`.
    pub fn role(&self, node: NodeId) -> NodeRole {
        self.roles[node.0 as usize]
    }

    /// The parent of `node` (the root returns itself).
    pub fn parent(&self, node: NodeId) -> NodeId {
        NodeId(self.uplink[node.0 as usize])
    }

    /// The link classes, in index order.
    pub fn classes(&self) -> &[(String, LinkProfile)] {
        &self.classes
    }

    /// The class index of `node`'s uplink link.
    pub fn uplink_class(&self, node: NodeId) -> u16 {
        self.class_of[node.0 as usize]
    }

    /// The hop sequence from `from` to `to`, as the class index of
    /// every link traversed (each hop is some node's uplink). Walks
    /// both uplink chains to the root and drops the shared suffix.
    pub fn route(&self, from: NodeId, to: NodeId) -> Vec<u16> {
        let chain = |mut n: NodeId| {
            let mut hops = Vec::new();
            while n != self.provider() {
                hops.push(n);
                n = self.parent(n);
            }
            hops
        };
        let mut up = chain(from);
        let mut down = chain(to);
        // Trim the common tail (hops above the lowest common ancestor).
        while let (Some(a), Some(b)) = (up.last(), down.last()) {
            if a == b {
                up.pop();
                down.pop();
            } else {
                break;
            }
        }
        down.reverse();
        up.into_iter()
            .chain(down)
            .map(|n| self.uplink_class(n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf() -> LinkProfile {
        LinkProfile::clean(LinkConfig::broadband())
    }

    #[test]
    fn star_routes_one_hop_to_provider() {
        let t = Topology::star(3, leaf());
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.clients().count(), 3);
        let c = NodeId(2);
        assert_eq!(t.role(c), NodeRole::Client);
        assert_eq!(t.route(c, t.provider()), vec![0]);
        assert_eq!(t.route(t.provider(), c), vec![0]);
    }

    #[test]
    fn two_tier_routes_via_hub() {
        let t = Topology::two_tier(2, 3, LinkProfile::clean(LinkConfig::continental()), leaf());
        assert_eq!(t.node_count(), 1 + 2 + 6);
        let client = NodeId(4); // second client of hub 1
        assert_eq!(t.role(client), NodeRole::Client);
        assert_eq!(t.role(t.parent(client)), NodeRole::Hub);
        // leaf class (1) then core class (0) on the way up.
        assert_eq!(t.route(client, t.provider()), vec![1, 0]);
        assert_eq!(t.route(t.provider(), client), vec![0, 1]);
    }

    #[test]
    fn two_tier_peer_route_avoids_root_when_shared_hub() {
        let t = Topology::two_tier(2, 2, LinkProfile::clean(LinkConfig::continental()), leaf());
        let (a, b) = (NodeId(2), NodeId(3)); // same hub
        assert_eq!(t.route(a, b), vec![1, 1]);
        let c = NodeId(5); // other hub
        assert_eq!(t.route(a, c), vec![1, 0, 0, 1]);
    }

    #[test]
    fn generated_is_deterministic_and_covers_all_clients() {
        let classes = [
            ("dsl", leaf()),
            (
                "lte",
                LinkProfile::clean(LinkConfig::continental()).with_loss_ppm(5_000),
            ),
        ];
        let core = LinkProfile::clean(LinkConfig::fixed_rtt(Duration::from_millis(4)));
        let a = Topology::generated(9, 4, 100, core.clone(), &classes);
        let b = Topology::generated(9, 4, 100, core.clone(), &classes);
        assert_eq!(a.uplink, b.uplink, "same seed, same fan-out");
        assert_eq!(a.class_of, b.class_of);
        let c = Topology::generated(10, 4, 100, core, &classes);
        assert_ne!(a.class_of, c.class_of, "different seed, different draw");
        assert_eq!(a.clients().count(), 100);
        for client in a.clients() {
            assert!(matches!(a.role(a.parent(client)), NodeRole::Hub));
            assert!(a.uplink_class(client) >= 1);
        }
    }

    #[test]
    fn partition_windows_cover_half_open_ranges() {
        let p = LinkProfile::clean(LinkConfig::broadband())
            .with_partition(Duration::from_secs(2), Duration::from_secs(3));
        assert!(!p.is_partitioned(Duration::from_secs(1)));
        assert!(p.is_partitioned(Duration::from_secs(2)));
        assert!(p.is_partitioned(Duration::from_millis(2_999)));
        assert!(!p.is_partitioned(Duration::from_secs(3)));
    }
}
