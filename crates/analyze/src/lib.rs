//! `utp-analyze` — workspace-wide TCB / constant-time / panic-freedom
//! static analyzer for the UTP reproduction.
//!
//! The paper's central claim is a *minimal, auditable* trusted computing
//! base: the confirmation PAL plus the TPM driver. This crate machine-
//! checks the discipline that claim rests on, in the spirit of the
//! automated-verification line of work around DRTM protocols.
//!
//! File-local passes (PR 1):
//!
//! 1. [`passes::tcb_boundary`] — TCB files import only allowlisted crates;
//! 2. [`passes::no_panic`] — no abort paths in TCB code;
//! 3. [`passes::ct_discipline`] — secret comparisons go through `ct_eq`;
//! 4. [`passes::forbid_unsafe`] — `#![forbid(unsafe_code)]` everywhere;
//! 5. [`passes::wallclock`] — the simulated clock is the only time source.
//!
//! Interprocedural passes over the conservative call graph ([`graph`]):
//!
//! 6. [`passes::tcb_reachability`] — everything reachable from the PAL
//!    entry points must be in the declared TCB allowlist; the closure is
//!    also measured into a TCB-size report ([`report`]);
//! 7. [`passes::no_panic_transitive`] — TCB functions must not
//!    transitively call panic paths;
//! 8. [`passes::secret_taint`] — key material must not flow to
//!    Debug/logging/wire sinks;
//! 9. [`passes::lock_discipline`] — consistent lock order, no guard held
//!    across blocking channel ops.
//!
//! Flow-sensitive passes (PR 6) run over statement-level CFGs
//! ([`cfg`]) with a worklist fixpoint solver ([`dataflow`]): the
//! secret-taint, ct-discipline and lock-discipline passes track
//! per-local state through branches and loops (zeroize kills taint,
//! `drop(guard)` releases a lockset entry), and a fourth pass:
//!
//! 10. [`passes::untrusted_arith`] — length/offset values decoded from
//!     wire or WAL bytes must pass a bounds check before feeding
//!     arithmetic, indexing, or a narrowing cast.
//!
//! Authorization-flow passes (PR 8) lift the same machinery across the
//! call graph against the policy in `scripts/authz_spec.json` ([`spec`]):
//!
//! 11. [`passes::authz_flow`] — settlement sinks (store settle, `Settle`
//!     journal records, Confirmed audit decisions, `Receipt`
//!     construction, status demotion) must be dominated by their
//!     authorization sources on every path;
//! 12. [`passes::protocol_order`] — declarative happens-before rules
//!     (WAL-before-ack, WAL-before-challenge) hold on every path.
//!
//! Violations that are individually justified carry an inline
//! `// utp-analyze: allow(<lint>) <reason>` annotation; the reason is
//! mandatory and annotations that suppress nothing are flagged, so the
//! set of waivers cannot silently rot.
//!
//! The analyzer is dependency-light on purpose: a hand-rolled lexer
//! ([`lexer`]) rather than `syn`, hand-rolled JSON output, no regex. It
//! runs in the test suite ([`analyze_workspace`] from
//! `tests/static_analysis.rs` at the workspace root) so `cargo test`
//! fails on any new deny-level finding.

#![forbid(unsafe_code)]

pub mod cfg;
pub mod dataflow;
pub mod diag;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod passes;
pub mod report;
pub mod source;
pub mod spec;
pub mod workspace;

use diag::{Diagnostic, Severity};
use graph::WorkspaceIndex;
use source::SourceFile;

/// The full result of an analysis run.
pub struct Analysis {
    /// Suppression-filtered diagnostics, sorted by (file, line, lint).
    pub diagnostics: Vec<Diagnostic>,
    /// Measured TCB-size report for the analyzed set.
    pub tcb_report: report::TcbReport,
    /// CFG / fixpoint statistics plus flow-pass finding counts.
    pub dataflow_report: report::DataflowReport,
    /// Authorization-spec coverage report (grant/sink/order site counts
    /// and the anchor check backing `--check-authz-spec`).
    pub authz_report: spec::AuthzReport,
}

/// Analyzes a set of files as one workspace. Paths must be
/// workspace-relative with forward slashes — pass scoping and the call
/// graph's crate mapping key off them.
pub fn analyze_files(inputs: Vec<(String, String)>) -> Analysis {
    analyze_files_filtered(inputs, None)
}

/// Like [`analyze_files`], restricted to the single pass named `only`
/// when set (the `--pass` CLI filter). Suppressions for lints whose
/// pass did not run are left alone — a filtered run must not flag
/// another pass's waivers as unused.
pub fn analyze_files_filtered(inputs: Vec<(String, String)>, only: Option<&str>) -> Analysis {
    let files: Vec<SourceFile> = inputs
        .iter()
        .map(|(path, text)| SourceFile::parse(path, text))
        .collect();
    let ws = WorkspaceIndex::build(files);
    // Malformed-allow keeps judging against the FULL lint universe even
    // under --pass; only the findings and unused-allow checks narrow.
    let known_lints: Vec<&str> = passes::registry().iter().map(|p| p.id()).collect();
    let registry: Vec<Box<dyn passes::Pass>> = passes::registry()
        .into_iter()
        .filter(|p| only.is_none_or(|name| p.id() == name))
        .collect();
    let ran_lints: Vec<&str> = registry.iter().map(|p| p.id()).collect();

    // (file index, lint, finding), before suppression filtering.
    let mut raw: Vec<(usize, &'static str, passes::Finding)> = Vec::new();
    for pass in &registry {
        for (fi, file) in ws.files.iter().enumerate() {
            for finding in pass.check(file) {
                raw.push((fi, pass.id(), finding));
            }
        }
        for (fi, finding) in pass.check_workspace(&ws) {
            raw.push((fi, pass.id(), finding));
        }
    }

    let mut used: Vec<Vec<bool>> = ws
        .files
        .iter()
        .map(|f| vec![false; f.suppressions.len()])
        .collect();
    let mut diags = Vec::new();
    for (fi, lint, finding) in raw {
        let file = &ws.files[fi];
        let mut suppressed = false;
        for (si, s) in file.suppressions.iter().enumerate() {
            if s.lint == lint && file.suppression_covers(si, finding.line) {
                used[fi][si] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            diags.push(Diagnostic {
                file: file.path.clone(),
                line: finding.line,
                lint,
                severity: finding.severity,
                message: finding.message,
            });
        }
    }

    for (fi, file) in ws.files.iter().enumerate() {
        for bad in &file.bad_annotations {
            diags.push(Diagnostic {
                file: file.path.clone(),
                line: bad.line,
                lint: "malformed-allow",
                severity: Severity::Deny,
                message: bad.problem.clone(),
            });
        }
        for (si, s) in file.suppressions.iter().enumerate() {
            if !known_lints.contains(&s.lint.as_str()) {
                diags.push(Diagnostic {
                    file: file.path.clone(),
                    line: s.line,
                    lint: "malformed-allow",
                    severity: Severity::Deny,
                    message: format!(
                        "allow({}) names an unknown lint (known: {})",
                        s.lint,
                        known_lints.join(", ")
                    ),
                });
            } else if !used[fi][si] && ran_lints.contains(&s.lint.as_str()) {
                diags.push(Diagnostic {
                    file: file.path.clone(),
                    line: s.line,
                    lint: "unused-allow",
                    severity: Severity::Warn,
                    message: format!(
                        "allow({}) suppresses nothing here; remove it so the waiver list \
                         stays honest",
                        s.lint
                    ),
                });
            }
        }
    }

    diag::sort_canonical(&mut diags);
    let tcb_report = report::measure(&ws);
    let dataflow_report = report::measure_dataflow(&ws, &diags);
    let authz_report = measure_authz(&ws, &diags);
    Analysis {
        diagnostics: diags,
        tcb_report,
        dataflow_report,
        authz_report,
    }
}

/// Builds the authorization-spec coverage report against the embedded
/// spec (site counts, post-suppression findings, anchor check).
fn measure_authz(ws: &WorkspaceIndex, diags: &[Diagnostic]) -> spec::AuthzReport {
    let authz = spec::embedded();
    let (scope_files, functions) = passes::authz_flow::scope_stats(ws, authz);
    spec::AuthzReport {
        scope_files,
        functions,
        grant_sites: passes::authz_flow::grant_site_counts(ws, authz),
        sink_sites: passes::authz_flow::sink_site_counts(ws, authz),
        order_sites: passes::protocol_order::order_site_counts(ws, authz),
        findings: diags
            .iter()
            .filter(|d| d.lint == "authorization-flow" || d.lint == "protocol-order")
            .count(),
        missing_anchors: spec::missing_anchors(ws, authz),
    }
}

/// Analyzes one file's source text (interprocedural passes see a
/// one-file workspace). `path` must be workspace-relative with forward
/// slashes.
pub fn analyze_source(path: &str, text: &str) -> Vec<Diagnostic> {
    analyze_files(vec![(path.to_string(), text.to_string())]).diagnostics
}

/// Analyzes every `.rs` file under `root` (see [`workspace::collect_rs_files`]
/// for the walk rules).
pub fn analyze_workspace(root: &std::path::Path) -> std::io::Result<Analysis> {
    analyze_workspace_filtered(root, None)
}

/// Like [`analyze_workspace`], restricted to the single pass named
/// `only` when set.
pub fn analyze_workspace_filtered(
    root: &std::path::Path,
    only: Option<&str>,
) -> std::io::Result<Analysis> {
    let mut inputs = Vec::new();
    for (rel, abs) in workspace::collect_rs_files(root)? {
        inputs.push((rel, std::fs::read_to_string(&abs)?));
    }
    Ok(analyze_files_filtered(inputs, only))
}

/// Count of deny-level diagnostics (what gates the exit code).
pub fn deny_count(diags: &[Diagnostic]) -> usize {
    diags
        .iter()
        .filter(|d| d.severity == Severity::Deny)
        .count()
}
