//! Two-run byte-identity of every experiment's canonical perf
//! artifact, at small configurations (512-bit keys, reduced sweeps).
//!
//! The gate holds canonical (`class=virtual`) artifacts to zero drift,
//! so these tests are the contract that makes that tolerance sound:
//! run the experiment twice, serialize both canonical artifacts, and
//! require byte equality. Host artifacts carry wall-clock noise by
//! design and are only checked for schema round-tripping here.

use utp_bench::experiments::{
    e10_service as e10, e11_durability as e11, e12_explore as e12, e13_fleet as e13,
    e2_session_breakdown as e2, e4_server_throughput as e4, e8_amortized as e8,
};
use utp_obs::{Artifact, ArtifactPair};

/// Asserts the canonical artifact is byte-identical across two runs
/// and that both halves of the pair survive a JSON round trip.
fn assert_deterministic(a: &ArtifactPair, b: &ArtifactPair) {
    assert!(
        !a.canonical.metrics.is_empty(),
        "{}: canonical artifact must not be empty",
        a.canonical.experiment
    );
    assert_eq!(
        a.canonical.to_json(),
        b.canonical.to_json(),
        "{}: canonical artifact drifted between identical runs",
        a.canonical.experiment
    );
    for artifact in [&a.canonical, &a.host] {
        let parsed = Artifact::from_json(&artifact.to_json()).expect("round trip parses");
        assert_eq!(
            parsed.to_json(),
            artifact.to_json(),
            "{}: re-serialization not byte-equal",
            artifact.experiment
        );
    }
}

#[test]
fn e2_canonical_artifact_is_byte_identical() {
    let config = "key_bits=512";
    let a = e2::artifacts(&e2::run(512), config);
    let b = e2::artifacts(&e2::run(512), config);
    assert_deterministic(&a, &b);
}

#[test]
fn e4_canonical_artifact_is_byte_identical() {
    let config = "jobs=16 key_bits=512 threads=1,2";
    let a = e4::artifacts(&e4::run(16, 512, &[1, 2]), config);
    let b = e4::artifacts(&e4::run(16, 512, &[1, 2]), config);
    assert_deterministic(&a, &b);
    assert!(
        !a.host.metrics.is_empty(),
        "E4's elapsed/ops metrics are host-class"
    );
}

#[test]
fn e8_canonical_artifact_is_byte_identical() {
    let config = "key_bits=512";
    let a = e8::artifacts(&e8::run(512), config);
    let b = e8::artifacts(&e8::run(512), config);
    assert_deterministic(&a, &b);
}

#[test]
fn e10_canonical_artifact_is_byte_identical() {
    let config = "jobs=16 key_bits=512 threads=1,2 shards=1,2";
    let a = e10::artifacts(&e10::run(16, 512, &[1, 2], &[1, 2]), config);
    let b = e10::artifacts(&e10::run(16, 512, &[1, 2], &[1, 2]), config);
    assert_deterministic(&a, &b);
    assert!(
        !a.host.metrics.is_empty(),
        "E10's latency distributions are host-class"
    );
}

#[test]
fn e11_canonical_artifact_is_byte_identical() {
    let config = "records=128 batches=1,16 logs=128";
    let a = e11::artifacts(&e11::run(128, &[1, 16], &[128]), config);
    let b = e11::artifacts(&e11::run(128, &[1, 16], &[128]), config);
    assert_deterministic(&a, &b);
    assert!(
        a.host.metrics.is_empty(),
        "E11 is fully virtual: no host metrics"
    );
}

#[test]
fn e12_canonical_artifact_is_byte_identical() {
    let config = "depths=1 max_states=500 seed=7 orders=2";
    let a = e12::artifacts(&e12::run(&[1], 500), config);
    let b = e12::artifacts(&e12::run(&[1], 500), config);
    assert_deterministic(&a, &b);
}

#[test]
fn e13_canonical_artifact_is_byte_identical() {
    let config = "fleets=2000 loads=80,400 cmp=3000@400 storm=400/20 seed=13";
    let small = || e13::run(&[2_000], &[80, 400], 3_000, &[400], 400, 20);
    let a = e13::artifacts(&small(), config);
    let b = e13::artifacts(&small(), config);
    assert_deterministic(&a, &b);
    assert!(
        !a.host.metrics.is_empty(),
        "E13's simulation rates are host-class"
    );
}
