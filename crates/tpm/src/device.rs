//! The TPM device: state machine tying PCRs, keys, sealed storage,
//! counters, NV and the latency model together.

use crate::counter::CounterBank;
use crate::error::TpmError;
use crate::keys::{KeyStore, KeyUsage};
use crate::locality::Locality;
use crate::nvram::NvStore;
use crate::pcr::{PcrBank, PcrIndex, PcrSelection};
use crate::quote::{quote_info_bytes, Quote};
use crate::seal::{blob_mac, check_blob, keystream_xor, SealedBlob};
use crate::timing::{cost, TpmOp, VendorProfile};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::time::Duration;
use utp_crypto::sha1::{Sha1, Sha1Digest};

/// Configuration for instantiating a [`Tpm`].
#[derive(Clone)]
pub struct TpmConfig {
    /// Which vendor's latency profile to model.
    pub vendor: VendorProfile,
    /// RSA key size for EK/SRK/AIKs, in bits.
    pub key_bits: usize,
    /// Seed for this TPM's unique identity and RNG.
    pub seed: u64,
    /// Fault-injection rate: probability in `[0, 1]` that any command
    /// fails with a transient `TPM_FAIL` (models flaky LPC buses and
    /// firmware hiccups; used by the failure-injection tests).
    pub fault_rate: f64,
}

// Redacting Debug: the seed derives this TPM's unique keys and RNG
// stream, so it must not reach logs.
impl std::fmt::Debug for TpmConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TpmConfig")
            .field("vendor", &self.vendor)
            .field("key_bits", &self.key_bits)
            .field("seed", &"<redacted>")
            .field("fault_rate", &self.fault_rate)
            .finish()
    }
}

impl TpmConfig {
    /// Realistic configuration: 1024-bit keys (a compromise between the
    /// paper's 2048-bit AIKs and from-scratch-bignum speed; documented in
    /// DESIGN.md) on the given vendor's chip.
    pub fn realistic(vendor: VendorProfile, seed: u64) -> Self {
        TpmConfig {
            vendor,
            key_bits: 1024,
            seed,
            fault_rate: 0.0,
        }
    }

    /// Fast configuration for unit tests: 512-bit keys, zero latency.
    pub fn fast_for_tests(seed: u64) -> Self {
        TpmConfig {
            vendor: VendorProfile::Instant,
            key_bits: 512,
            seed,
            fault_rate: 0.0,
        }
    }

    /// Returns this configuration with the given fault-injection rate.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is in `[0, 1]`.
    pub fn with_fault_rate(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "fault rate {} not in [0,1]",
            rate
        );
        self.fault_rate = rate;
        self
    }
}

/// Capacity of the device's bounded per-command journal (records).
pub const OP_JOURNAL_CAPACITY: usize = 4096;

/// One executed command, as held by the device's bounded op journal.
///
/// This is plain operational data (command class, sizes, modeled cost) —
/// no payload bytes and no key material — so draining it into the trace
/// layer cannot leak chip secrets. The journal lives *inside* the device
/// model precisely so the TCB never has to call out to a recorder: the
/// untrusted harness pulls records after the fact via
/// [`Tpm::take_op_journal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpmOpRecord {
    /// Command class.
    pub op: TpmOp,
    /// Payload length in bytes.
    pub payload: usize,
    /// Modeled latency charged for this command.
    pub cost: Duration,
    /// The chip's accumulated busy time *before* this command — the
    /// command's start offset on the TPM's own time axis.
    pub at_busy: Duration,
}

/// A software TPM 1.2.
///
/// Every mutating entry point takes the caller's [`Locality`]; the bus
/// (platform crate) is responsible for asserting the true locality, exactly
/// as the LPC bus does in hardware. The accumulated modeled latency of all
/// commands executed so far is available from [`Tpm::busy_time`].
pub struct Tpm {
    config: TpmConfig,
    started: bool,
    pcrs: PcrBank,
    keys: KeyStore,
    counters: CounterBank,
    nv: NvStore,
    rng: StdRng,
    /// Secret never leaves the chip; keys sealed-blob confidentiality.
    internal_secret: [u8; 32],
    busy: Duration,
    /// Bounded drop-oldest journal of executed commands.
    op_journal: std::collections::VecDeque<TpmOpRecord>,
    /// Journal records evicted by overflow since power-on.
    op_journal_dropped: u64,
    /// Set while the locality-4 DRTM hash sequence is in progress.
    drtm_in_progress: Option<Sha1>,
    commands_executed: u64,
    /// Owner usage secret (None until `take_ownership`).
    pub(crate) owner_auth: Option<Sha1Digest>,
    /// SRK usage secret (None until `take_ownership`).
    pub(crate) srk_auth: Option<Sha1Digest>,
    /// Live OIAP sessions.
    pub(crate) auth_sessions: crate::auth::AuthSessions,
}

// Redacting Debug: the internal secret, auth secrets and key store never
// leave the chip; only operational state is printed.
impl std::fmt::Debug for Tpm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tpm")
            .field("config", &self.config)
            .field("started", &self.started)
            .field("pcrs", &self.pcrs)
            .field("busy", &self.busy)
            .field("commands_executed", &self.commands_executed)
            .field("secrets", &"<redacted>")
            .finish_non_exhaustive()
    }
}

impl Tpm {
    /// Builds a powered-on but not-yet-started TPM.
    pub fn new(config: TpmConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x7470_6d21);
        let mut internal_secret = [0u8; 32];
        rng.fill_bytes(&mut internal_secret);
        let keys = KeyStore::factory(config.key_bits, config.seed);
        Tpm {
            config,
            started: false,
            pcrs: PcrBank::at_startup(),
            keys,
            counters: CounterBank::new(),
            nv: NvStore::new(),
            rng,
            internal_secret,
            busy: Duration::ZERO,
            op_journal: std::collections::VecDeque::new(),
            op_journal_dropped: 0,
            drtm_in_progress: None,
            commands_executed: 0,
            owner_auth: None,
            srk_auth: None,
            auth_sessions: crate::auth::AuthSessions::new(),
        }
    }

    /// `TPM_Startup(ST_CLEAR)`: resets PCRs to their boot values.
    pub fn startup_clear(&mut self) {
        self.pcrs = PcrBank::at_startup();
        self.started = true;
        self.drtm_in_progress = None;
    }

    /// Total modeled time this chip has spent executing commands.
    pub fn busy_time(&self) -> Duration {
        self.busy
    }

    /// Number of commands executed since power-on.
    pub fn commands_executed(&self) -> u64 {
        self.commands_executed
    }

    /// The modeled vendor.
    pub fn vendor(&self) -> VendorProfile {
        self.config.vendor
    }

    /// Key size in bits for keys generated by this TPM.
    pub fn key_bits(&self) -> usize {
        self.config.key_bits
    }

    fn charge(&mut self, op: TpmOp, payload: usize) -> Result<(), TpmError> {
        let d = cost(self.config.vendor, op, payload);
        if self.op_journal.len() == OP_JOURNAL_CAPACITY {
            self.op_journal.pop_front();
            self.op_journal_dropped += 1;
        }
        self.op_journal.push_back(TpmOpRecord {
            op,
            payload,
            cost: d,
            at_busy: self.busy,
        });
        self.busy += d;
        self.commands_executed += 1;
        if self.config.fault_rate > 0.0 && self.rng.gen::<f64>() < self.config.fault_rate {
            return Err(TpmError::Crypto("injected transient fault".into()));
        }
        Ok(())
    }

    /// Drains the per-command journal, oldest first. Faulted commands
    /// appear too — they still consumed chip time.
    pub fn take_op_journal(&mut self) -> Vec<TpmOpRecord> {
        self.op_journal.drain(..).collect()
    }

    /// Journal records lost to overflow since power-on (the journal is
    /// bounded at [`OP_JOURNAL_CAPACITY`]; drain it between sessions to
    /// keep this at zero).
    pub fn op_journal_dropped(&self) -> u64 {
        self.op_journal_dropped
    }

    /// Key-store access for the wrapped-key module.
    pub(crate) fn keys_mut(&mut self) -> &mut crate::keys::KeyStore {
        &mut self.keys
    }

    /// Public-in-crate startup check for the auth module.
    pub(crate) fn ensure_started_pub(&self) -> Result<(), TpmError> {
        self.ensure_started()
    }

    fn ensure_started(&self) -> Result<(), TpmError> {
        if self.started {
            Ok(())
        } else {
            Err(TpmError::NotStarted)
        }
    }

    // ----- PCR operations -------------------------------------------------

    /// `TPM_PCRRead`.
    pub fn pcr_read(&mut self, index: PcrIndex) -> Result<Sha1Digest, TpmError> {
        self.ensure_started()?;
        self.charge(TpmOp::PcrRead, 0)?;
        Ok(self.pcrs.read(index))
    }

    /// `TPM_Extend`.
    pub fn extend(
        &mut self,
        locality: Locality,
        index: PcrIndex,
        input: &[u8],
    ) -> Result<Sha1Digest, TpmError> {
        self.ensure_started()?;
        self.charge(TpmOp::Extend, input.len())?;
        self.pcrs.extend(locality, index, input)
    }

    /// `TPM_PCR_Reset`: resets a resettable PCR subject to locality policy
    /// (PCR 17 needs locality 4; PCRs 18–22 need locality ≥ 2 — the rule
    /// Intel TXT's SINIT relies on to reset PCR 18 before measuring the
    /// MLE).
    pub fn pcr_reset(&mut self, locality: Locality, index: PcrIndex) -> Result<(), TpmError> {
        self.ensure_started()?;
        self.charge(TpmOp::Extend, 0)?;
        self.pcrs.reset(locality, index)
    }

    /// Snapshot of current PCR values for a selection (no latency charge;
    /// used internally and by the platform for debugging).
    pub fn pcr_values(&self, selection: &PcrSelection) -> Vec<Sha1Digest> {
        selection.iter().map(|i| self.pcrs.read(i)).collect()
    }

    // ----- DRTM (SKINIT-driven) hash sequence ------------------------------

    /// `TPM_HASH_START` — only the CPU microcode (locality 4) issues this.
    /// Resets PCR 17 and opens the measurement stream.
    pub fn hash_start(&mut self, locality: Locality) -> Result<(), TpmError> {
        self.ensure_started()?;
        if locality != Locality::Four {
            return Err(TpmError::BadLocality {
                got: locality.as_u8(),
                required: 4,
            });
        }
        self.pcrs.reset(Locality::Four, PcrIndex::drtm())?;
        self.drtm_in_progress = Some(Sha1::new());
        Ok(())
    }

    /// `TPM_HASH_DATA` — streams the secure loader block bytes.
    pub fn hash_data(&mut self, locality: Locality, data: &[u8]) -> Result<(), TpmError> {
        if locality != Locality::Four {
            return Err(TpmError::BadLocality {
                got: locality.as_u8(),
                required: 4,
            });
        }
        self.charge(TpmOp::DrtmHash, data.len())?;
        match self.drtm_in_progress.as_mut() {
            Some(ctx) => {
                ctx.update(data);
                Ok(())
            }
            None => Err(TpmError::BadCommand("HASH_DATA without HASH_START".into())),
        }
    }

    /// `TPM_HASH_END` — closes the stream and extends PCR 17 with the SLB
    /// measurement. Returns the measurement for the platform's bookkeeping.
    pub fn hash_end(&mut self, locality: Locality) -> Result<Sha1Digest, TpmError> {
        if locality != Locality::Four {
            return Err(TpmError::BadLocality {
                got: locality.as_u8(),
                required: 4,
            });
        }
        let ctx = self
            .drtm_in_progress
            .take()
            .ok_or_else(|| TpmError::BadCommand("HASH_END without HASH_START".into()))?;
        let measurement = ctx.finalize();
        self.charge(TpmOp::Extend, 20)?;
        self.pcrs
            .extend(Locality::Four, PcrIndex::drtm(), measurement.as_bytes())?;
        Ok(measurement)
    }

    // ----- Attestation ------------------------------------------------------

    /// Creates a new AIK; returns its handle. (The privacy-CA protocol that
    /// certifies it lives in `utp-server`.)
    pub fn make_identity(&mut self) -> u32 {
        let seed = self.rng.gen();
        self.keys.make_identity(self.config.key_bits, seed)
    }

    /// Public half of a loaded key.
    pub fn read_pubkey(&self, handle: u32) -> Result<utp_crypto::rsa::RsaPublicKey, TpmError> {
        Ok(self.keys.public(handle)?.clone())
    }

    /// `TPM_Quote`: signs the selected PCRs plus `external_data` with the
    /// AIK at `aik_handle`.
    ///
    /// # Errors
    ///
    /// Fails if the handle is not an identity key or the selection is
    /// empty.
    pub fn quote(
        &mut self,
        aik_handle: u32,
        selection: PcrSelection,
        external_data: Sha1Digest,
    ) -> Result<Quote, TpmError> {
        self.ensure_started()?;
        if selection.is_empty() {
            return Err(TpmError::BadCommand("empty pcr selection".into()));
        }
        self.charge(TpmOp::Quote, 20)?;
        let slot = self.keys.expect_usage(aik_handle, KeyUsage::Identity)?;
        let pcr_values = self.pcr_values(&selection);
        let composite = crate::pcr::composite_digest_from_values(&selection, &pcr_values);
        let info = quote_info_bytes(&composite, &external_data);
        let signature = slot
            .keypair
            .sign_pkcs1_sha1(&info)
            .map_err(|e| TpmError::Crypto(e.to_string()))?;
        Ok(Quote {
            selection,
            pcr_values,
            external_data,
            signature,
        })
    }

    // ----- Sealed storage ----------------------------------------------------

    /// `TPM_Seal`: seals `payload` so it can be unsealed only when the
    /// selected PCRs hold `required_values` (pass the *current* values to
    /// bind to the present state).
    pub fn seal(
        &mut self,
        key_handle: u32,
        selection: PcrSelection,
        required_values: &[Sha1Digest],
        payload: &[u8],
    ) -> Result<SealedBlob, TpmError> {
        self.ensure_started()?;
        self.keys.expect_usage(key_handle, KeyUsage::Storage)?;
        if selection.len() != required_values.len() {
            return Err(TpmError::BadCommand(
                "selection/value arity mismatch".into(),
            ));
        }
        self.charge(TpmOp::Seal, payload.len())?;
        let digest_at_release =
            crate::pcr::composite_digest_from_values(&selection, required_values);
        let digest_at_creation = self.pcrs.composite_digest(&selection);
        let mut iv = [0u8; 16];
        self.rng.fill_bytes(&mut iv);
        let ciphertext = keystream_xor(&self.internal_secret, &iv, payload);
        let mut blob = SealedBlob {
            selection,
            digest_at_release,
            digest_at_creation,
            iv,
            ciphertext,
            mac: [0u8; 32],
        };
        blob.mac = blob_mac(&self.internal_secret, &blob);
        Ok(blob)
    }

    /// Convenience: seal to the PCRs' *current* values.
    pub fn seal_to_current(
        &mut self,
        key_handle: u32,
        selection: PcrSelection,
        payload: &[u8],
    ) -> Result<SealedBlob, TpmError> {
        let current = self.pcr_values(&selection);
        self.seal(key_handle, selection, &current, payload)
    }

    /// `TPM_Unseal`: recovers the payload if this is the sealing TPM and
    /// the PCRs currently match the blob's release policy.
    pub fn unseal(&mut self, key_handle: u32, blob: &SealedBlob) -> Result<Vec<u8>, TpmError> {
        self.ensure_started()?;
        self.keys.expect_usage(key_handle, KeyUsage::Storage)?;
        self.charge(TpmOp::Unseal, blob.ciphertext.len())?;
        check_blob(&self.internal_secret, blob)?;
        let current = self.pcrs.composite_digest(&blob.selection);
        if !utp_crypto::ct::ct_eq(current.as_bytes(), blob.digest_at_release.as_bytes()) {
            return Err(TpmError::WrongPcrValue);
        }
        Ok(keystream_xor(
            &self.internal_secret,
            &blob.iv,
            &blob.ciphertext,
        ))
    }

    // ----- Randomness, counters, NV -------------------------------------------

    /// `TPM_GetRandom`.
    pub fn get_random(&mut self, len: usize) -> Result<Vec<u8>, TpmError> {
        self.ensure_started()?;
        self.charge(TpmOp::GetRandom, len)?;
        let mut out = vec![0u8; len];
        self.rng.fill_bytes(&mut out);
        Ok(out)
    }

    /// `TPM_CreateCounter`.
    pub fn create_counter(&mut self) -> Result<u32, TpmError> {
        self.ensure_started()?;
        self.charge(TpmOp::CounterIncrement, 0)?;
        Ok(self.counters.create())
    }

    /// `TPM_ReadCounter`.
    pub fn read_counter(&mut self, handle: u32) -> Result<u64, TpmError> {
        self.ensure_started()?;
        self.charge(TpmOp::PcrRead, 0)?;
        self.counters.read(handle)
    }

    /// `TPM_IncrementCounter`.
    pub fn increment_counter(&mut self, handle: u32) -> Result<u64, TpmError> {
        self.ensure_started()?;
        self.charge(TpmOp::CounterIncrement, 0)?;
        self.counters.increment(handle)
    }

    /// `TPM_NV_DefineSpace`.
    pub fn nv_define(&mut self, index: u32, size: usize, write_locality_min: u8) {
        self.nv.define(index, size, write_locality_min);
    }

    /// `TPM_NV_ReadValue`.
    pub fn nv_read(&mut self, index: u32, offset: usize, len: usize) -> Result<Vec<u8>, TpmError> {
        self.ensure_started()?;
        self.charge(TpmOp::NvAccess, len)?;
        self.nv.read(index, offset, len)
    }

    /// `TPM_NV_WriteValue`.
    pub fn nv_write(
        &mut self,
        locality: Locality,
        index: u32,
        offset: usize,
        data: &[u8],
    ) -> Result<(), TpmError> {
        self.ensure_started()?;
        self.charge(TpmOp::NvAccess, data.len())?;
        self.nv.write(locality, index, offset, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::SRK_HANDLE;

    fn tpm() -> Tpm {
        let mut t = Tpm::new(TpmConfig::fast_for_tests(7));
        t.startup_clear();
        t
    }

    fn p(i: u32) -> PcrIndex {
        PcrIndex::new(i).unwrap()
    }

    #[test]
    fn commands_fail_before_startup() {
        let mut t = Tpm::new(TpmConfig::fast_for_tests(7));
        assert!(matches!(
            t.pcr_read(p(0)).unwrap_err(),
            TpmError::NotStarted
        ));
        assert!(matches!(t.get_random(8).unwrap_err(), TpmError::NotStarted));
    }

    #[test]
    fn drtm_sequence_resets_and_measures() {
        let mut t = tpm();
        assert_eq!(t.pcr_read(p(17)).unwrap(), Sha1Digest::ones());
        t.hash_start(Locality::Four).unwrap();
        t.hash_data(Locality::Four, b"secure loader block").unwrap();
        let m = t.hash_end(Locality::Four).unwrap();
        assert_eq!(m, Sha1::digest(b"secure loader block"));
        let expected = Sha1::digest_concat(Sha1Digest::zero().as_bytes(), m.as_bytes());
        assert_eq!(t.pcr_read(p(17)).unwrap(), expected);
    }

    #[test]
    fn drtm_requires_locality_four() {
        let mut t = tpm();
        for l in [Locality::Zero, Locality::Two, Locality::Three] {
            assert!(t.hash_start(l).is_err());
        }
        t.hash_start(Locality::Four).unwrap();
        assert!(t.hash_data(Locality::Two, b"x").is_err());
        assert!(t.hash_end(Locality::Zero).is_err());
    }

    #[test]
    fn drtm_data_without_start_is_rejected() {
        let mut t = tpm();
        assert!(t.hash_data(Locality::Four, b"x").is_err());
        assert!(t.hash_end(Locality::Four).is_err());
    }

    #[test]
    fn quote_verifies_under_aik_pubkey() {
        let mut t = tpm();
        let aik = t.make_identity();
        let nonce = Sha1::digest(b"server nonce");
        let q = t.quote(aik, PcrSelection::drtm_only(), nonce).unwrap();
        let pk = t.read_pubkey(aik).unwrap();
        assert!(q.verify(&pk, &nonce));
        assert!(!q.verify(&pk, &Sha1::digest(b"other nonce")));
    }

    #[test]
    fn quote_reflects_pcr_state_changes() {
        let mut t = tpm();
        let aik = t.make_identity();
        let nonce = Sha1Digest::zero();
        let q1 = t.quote(aik, PcrSelection::drtm_only(), nonce).unwrap();
        // A DRTM launch changes PCR17, so a new quote must differ.
        t.hash_start(Locality::Four).unwrap();
        t.hash_data(Locality::Four, b"pal").unwrap();
        t.hash_end(Locality::Four).unwrap();
        let q2 = t.quote(aik, PcrSelection::drtm_only(), nonce).unwrap();
        assert_ne!(q1.pcr_values, q2.pcr_values);
        assert_ne!(q1.signature, q2.signature);
    }

    #[test]
    fn quote_tampered_pcr_values_fail_verification() {
        let mut t = tpm();
        let aik = t.make_identity();
        let nonce = Sha1Digest::zero();
        let mut q = t.quote(aik, PcrSelection::drtm_only(), nonce).unwrap();
        q.pcr_values[0] = Sha1::digest(b"forged");
        let pk = t.read_pubkey(aik).unwrap();
        assert!(!q.verify(&pk, &nonce));
    }

    #[test]
    fn quote_requires_identity_key() {
        let mut t = tpm();
        let err = t
            .quote(SRK_HANDLE, PcrSelection::drtm_only(), Sha1Digest::zero())
            .unwrap_err();
        assert!(matches!(err, TpmError::BadKeyHandle(_)));
    }

    #[test]
    fn quote_rejects_empty_selection() {
        let mut t = tpm();
        let aik = t.make_identity();
        assert!(t
            .quote(aik, PcrSelection::empty(), Sha1Digest::zero())
            .is_err());
    }

    #[test]
    fn seal_unseal_roundtrip_when_pcrs_match() {
        let mut t = tpm();
        let sel = PcrSelection::of(&[p(0)]);
        let blob = t.seal_to_current(SRK_HANDLE, sel, b"secret state").unwrap();
        assert_eq!(t.unseal(SRK_HANDLE, &blob).unwrap(), b"secret state");
    }

    #[test]
    fn unseal_fails_after_pcr_change() {
        let mut t = tpm();
        let sel = PcrSelection::of(&[p(0)]);
        let blob = t.seal_to_current(SRK_HANDLE, sel, b"secret").unwrap();
        t.extend(Locality::Zero, p(0), &[1u8; 20]).unwrap();
        assert_eq!(
            t.unseal(SRK_HANDLE, &blob).unwrap_err(),
            TpmError::WrongPcrValue
        );
    }

    #[test]
    fn unseal_fails_on_other_tpm() {
        let mut t1 = tpm();
        let mut t2 = Tpm::new(TpmConfig::fast_for_tests(8));
        t2.startup_clear();
        let sel = PcrSelection::of(&[p(0)]);
        let blob = t1.seal_to_current(SRK_HANDLE, sel, b"secret").unwrap();
        assert_eq!(t2.unseal(SRK_HANDLE, &blob).unwrap_err(), TpmError::BadBlob);
    }

    #[test]
    fn unseal_detects_tampered_blob() {
        let mut t = tpm();
        let sel = PcrSelection::of(&[p(0)]);
        let mut blob = t.seal_to_current(SRK_HANDLE, sel, b"secret").unwrap();
        blob.ciphertext[0] ^= 0xFF;
        assert_eq!(t.unseal(SRK_HANDLE, &blob).unwrap_err(), TpmError::BadBlob);
    }

    #[test]
    fn seal_to_future_pcr_values() {
        // Seal data releasable only after a specific DRTM launch: the PAL
        // pattern for cross-session state.
        let mut t = tpm();
        let pal = b"pal code";
        let m = Sha1::digest(pal);
        let after_launch = Sha1::digest_concat(Sha1Digest::zero().as_bytes(), m.as_bytes());
        let sel = PcrSelection::drtm_only();
        let blob = t
            .seal(SRK_HANDLE, sel, &[after_launch], b"for the PAL only")
            .unwrap();
        // Before launch: PCR17 is all-ones, unseal fails.
        assert_eq!(
            t.unseal(SRK_HANDLE, &blob).unwrap_err(),
            TpmError::WrongPcrValue
        );
        // Launch the PAL.
        t.hash_start(Locality::Four).unwrap();
        t.hash_data(Locality::Four, pal).unwrap();
        t.hash_end(Locality::Four).unwrap();
        assert_eq!(t.unseal(SRK_HANDLE, &blob).unwrap(), b"for the PAL only");
    }

    #[test]
    fn get_random_is_deterministic_per_seed_but_nonrepeating() {
        let mut a = tpm();
        let mut b = {
            let mut t = Tpm::new(TpmConfig::fast_for_tests(7));
            t.startup_clear();
            t
        };
        let ra1 = a.get_random(16).unwrap();
        let rb1 = b.get_random(16).unwrap();
        assert_eq!(ra1, rb1); // same seed, same stream
        let ra2 = a.get_random(16).unwrap();
        assert_ne!(ra1, ra2); // stream advances
    }

    #[test]
    fn counters_and_nv_work_through_device() {
        let mut t = tpm();
        let c = t.create_counter().unwrap();
        assert_eq!(t.increment_counter(c).unwrap(), 1);
        assert_eq!(t.read_counter(c).unwrap(), 1);
        t.nv_define(0x11, 16, 0);
        t.nv_write(Locality::Zero, 0x11, 0, b"cert").unwrap();
        assert_eq!(t.nv_read(0x11, 0, 4).unwrap(), b"cert");
    }

    #[test]
    fn op_journal_records_commands_in_order() {
        let mut t = Tpm::new(TpmConfig {
            vendor: VendorProfile::Infineon,
            key_bits: 512,
            seed: 3,
            fault_rate: 0.0,
        });
        t.startup_clear();
        t.pcr_read(p(0)).unwrap();
        t.extend(Locality::Zero, p(0), &[1u8; 20]).unwrap();
        assert_eq!(t.op_journal_dropped(), 0);
        let journal = t.take_op_journal();
        assert_eq!(journal.len(), 2);
        assert_eq!(journal[0].op, TpmOp::PcrRead);
        assert_eq!(journal[0].at_busy, Duration::ZERO);
        assert_eq!(journal[1].op, TpmOp::Extend);
        assert_eq!(journal[1].payload, 20);
        assert_eq!(journal[1].at_busy, journal[0].cost);
        assert!(t.take_op_journal().is_empty(), "drain empties the journal");
    }

    #[test]
    fn op_journal_overflow_drops_oldest() {
        let mut t = tpm();
        for _ in 0..OP_JOURNAL_CAPACITY + 3 {
            t.pcr_read(p(0)).unwrap();
        }
        assert_eq!(t.op_journal_dropped(), 3);
        assert_eq!(t.take_op_journal().len(), OP_JOURNAL_CAPACITY);
    }

    #[test]
    fn busy_time_accumulates_on_real_profiles() {
        let mut t = Tpm::new(TpmConfig {
            vendor: VendorProfile::Infineon,
            key_bits: 512,
            seed: 1,
            fault_rate: 0.0,
        });
        t.startup_clear();
        assert_eq!(t.busy_time(), Duration::ZERO);
        let aik = t.make_identity();
        let before = t.busy_time();
        t.quote(aik, PcrSelection::drtm_only(), Sha1Digest::zero())
            .unwrap();
        let delta = t.busy_time() - before;
        assert!(
            delta >= Duration::from_millis(300),
            "quote cost {:?}",
            delta
        );
        assert!(t.commands_executed() > 0);
    }
}
