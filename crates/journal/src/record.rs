//! WAL frame format and typed journal records.
//!
//! On-media layout of one frame:
//!
//! ```text
//! [magic 0xA5] [len: u32 LE] [crc32: u32 LE] [body: len bytes]
//! body = [seq: u64 BE] [kind: u8] [payload]
//! ```
//!
//! The CRC covers the body only; `len` is the body length. Scanning is
//! fail-closed: the first frame whose header is torn, whose magic is
//! wrong, whose checksum mismatches, or whose body does not decode as a
//! known record ends the valid prefix — everything after it is treated
//! as crash garbage, never partially applied.

use std::time::Duration;

use utp_core::protocol::{TransactionRequest, Verdict};
use utp_core::verifier::VerifyError;
use utp_flicker::marshal::{put_bytes, put_u64, Reader};

/// First byte of every frame; makes zero-fill and text garbage
/// unambiguous at scan time.
pub const FRAME_MAGIC: u8 = 0xA5;

/// Fixed header size: magic + len + crc.
pub const FRAME_HEADER_LEN: usize = 1 + 4 + 4;

/// Sentinel `order_id` for settle decisions not tied to a store order
/// (e.g. evidence submitted straight to the service).
pub const NO_ORDER: u64 = u64::MAX;

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3, reflected) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Outcome of one settle decision, as recorded in the journal. Wire
/// codes are part of the on-media format; unknown future
/// [`VerifyError`] variants (`#[non_exhaustive]`) are recorded as
/// [`VerifyError::ServiceUnavailable`] — retryable, so durably safe.
pub(crate) fn encode_outcome(buf: &mut Vec<u8>, outcome: &Result<(), VerifyError>) {
    match outcome {
        Ok(()) => buf.push(0),
        Err(VerifyError::NotConfirmed(v)) => {
            buf.push(1);
            buf.push(match v {
                Verdict::Confirmed => 1,
                Verdict::Rejected => 2,
                Verdict::Timeout => 3,
            });
        }
        Err(VerifyError::Replayed) => buf.push(3),
        Err(VerifyError::Expired) => buf.push(4),
        Err(VerifyError::UntrustedPal) => buf.push(5),
        Err(VerifyError::BadQuote) => buf.push(6),
        Err(VerifyError::TokenMismatch) => buf.push(7),
        Err(VerifyError::BadCertificate) => buf.push(8),
        Err(VerifyError::UnknownNonce) => buf.push(9),
        Err(VerifyError::MalformedEvidence) => buf.push(10),
        Err(VerifyError::ServiceUnavailable) => buf.push(11),
        // VerifyError is #[non_exhaustive]; map unknown variants to the
        // retryable code so recovery fails closed.
        Err(_) => buf.push(11),
    }
}

pub(crate) fn decode_outcome(r: &mut Reader<'_>) -> Option<Result<(), VerifyError>> {
    let code = *r.take(1).ok()?.first()?;
    Some(match code {
        0 => Ok(()),
        1 => {
            let v = match *r.take(1).ok()?.first()? {
                1 => Verdict::Confirmed,
                2 => Verdict::Rejected,
                3 => Verdict::Timeout,
                _ => return None,
            };
            Err(VerifyError::NotConfirmed(v))
        }
        3 => Err(VerifyError::Replayed),
        4 => Err(VerifyError::Expired),
        5 => Err(VerifyError::UntrustedPal),
        6 => Err(VerifyError::BadQuote),
        7 => Err(VerifyError::TokenMismatch),
        8 => Err(VerifyError::BadCertificate),
        9 => Err(VerifyError::UnknownNonce),
        10 => Err(VerifyError::MalformedEvidence),
        11 => Err(VerifyError::ServiceUnavailable),
        _ => return None,
    })
}

/// One typed WAL record. Everything the settlement path must not forget
/// across a crash is expressed as one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// An account was opened with an initial balance (cents, signed —
    /// encoded as two's-complement u64).
    OpenAccount {
        /// Account name.
        name: String,
        /// Opening balance in cents.
        balance_cents: i64,
    },
    /// An order was created and its challenge issued. `request_bytes`
    /// is the canonical [`TransactionRequest`] encoding; it binds the
    /// nonce (and transaction) to the order, so recovery can rebuild
    /// the pending side of the nonce ledger.
    CreateOrder {
        /// Store order id.
        order_id: u64,
        /// Account the order debits.
        account: String,
        /// Virtual time the challenge was issued.
        issued_at: Duration,
        /// Canonical bytes of the issued [`TransactionRequest`].
        request_bytes: Vec<u8>,
    },
    /// A settle decision: the verifier consumed (or rejected) evidence
    /// for `nonce`. This is the record written ahead of the ack.
    Settle {
        /// Store order id, or [`NO_ORDER`] if untracked.
        order_id: u64,
        /// The nonce the evidence settled against.
        nonce: [u8; 20],
        /// Virtual time of the decision.
        at: Duration,
        /// The decision itself.
        outcome: Result<(), VerifyError>,
    },
}

const KIND_OPEN_ACCOUNT: u8 = 1;
const KIND_CREATE_ORDER: u8 = 2;
const KIND_SETTLE: u8 = 3;

impl JournalRecord {
    /// Encodes the record body (kind byte + payload, no seq/frame).
    fn encode_payload(&self, buf: &mut Vec<u8>) {
        match self {
            JournalRecord::OpenAccount {
                name,
                balance_cents,
            } => {
                buf.push(KIND_OPEN_ACCOUNT);
                put_bytes(buf, name.as_bytes());
                put_u64(buf, *balance_cents as u64);
            }
            JournalRecord::CreateOrder {
                order_id,
                account,
                issued_at,
                request_bytes,
            } => {
                buf.push(KIND_CREATE_ORDER);
                put_u64(buf, *order_id);
                put_bytes(buf, account.as_bytes());
                put_u64(buf, issued_at.as_nanos() as u64);
                put_bytes(buf, request_bytes);
            }
            JournalRecord::Settle {
                order_id,
                nonce,
                at,
                outcome,
            } => {
                buf.push(KIND_SETTLE);
                put_u64(buf, *order_id);
                buf.extend_from_slice(nonce);
                put_u64(buf, at.as_nanos() as u64);
                encode_outcome(buf, outcome);
            }
        }
    }

    /// Decodes a record body (after the seq field). Returns `None` on
    /// any malformation — the scanner treats that frame as garbage.
    fn decode_payload(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        let kind = *r.take(1).ok()?.first()?;
        let record = match kind {
            KIND_OPEN_ACCOUNT => {
                let name = String::from_utf8(r.bytes().ok()?.to_vec()).ok()?;
                let balance_cents = r.u64().ok()? as i64;
                JournalRecord::OpenAccount {
                    name,
                    balance_cents,
                }
            }
            KIND_CREATE_ORDER => {
                let order_id = r.u64().ok()?;
                let account = String::from_utf8(r.bytes().ok()?.to_vec()).ok()?;
                let issued_at = Duration::from_nanos(r.u64().ok()?);
                let request_bytes = r.bytes().ok()?.to_vec();
                // The request must parse: recovery re-derives the nonce
                // and transaction from it, so a record carrying garbage
                // request bytes is itself garbage.
                TransactionRequest::from_bytes(&request_bytes).ok()?;
                JournalRecord::CreateOrder {
                    order_id,
                    account,
                    issued_at,
                    request_bytes,
                }
            }
            KIND_SETTLE => {
                let order_id = r.u64().ok()?;
                let nonce: [u8; 20] = r.take(20).ok()?.try_into().ok()?;
                let at = Duration::from_nanos(r.u64().ok()?);
                let outcome = decode_outcome(&mut r)?;
                JournalRecord::Settle {
                    order_id,
                    nonce,
                    at,
                    outcome,
                }
            }
            _ => return None,
        };
        r.finish().ok()?;
        Some(record)
    }
}

/// A decoded frame: the record plus its sequence number and media span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Monotonic sequence number assigned at append time.
    pub seq: u64,
    /// The typed record.
    pub record: JournalRecord,
    /// Byte offset of the frame start on the media.
    pub offset: usize,
    /// Total encoded frame length (header + body).
    pub len: usize,
}

/// Encodes one frame (header + body) for `record` at `seq`.
pub fn encode_frame(seq: u64, record: &JournalRecord) -> Vec<u8> {
    let mut body = Vec::new();
    put_u64(&mut body, seq);
    record.encode_payload(&mut body);
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + body.len());
    frame.push(FRAME_MAGIC);
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&body).to_le_bytes());
    frame.extend_from_slice(&body);
    frame
}

/// Why a scan stopped where it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanEnd {
    /// The log ended exactly at a frame boundary.
    Clean,
    /// Fewer than [`FRAME_HEADER_LEN`] bytes remained — a torn header.
    TornHeader,
    /// The header promised more body bytes than remain — a torn body.
    TornBody,
    /// The next byte was not [`FRAME_MAGIC`].
    BadMagic,
    /// The body checksum did not match.
    BadChecksum,
    /// The checksum held but the body did not decode as a known record
    /// (format version skew or a colliding corruption).
    BadRecord,
}

/// Result of scanning a byte string for valid frames.
#[derive(Debug, Clone)]
pub struct Scan {
    /// The decoded valid prefix, in order.
    pub frames: Vec<Frame>,
    /// Bytes of the valid prefix; everything at and after this offset
    /// is crash garbage.
    pub valid_len: usize,
    /// Why the scan stopped.
    pub end: ScanEnd,
}

/// Scans `bytes` from the start, decoding frames until the first
/// malformation. Never panics; a torn or corrupt suffix simply ends the
/// valid prefix (fail-closed, prefix-consistent).
pub fn scan(bytes: &[u8]) -> Scan {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    let end = loop {
        if pos == bytes.len() {
            break ScanEnd::Clean;
        }
        if bytes.len() - pos < FRAME_HEADER_LEN {
            break ScanEnd::TornHeader;
        }
        if bytes[pos] != FRAME_MAGIC {
            break ScanEnd::BadMagic;
        }
        let len = u32::from_le_bytes([
            bytes[pos + 1],
            bytes[pos + 2],
            bytes[pos + 3],
            bytes[pos + 4],
        ]) as usize;
        let crc = u32::from_le_bytes([
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
            bytes[pos + 8],
        ]);
        let body_start = pos + FRAME_HEADER_LEN;
        if bytes.len() - body_start < len {
            break ScanEnd::TornBody;
        }
        let body = &bytes[body_start..body_start + len];
        if crc32(body) != crc {
            break ScanEnd::BadChecksum;
        }
        if body.len() < 8 {
            break ScanEnd::BadRecord;
        }
        let seq = u64::from_be_bytes([
            body[0], body[1], body[2], body[3], body[4], body[5], body[6], body[7],
        ]);
        let Some(record) = JournalRecord::decode_payload(&body[8..]) else {
            break ScanEnd::BadRecord;
        };
        frames.push(Frame {
            seq,
            record,
            offset: pos,
            len: FRAME_HEADER_LEN + len,
        });
        pos += FRAME_HEADER_LEN + len;
    };
    Scan {
        frames,
        valid_len: pos,
        end,
    }
}

/// Byte offsets of every frame boundary in `bytes` (including 0 and the
/// end), for crash-point sweeps.
pub fn frame_boundaries(bytes: &[u8]) -> Vec<usize> {
    let s = scan(bytes);
    let mut out = vec![0];
    for f in &s.frames {
        out.push(f.offset + f.len);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::OpenAccount {
                name: "alice".into(),
                balance_cents: -250,
            },
            JournalRecord::Settle {
                order_id: 7,
                nonce: [0x41; 20],
                at: Duration::from_millis(1500),
                outcome: Ok(()),
            },
            JournalRecord::Settle {
                order_id: NO_ORDER,
                nonce: [2; 20],
                at: Duration::from_secs(2),
                outcome: Err(VerifyError::NotConfirmed(Verdict::Timeout)),
            },
            JournalRecord::Settle {
                order_id: 1,
                nonce: [3; 20],
                at: Duration::ZERO,
                outcome: Err(VerifyError::Replayed),
            },
        ]
    }

    #[test]
    fn frames_roundtrip_through_scan() {
        let records = sample_records();
        let mut log = Vec::new();
        for (i, r) in records.iter().enumerate() {
            log.extend_from_slice(&encode_frame(i as u64 + 1, r));
        }
        let s = scan(&log);
        assert_eq!(s.end, ScanEnd::Clean);
        assert_eq!(s.valid_len, log.len());
        assert_eq!(s.frames.len(), records.len());
        for (i, f) in s.frames.iter().enumerate() {
            assert_eq!(f.seq, i as u64 + 1);
            assert_eq!(f.record, records[i]);
        }
    }

    #[test]
    fn all_outcome_codes_roundtrip() {
        let outcomes: Vec<Result<(), VerifyError>> = vec![
            Ok(()),
            Err(VerifyError::NotConfirmed(Verdict::Confirmed)),
            Err(VerifyError::NotConfirmed(Verdict::Rejected)),
            Err(VerifyError::NotConfirmed(Verdict::Timeout)),
            Err(VerifyError::Replayed),
            Err(VerifyError::Expired),
            Err(VerifyError::UntrustedPal),
            Err(VerifyError::BadQuote),
            Err(VerifyError::TokenMismatch),
            Err(VerifyError::BadCertificate),
            Err(VerifyError::UnknownNonce),
            Err(VerifyError::MalformedEvidence),
            Err(VerifyError::ServiceUnavailable),
        ];
        for outcome in outcomes {
            let rec = JournalRecord::Settle {
                order_id: 9,
                nonce: [7; 20],
                at: Duration::from_secs(1),
                outcome,
            };
            let frame = encode_frame(1, &rec);
            let s = scan(&frame);
            assert_eq!(s.frames.len(), 1, "{rec:?}");
            assert_eq!(s.frames[0].record, rec);
        }
    }

    #[test]
    fn truncation_at_every_length_is_prefix_consistent() {
        let records = sample_records();
        let mut log = Vec::new();
        let mut boundaries = vec![0usize];
        for (i, r) in records.iter().enumerate() {
            log.extend_from_slice(&encode_frame(i as u64 + 1, r));
            boundaries.push(log.len());
        }
        for cut in 0..=log.len() {
            let s = scan(&log[..cut]);
            // Valid prefix is the largest boundary <= cut.
            let expect_frames = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(s.frames.len(), expect_frames, "cut={cut}");
            assert_eq!(s.valid_len, boundaries[expect_frames], "cut={cut}");
            if cut == boundaries[expect_frames] {
                assert_eq!(s.end, ScanEnd::Clean);
            } else {
                assert_ne!(s.end, ScanEnd::Clean);
            }
        }
    }

    #[test]
    fn bit_flips_never_extend_the_valid_prefix_past_the_flip() {
        let records = sample_records();
        let mut log = Vec::new();
        for (i, r) in records.iter().enumerate() {
            log.extend_from_slice(&encode_frame(i as u64 + 1, r));
        }
        let clean = scan(&log);
        for byte in 0..log.len() {
            for bit in 0..8 {
                let mut corrupt = log.clone();
                corrupt[byte] ^= 1 << bit;
                let s = scan(&corrupt);
                // Every frame fully before the flipped byte must survive
                // unchanged; the flipped frame must not decode to a
                // different record (crc32 catches all 1-bit errors).
                let intact = clean
                    .frames
                    .iter()
                    .filter(|f| f.offset + f.len <= byte)
                    .count();
                assert!(s.frames.len() >= intact, "byte={byte} bit={bit}");
                for (a, b) in s.frames.iter().zip(clean.frames.iter()).take(intact) {
                    assert_eq!(a, b);
                }
                if let Some(f) = s.frames.get(intact) {
                    // A frame spanning the flip can only appear if the
                    // flip was outside it (impossible here) — so it must
                    // equal the original only when the flip missed it.
                    assert!(
                        f.offset + f.len <= byte || f == &clean.frames[intact],
                        "flip silently altered a frame: byte={byte} bit={bit}"
                    );
                }
            }
        }
    }

    #[test]
    fn length_lie_is_rejected() {
        let rec = sample_records().remove(1);
        let mut frame = encode_frame(1, &rec);
        // Lie: claim a huge body.
        frame[1..5].copy_from_slice(&u32::MAX.to_le_bytes());
        let s = scan(&frame);
        assert_eq!(s.frames.len(), 0);
        assert_eq!(s.end, ScanEnd::TornBody);
        // Lie small: claim a shorter body than written.
        let mut frame2 = encode_frame(1, &rec);
        let real_len = u32::from_le_bytes([frame2[1], frame2[2], frame2[3], frame2[4]]);
        frame2[1..5].copy_from_slice(&(real_len - 1).to_le_bytes());
        let s2 = scan(&frame2);
        assert_eq!(s2.frames.len(), 0, "short lie must fail the checksum");
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn frame_boundaries_enumerates_all_cuts() {
        let records = sample_records();
        let mut log = Vec::new();
        for (i, r) in records.iter().enumerate() {
            log.extend_from_slice(&encode_frame(i as u64 + 1, r));
        }
        let b = frame_boundaries(&log);
        assert_eq!(b.len(), records.len() + 1);
        assert_eq!(b[0], 0);
        assert_eq!(*b.last().unwrap(), log.len());
    }
}
