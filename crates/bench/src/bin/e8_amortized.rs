//! Prints the E8 ablation table (quote vs amortized MAC confirmation)
//! and drops the run's perf artifacts under `target/bench/`.
use utp_bench::experiments::e8_amortized as e8;

fn main() {
    let rows = e8::run(1024);
    println!("{}", e8::render(&rows));
    utp_bench::emit_artifacts(&e8::artifacts(&rows, "key_bits=1024"));
}
