//! Prints the E5 table (attack success rates by defense).
use utp_bench::experiments::e5_attacks as e5;

fn main() {
    let rows = e5::run(1000, 25);
    println!("{}", e5::render(&rows));
}
