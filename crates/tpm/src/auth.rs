//! TPM 1.2 authorization sessions (OIAP-style).
//!
//! Real TPM commands that touch keys or owner state prove knowledge of a
//! usage secret with a rolling-nonce HMAC protocol (OIAP). The main UTP
//! flow does not need it — quotes and PCR operations are unauthorized in
//! our simplified model — but the ownership / authorized-seal surface is
//! part of what a TPM *is*, so this module implements it faithfully:
//!
//! * [`Tpm::take_ownership`] installs owner and SRK secrets (once);
//! * [`Tpm::oiap`] opens a session and returns its first even nonce;
//! * [`Tpm::seal_authorized`] / [`Tpm::unseal_authorized`] are the
//!   SRK-authorized variants of seal/unseal: the caller must present
//!   `HMAC-SHA1(srk_secret, paramDigest ‖ nonceEven ‖ nonceOdd)`;
//! * every successful authorized command rolls the session's even nonce,
//!   so captured HMACs cannot be replayed.

use crate::device::Tpm;
use crate::error::TpmError;
use crate::pcr::PcrSelection;
use crate::seal::SealedBlob;
use std::collections::HashMap;
use utp_crypto::hmac::hmac_sha1;
use utp_crypto::sha1::{Sha1, Sha1Digest};

/// First handle assigned to OIAP sessions.
pub const FIRST_AUTH_HANDLE: u32 = 0x0300_0000;

/// Ordinal tags used in parameter digests for authorized commands.
const ORD_TAG_SEAL: u32 = 0x17;
const ORD_TAG_UNSEAL: u32 = 0x18;

/// The live authorization sessions of a TPM.
#[derive(Debug, Clone, Default)]
pub struct AuthSessions {
    sessions: HashMap<u32, Sha1Digest>, // handle -> current even nonce
    next_handle: u32,
}

impl AuthSessions {
    /// Creates an empty table.
    pub fn new() -> Self {
        AuthSessions {
            sessions: HashMap::new(),
            next_handle: FIRST_AUTH_HANDLE,
        }
    }

    fn open(&mut self, nonce_even: Sha1Digest) -> u32 {
        let h = self.next_handle;
        self.next_handle += 1;
        self.sessions.insert(h, nonce_even);
        h
    }

    fn nonce(&self, handle: u32) -> Result<Sha1Digest, TpmError> {
        self.sessions
            .get(&handle)
            .copied()
            .ok_or(TpmError::BadKeyHandle(handle))
    }

    fn roll(&mut self, handle: u32, next: Sha1Digest) {
        if let Some(n) = self.sessions.get_mut(&handle) {
            *n = next;
        }
    }

    fn close(&mut self, handle: u32) {
        self.sessions.remove(&handle);
    }

    /// Number of open sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True if no session is open.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }
}

/// Caller-side authorization material for one command.
#[derive(Debug, Clone, Copy)]
pub struct CommandAuth {
    /// The OIAP session handle.
    pub handle: u32,
    /// Caller's fresh odd nonce.
    pub nonce_odd: Sha1Digest,
    /// `HMAC-SHA1(secret, paramDigest ‖ nonceEven ‖ nonceOdd)`.
    pub auth: Sha1Digest,
}

/// Computes the parameter digest for an authorized command.
pub fn param_digest(ordinal_tag: u32, params: &[&[u8]]) -> Sha1Digest {
    let mut ctx = Sha1::new();
    ctx.update(&ordinal_tag.to_be_bytes());
    for p in params {
        ctx.update(&(p.len() as u32).to_be_bytes());
        ctx.update(p);
    }
    ctx.finalize()
}

/// Computes the authorization HMAC a caller must present.
pub fn compute_auth(
    secret: &Sha1Digest,
    params: &Sha1Digest,
    nonce_even: &Sha1Digest,
    nonce_odd: &Sha1Digest,
) -> Sha1Digest {
    let mut buf = Vec::with_capacity(60);
    buf.extend_from_slice(params.as_bytes());
    buf.extend_from_slice(nonce_even.as_bytes());
    buf.extend_from_slice(nonce_odd.as_bytes());
    hmac_sha1(secret.as_bytes(), &buf)
}

impl Tpm {
    /// `TPM_TakeOwnership`: installs the owner and SRK usage secrets.
    ///
    /// # Errors
    ///
    /// Fails if the TPM already has an owner.
    pub fn take_ownership(
        &mut self,
        owner_auth: Sha1Digest,
        srk_auth: Sha1Digest,
    ) -> Result<(), TpmError> {
        self.ensure_started_pub()?;
        if self.owner_auth.is_some() {
            return Err(TpmError::BadCommand("tpm already owned".into()));
        }
        self.owner_auth = Some(owner_auth);
        self.srk_auth = Some(srk_auth);
        Ok(())
    }

    /// True once `take_ownership` has run.
    pub fn is_owned(&self) -> bool {
        self.owner_auth.is_some()
    }

    /// `TPM_OIAP`: opens an authorization session; returns its handle and
    /// first even nonce.
    pub fn oiap(&mut self) -> Result<(u32, Sha1Digest), TpmError> {
        self.ensure_started_pub()?;
        let bytes = self.get_random(20)?;
        let nonce_even = Sha1Digest::from_slice(&bytes)
            .ok_or_else(|| TpmError::Crypto("rng returned wrong length".into()))?;
        Ok((self.auth_sessions.open(nonce_even), nonce_even))
    }

    /// Number of open authorization sessions.
    pub fn open_auth_sessions(&self) -> usize {
        self.auth_sessions.len()
    }

    fn check_auth(
        &mut self,
        ordinal_tag: u32,
        params: &[&[u8]],
        auth: &CommandAuth,
    ) -> Result<Sha1Digest, TpmError> {
        let secret = self.srk_auth.ok_or(TpmError::AuthFail)?;
        let nonce_even = self.auth_sessions.nonce(auth.handle)?;
        let digest = param_digest(ordinal_tag, params);
        let expect = compute_auth(&secret, &digest, &nonce_even, &auth.nonce_odd);
        if !utp_crypto::ct::ct_eq(expect.as_bytes(), auth.auth.as_bytes()) {
            // A failed auth terminates the session, per spec.
            self.auth_sessions.close(auth.handle);
            return Err(TpmError::AuthFail);
        }
        // Roll the even nonce so the next command needs a fresh HMAC.
        let bytes = self.get_random(20)?;
        let next = Sha1Digest::from_slice(&bytes)
            .ok_or_else(|| TpmError::Crypto("rng returned wrong length".into()))?;
        self.auth_sessions.roll(auth.handle, next);
        Ok(next)
    }

    /// SRK-authorized seal. Returns the blob and the session's next even
    /// nonce.
    ///
    /// # Errors
    ///
    /// [`TpmError::AuthFail`] on a wrong HMAC (the session is terminated),
    /// plus all ordinary seal errors.
    pub fn seal_authorized(
        &mut self,
        key_handle: u32,
        selection: PcrSelection,
        payload: &[u8],
        auth: &CommandAuth,
    ) -> Result<(SealedBlob, Sha1Digest), TpmError> {
        let next = self.check_auth(ORD_TAG_SEAL, &[&key_handle.to_be_bytes(), payload], auth)?;
        let blob = self.seal_to_current(key_handle, selection, payload)?;
        Ok((blob, next))
    }

    /// SRK-authorized unseal. Returns the payload and the session's next
    /// even nonce.
    ///
    /// # Errors
    ///
    /// [`TpmError::AuthFail`] on a wrong HMAC, plus all ordinary unseal
    /// errors.
    pub fn unseal_authorized(
        &mut self,
        key_handle: u32,
        blob: &SealedBlob,
        auth: &CommandAuth,
    ) -> Result<(Vec<u8>, Sha1Digest), TpmError> {
        let blob_bytes = blob.to_bytes();
        let next = self.check_auth(
            ORD_TAG_UNSEAL,
            &[&key_handle.to_be_bytes(), &blob_bytes],
            auth,
        )?;
        let payload = self.unseal(key_handle, blob)?;
        Ok((payload, next))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::TpmConfig;
    use crate::keys::SRK_HANDLE;
    use crate::pcr::PcrIndex;

    fn owned_tpm() -> (Tpm, Sha1Digest) {
        let mut t = Tpm::new(TpmConfig::fast_for_tests(60));
        t.startup_clear();
        let srk_auth = Sha1::digest(b"srk password");
        t.take_ownership(Sha1::digest(b"owner password"), srk_auth)
            .unwrap();
        (t, srk_auth)
    }

    fn sel() -> PcrSelection {
        PcrSelection::of(&[PcrIndex::new(0).unwrap()])
    }

    fn make_auth(
        secret: &Sha1Digest,
        nonce_even: &Sha1Digest,
        handle: u32,
        ordinal_tag: u32,
        params: &[&[u8]],
        odd_seed: &[u8],
    ) -> CommandAuth {
        let nonce_odd = Sha1::digest(odd_seed);
        let digest = param_digest(ordinal_tag, params);
        CommandAuth {
            handle,
            nonce_odd,
            auth: compute_auth(secret, &digest, nonce_even, &nonce_odd),
        }
    }

    #[test]
    fn ownership_is_single_shot() {
        let (mut t, _) = owned_tpm();
        assert!(t.is_owned());
        assert!(t
            .take_ownership(Sha1Digest::zero(), Sha1Digest::zero())
            .is_err());
    }

    #[test]
    fn authorized_seal_unseal_roundtrip() {
        let (mut t, srk_auth) = owned_tpm();
        let (handle, ne) = t.oiap().unwrap();
        let auth = make_auth(
            &srk_auth,
            &ne,
            handle,
            super::ORD_TAG_SEAL,
            &[&SRK_HANDLE.to_be_bytes(), b"secret"],
            b"odd-1",
        );
        let (blob, ne2) = t
            .seal_authorized(SRK_HANDLE, sel(), b"secret", &auth)
            .unwrap();
        let blob_bytes = blob.to_bytes();
        let auth2 = make_auth(
            &srk_auth,
            &ne2,
            handle,
            super::ORD_TAG_UNSEAL,
            &[&SRK_HANDLE.to_be_bytes(), &blob_bytes],
            b"odd-2",
        );
        let (payload, _ne3) = t.unseal_authorized(SRK_HANDLE, &blob, &auth2).unwrap();
        assert_eq!(payload, b"secret");
    }

    #[test]
    fn wrong_secret_fails_and_terminates_session() {
        let (mut t, _srk_auth) = owned_tpm();
        let (handle, ne) = t.oiap().unwrap();
        assert_eq!(t.open_auth_sessions(), 1);
        let wrong = Sha1::digest(b"guess");
        let auth = make_auth(
            &wrong,
            &ne,
            handle,
            super::ORD_TAG_SEAL,
            &[&SRK_HANDLE.to_be_bytes(), b"x"],
            b"odd",
        );
        assert_eq!(
            t.seal_authorized(SRK_HANDLE, sel(), b"x", &auth)
                .unwrap_err(),
            TpmError::AuthFail
        );
        assert_eq!(t.open_auth_sessions(), 0);
        // The terminated handle is dead even with the right secret.
        let auth = make_auth(
            &Sha1::digest(b"srk password"),
            &ne,
            handle,
            super::ORD_TAG_SEAL,
            &[&SRK_HANDLE.to_be_bytes(), b"x"],
            b"odd2",
        );
        assert!(t.seal_authorized(SRK_HANDLE, sel(), b"x", &auth).is_err());
    }

    #[test]
    fn replayed_hmac_is_rejected_by_nonce_rolling() {
        let (mut t, srk_auth) = owned_tpm();
        let (handle, ne) = t.oiap().unwrap();
        let auth = make_auth(
            &srk_auth,
            &ne,
            handle,
            super::ORD_TAG_SEAL,
            &[&SRK_HANDLE.to_be_bytes(), b"p"],
            b"odd",
        );
        t.seal_authorized(SRK_HANDLE, sel(), b"p", &auth).unwrap();
        // Same CommandAuth again: even nonce has rolled → AuthFail.
        assert_eq!(
            t.seal_authorized(SRK_HANDLE, sel(), b"p", &auth)
                .unwrap_err(),
            TpmError::AuthFail
        );
    }

    #[test]
    fn auth_binds_parameters() {
        let (mut t, srk_auth) = owned_tpm();
        let (handle, ne) = t.oiap().unwrap();
        // HMAC computed over payload "alpha"; command carries "bravo".
        let auth = make_auth(
            &srk_auth,
            &ne,
            handle,
            super::ORD_TAG_SEAL,
            &[&SRK_HANDLE.to_be_bytes(), b"alpha"],
            b"odd",
        );
        assert_eq!(
            t.seal_authorized(SRK_HANDLE, sel(), b"bravo", &auth)
                .unwrap_err(),
            TpmError::AuthFail
        );
    }

    #[test]
    fn unowned_tpm_refuses_authorized_commands() {
        let mut t = Tpm::new(TpmConfig::fast_for_tests(61));
        t.startup_clear();
        let (handle, ne) = t.oiap().unwrap();
        let auth = make_auth(
            &Sha1::digest(b"whatever"),
            &ne,
            handle,
            super::ORD_TAG_SEAL,
            &[&SRK_HANDLE.to_be_bytes(), b"x"],
            b"odd",
        );
        assert_eq!(
            t.seal_authorized(SRK_HANDLE, sel(), b"x", &auth)
                .unwrap_err(),
            TpmError::AuthFail
        );
    }

    #[test]
    fn sessions_are_independent() {
        let (mut t, srk_auth) = owned_tpm();
        let (h1, ne1) = t.oiap().unwrap();
        let (h2, ne2) = t.oiap().unwrap();
        assert_ne!(h1, h2);
        assert_ne!(ne1, ne2);
        // Killing h1 with a bad HMAC leaves h2 usable.
        let bad = make_auth(
            &Sha1::digest(b"bad"),
            &ne1,
            h1,
            super::ORD_TAG_SEAL,
            &[&SRK_HANDLE.to_be_bytes(), b"x"],
            b"o",
        );
        let _ = t.seal_authorized(SRK_HANDLE, sel(), b"x", &bad);
        let good = make_auth(
            &srk_auth,
            &ne2,
            h2,
            super::ORD_TAG_SEAL,
            &[&SRK_HANDLE.to_be_bytes(), b"y"],
            b"o2",
        );
        t.seal_authorized(SRK_HANDLE, sel(), b"y", &good).unwrap();
    }

    #[test]
    fn param_digest_is_unambiguous() {
        // ("ab","c") must differ from ("a","bc").
        let a = param_digest(1, &[b"ab", b"c"]);
        let b = param_digest(1, &[b"a", b"bc"]);
        assert_ne!(a, b);
        // And ordinal tags separate command types.
        assert_ne!(param_digest(1, &[b"x"]), param_digest(2, &[b"x"]));
    }
}
