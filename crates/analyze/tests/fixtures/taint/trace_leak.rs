// Fed as `crates/tpm/src/trace_leak.rs`. Key material passed as a
// trace-record field value: the flight recorder would serialize it
// verbatim into the JSONL export. The `keys::`-qualified path segment
// names a record *key* and must not trip the scan on its own.
pub fn record_unseal(session_key: &[u8]) {
    span("tpm.cmd", 0, 0, &[(keys::OP, session_key)]);
}
