//! Platform Configuration Registers.
//!
//! The PCR bank is the heart of the attestation story: a PCR can only be
//! *extended* (`PCR ← SHA1(PCR || input)`), never written, so the value of
//! PCR 17 after a DRTM launch is a tamper-evident log of exactly what code
//! was launched and what it chose to record.

use crate::error::TpmError;
use crate::locality::Locality;
use utp_crypto::sha1::{Sha1, Sha1Digest};

/// Number of PCRs in a TPM 1.2.
pub const NUM_PCRS: usize = 24;

/// First dynamic (DRTM) PCR. PCRs 17–22 reset to all-ones at startup and
/// can only be reset to zero by a locality-4 DRTM event.
pub const FIRST_DYNAMIC_PCR: u32 = 17;
/// Last dynamic (DRTM) PCR.
pub const LAST_DYNAMIC_PCR: u32 = 22;
/// The PCR that receives the DRTM measurement of the launched code (SLB).
pub const DRTM_PCR: u32 = 17;

/// A validated PCR index (`0..24`).
///
/// # Example
///
/// ```
/// use utp_tpm::pcr::PcrIndex;
/// assert!(PcrIndex::new(17).is_some());
/// assert!(PcrIndex::new(24).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PcrIndex(u32);

impl PcrIndex {
    /// Validates and wraps an index.
    pub fn new(i: u32) -> Option<Self> {
        if (i as usize) < NUM_PCRS {
            Some(PcrIndex(i))
        } else {
            None
        }
    }

    /// The DRTM measurement PCR (17).
    pub fn drtm() -> Self {
        PcrIndex(DRTM_PCR)
    }

    /// Raw index value.
    pub fn value(self) -> u32 {
        self.0
    }

    /// True for PCRs 17–22 (dynamic / DRTM-resettable).
    pub fn is_dynamic(self) -> bool {
        (FIRST_DYNAMIC_PCR..=LAST_DYNAMIC_PCR).contains(&self.0)
    }
}

/// A set of PCR indices, encoded the way TPM 1.2 encodes
/// `TPM_PCR_SELECTION` (a little bitmap, LSB of byte 0 = PCR 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PcrSelection {
    bitmap: u32,
}

impl PcrSelection {
    /// The empty selection.
    pub fn empty() -> Self {
        PcrSelection { bitmap: 0 }
    }

    /// A selection containing exactly the given indices.
    pub fn of(indices: &[PcrIndex]) -> Self {
        let mut s = Self::empty();
        for &i in indices {
            s.insert(i);
        }
        s
    }

    /// Selection of just the DRTM PCR (17) — what a UTP quote covers.
    pub fn drtm_only() -> Self {
        Self::of(&[PcrIndex::drtm()])
    }

    /// Adds an index.
    pub fn insert(&mut self, i: PcrIndex) {
        self.bitmap |= 1 << i.value();
    }

    /// Membership test.
    pub fn contains(&self, i: PcrIndex) -> bool {
        self.bitmap & (1 << i.value()) != 0
    }

    /// True if no PCR is selected.
    pub fn is_empty(&self) -> bool {
        self.bitmap == 0
    }

    /// Number of selected PCRs.
    pub fn len(&self) -> usize {
        self.bitmap.count_ones() as usize
    }

    /// Iterates selected indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = PcrIndex> + '_ {
        (0..NUM_PCRS as u32).filter_map(move |i| {
            if self.bitmap & (1 << i) != 0 {
                PcrIndex::new(i)
            } else {
                None
            }
        })
    }

    /// TPM 1.2 wire encoding: `sizeOfSelect (u16 BE) || bitmap bytes`.
    pub fn to_wire(&self) -> Vec<u8> {
        let bytes = [
            (self.bitmap & 0xFF) as u8,
            ((self.bitmap >> 8) & 0xFF) as u8,
            ((self.bitmap >> 16) & 0xFF) as u8,
        ];
        let mut out = Vec::with_capacity(5);
        out.extend_from_slice(&(3u16).to_be_bytes());
        out.extend_from_slice(&bytes);
        out
    }

    /// Parses the wire encoding; returns the selection and bytes consumed.
    pub fn from_wire(data: &[u8]) -> Result<(Self, usize), TpmError> {
        if data.len() < 2 {
            return Err(TpmError::BadCommand("pcr selection truncated".into()));
        }
        let size = u16::from_be_bytes([data[0], data[1]]) as usize;
        if size > 4 || data.len() < 2 + size {
            return Err(TpmError::BadCommand("pcr selection size invalid".into()));
        }
        let bytes = data
            .get(2..2 + size)
            .ok_or_else(|| TpmError::BadCommand("pcr selection truncated".into()))?;
        let mut bitmap = 0u32;
        for (i, &b) in bytes.iter().enumerate() {
            bitmap |= (b as u32) << (8 * i);
        }
        if bitmap >> NUM_PCRS != 0 {
            return Err(TpmError::BadCommand("pcr selection out of range".into()));
        }
        Ok((PcrSelection { bitmap }, 2 + size))
    }
}

/// The 24-register PCR bank with locality-aware reset/extend policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcrBank {
    values: [Sha1Digest; NUM_PCRS],
}

impl PcrBank {
    /// Bank state immediately after `TPM_Startup(ST_CLEAR)`: static PCRs
    /// zero, dynamic PCRs all-ones (the "no DRTM has happened" marker).
    pub fn at_startup() -> Self {
        let values = core::array::from_fn(|i| {
            if (FIRST_DYNAMIC_PCR..=LAST_DYNAMIC_PCR).contains(&(i as u32)) {
                Sha1Digest::ones()
            } else {
                Sha1Digest::zero()
            }
        });
        PcrBank { values }
    }

    /// Reads a PCR.
    pub fn read(&self, i: PcrIndex) -> Sha1Digest {
        // utp-analyze: allow(no-panic-in-tcb) PcrIndex validates value() < NUM_PCRS at construction
        self.values[i.value() as usize]
    }

    /// The mutable register slot for `i` — the only mutation path.
    fn slot_mut(&mut self, i: PcrIndex) -> &mut Sha1Digest {
        // utp-analyze: allow(no-panic-in-tcb) PcrIndex validates value() < NUM_PCRS at construction
        &mut self.values[i.value() as usize]
    }

    /// Extends `input` (20 bytes) into PCR `i`: `PCR ← SHA1(PCR || input)`.
    ///
    /// Locality policy: any locality may extend static PCRs; dynamic PCRs
    /// (17–22) accept extends from locality ≥ 1 only after DRTM, but we
    /// allow locality 0 extends too — as real TPMs do for 23 — except for
    /// the DRTM PCR 17, which requires locality ≥ 2. This is the property
    /// the trusted path relies on: the OS (locality 0) can extend PCR 17
    /// only *through* the TPM driver at locality 0, and the TPM refuses.
    pub fn extend(
        &mut self,
        locality: Locality,
        i: PcrIndex,
        input: &[u8],
    ) -> Result<Sha1Digest, TpmError> {
        if input.len() != 20 {
            return Err(TpmError::BadDigestLength(input.len()));
        }
        if i.value() == DRTM_PCR && locality < Locality::Two {
            return Err(TpmError::BadLocality {
                got: locality.as_u8(),
                required: 2,
            });
        }
        let old = self.read(i);
        let new = Sha1::digest_concat(old.as_bytes(), input);
        *self.slot_mut(i) = new;
        Ok(new)
    }

    /// Resets a dynamic PCR to zero. Only locality 3/4 may reset PCR 17
    /// (in hardware, only the CPU's DRTM microcode ever runs at 4).
    pub fn reset(&mut self, locality: Locality, i: PcrIndex) -> Result<(), TpmError> {
        if !i.is_dynamic() {
            return Err(TpmError::PcrNotResettable(i.value()));
        }
        let required = if i.value() == DRTM_PCR { 4 } else { 2 };
        if (locality.as_u8()) < required {
            return Err(TpmError::BadLocality {
                got: locality.as_u8(),
                required,
            });
        }
        *self.slot_mut(i) = Sha1Digest::zero();
        Ok(())
    }

    /// Computes the `TPM_PCR_COMPOSITE` digest over a selection:
    /// `SHA1( selection || valueSize(u32) || PCR values in ascending order )`.
    pub fn composite_digest(&self, selection: &PcrSelection) -> Sha1Digest {
        composite_digest_from_values(
            selection,
            &selection.iter().map(|i| self.read(i)).collect::<Vec<_>>(),
        )
    }
}

impl Default for PcrBank {
    fn default() -> Self {
        Self::at_startup()
    }
}

/// Computes a composite digest from explicit PCR values (used by verifiers
/// that reconstruct the expected composite without a TPM).
pub fn composite_digest_from_values(selection: &PcrSelection, values: &[Sha1Digest]) -> Sha1Digest {
    assert_eq!(
        selection.len(),
        values.len(),
        "one value per selected PCR required"
    );
    let mut buf = selection.to_wire();
    buf.extend_from_slice(&((values.len() * 20) as u32).to_be_bytes());
    for v in values {
        buf.extend_from_slice(v.as_bytes());
    }
    Sha1::digest(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PcrIndex {
        PcrIndex::new(i).unwrap()
    }

    #[test]
    fn startup_values() {
        let bank = PcrBank::at_startup();
        assert_eq!(bank.read(p(0)), Sha1Digest::zero());
        assert_eq!(bank.read(p(16)), Sha1Digest::zero());
        assert_eq!(bank.read(p(17)), Sha1Digest::ones());
        assert_eq!(bank.read(p(22)), Sha1Digest::ones());
        assert_eq!(bank.read(p(23)), Sha1Digest::zero());
    }

    #[test]
    fn extend_is_hash_chain() {
        let mut bank = PcrBank::at_startup();
        let m = [0x11u8; 20];
        bank.extend(Locality::Zero, p(0), &m).unwrap();
        let expected = Sha1::digest_concat(Sha1Digest::zero().as_bytes(), &m);
        assert_eq!(bank.read(p(0)), expected);
        // Extending again chains.
        bank.extend(Locality::Zero, p(0), &m).unwrap();
        let expected2 = Sha1::digest_concat(expected.as_bytes(), &m);
        assert_eq!(bank.read(p(0)), expected2);
    }

    #[test]
    fn extend_order_matters() {
        let mut b1 = PcrBank::at_startup();
        let mut b2 = PcrBank::at_startup();
        let (x, y) = ([1u8; 20], [2u8; 20]);
        b1.extend(Locality::Zero, p(4), &x).unwrap();
        b1.extend(Locality::Zero, p(4), &y).unwrap();
        b2.extend(Locality::Zero, p(4), &y).unwrap();
        b2.extend(Locality::Zero, p(4), &x).unwrap();
        assert_ne!(b1.read(p(4)), b2.read(p(4)));
    }

    #[test]
    fn os_cannot_extend_drtm_pcr() {
        let mut bank = PcrBank::at_startup();
        let err = bank.extend(Locality::Zero, p(17), &[0u8; 20]).unwrap_err();
        assert!(matches!(err, TpmError::BadLocality { required: 2, .. }));
        // But the MLE (locality 2) can.
        bank.extend(Locality::Two, p(17), &[0u8; 20]).unwrap();
    }

    #[test]
    fn only_locality4_resets_pcr17() {
        let mut bank = PcrBank::at_startup();
        for l in [
            Locality::Zero,
            Locality::One,
            Locality::Two,
            Locality::Three,
        ] {
            assert!(bank.reset(l, p(17)).is_err(), "{} must not reset 17", l);
        }
        bank.reset(Locality::Four, p(17)).unwrap();
        assert_eq!(bank.read(p(17)), Sha1Digest::zero());
    }

    #[test]
    fn static_pcrs_never_reset() {
        let mut bank = PcrBank::at_startup();
        assert!(matches!(
            bank.reset(Locality::Four, p(0)).unwrap_err(),
            TpmError::PcrNotResettable(0)
        ));
    }

    #[test]
    fn extend_requires_20_bytes() {
        let mut bank = PcrBank::at_startup();
        assert!(matches!(
            bank.extend(Locality::Zero, p(0), &[0u8; 19]).unwrap_err(),
            TpmError::BadDigestLength(19)
        ));
    }

    #[test]
    fn selection_roundtrip() {
        let sel = PcrSelection::of(&[p(0), p(17), p(23)]);
        assert_eq!(sel.len(), 3);
        assert!(sel.contains(p(17)));
        assert!(!sel.contains(p(1)));
        let wire = sel.to_wire();
        let (parsed, used) = PcrSelection::from_wire(&wire).unwrap();
        assert_eq!(parsed, sel);
        assert_eq!(used, wire.len());
    }

    #[test]
    fn selection_iter_ascending() {
        let sel = PcrSelection::of(&[p(23), p(0), p(17)]);
        let order: Vec<u32> = sel.iter().map(|i| i.value()).collect();
        assert_eq!(order, vec![0, 17, 23]);
    }

    #[test]
    fn selection_from_wire_rejects_truncation() {
        assert!(PcrSelection::from_wire(&[0]).is_err());
        assert!(PcrSelection::from_wire(&[0, 3, 1]).is_err());
    }

    #[test]
    fn composite_digest_depends_on_values_and_selection() {
        let bank = PcrBank::at_startup();
        let a = bank.composite_digest(&PcrSelection::of(&[p(17)]));
        let b = bank.composite_digest(&PcrSelection::of(&[p(18)]));
        // 17 and 18 have the same value at startup but different selections.
        assert_ne!(a, b);
        let mut bank2 = bank.clone();
        bank2.reset(Locality::Four, p(17)).unwrap();
        assert_ne!(bank2.composite_digest(&PcrSelection::of(&[p(17)])), a);
    }

    #[test]
    fn composite_from_values_matches_bank() {
        let mut bank = PcrBank::at_startup();
        bank.extend(Locality::Zero, p(0), &[9u8; 20]).unwrap();
        let sel = PcrSelection::of(&[p(0), p(17)]);
        let by_bank = bank.composite_digest(&sel);
        let by_values = composite_digest_from_values(&sel, &[bank.read(p(0)), bank.read(p(17))]);
        assert_eq!(by_bank, by_values);
    }

    #[test]
    #[should_panic(expected = "one value per selected PCR")]
    fn composite_from_values_checks_arity() {
        let sel = PcrSelection::of(&[p(0), p(1)]);
        let _ = composite_digest_from_values(&sel, &[Sha1Digest::zero()]);
    }
}
