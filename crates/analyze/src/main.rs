//! CLI for the `utp-analyze` static analyzer.
//!
//! ```text
//! utp-analyze [--root <path>] [--format text|json] [--list-passes]
//!             [--pass <name>]
//!             [--tcb-report <out.json>] [--check-tcb-baseline <base.json>]
//!             [--dataflow-report <out.json>] [--authz-report <out.json>]
//!             [--check-authz-spec <spec.json>]
//! ```
//!
//! Exit status: 0 — clean (no deny-level findings, baseline ok); 1 — at
//! least one deny-level finding, a TCB-size regression, or an authz-spec
//! gate failure; 2 — usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use utp_analyze::{analyze_workspace_filtered, deny_count, diag, passes, report, spec, workspace};

enum Format {
    Text,
    Json,
}

fn usage() -> &'static str {
    "usage: utp-analyze [--root <path>] [--format text|json] [--list-passes]\n\
     \x20                  [--pass <name>]\n\
     \x20                  [--tcb-report <out.json>] [--check-tcb-baseline <base.json>]\n\
     \x20                  [--dataflow-report <out.json>] [--authz-report <out.json>]\n\
     \x20                  [--check-authz-spec <spec.json>]\n\
     \n\
     Runs the UTP workspace's TCB / constant-time / panic-freedom passes\n\
     over every .rs file and reports structured diagnostics. Exits 1 if\n\
     any deny-level finding remains unannotated, or if the measured TCB\n\
     grew beyond the baseline's declared threshold.\n\
     \n\
     --pass                run a single pass by lint id (see --list-passes);\n\
     \x20                    other passes' waivers are not flagged unused\n\
     --tcb-report          write the measured TCB-size report as JSON\n\
     --check-tcb-baseline  fail on TCB growth beyond the baseline's\n\
     \x20                    max_growth_pct (see scripts/tcb_report.json)\n\
     --dataflow-report     write CFG coverage and flow-pass finding\n\
     \x20                    counts as JSON (fallback_functions > 0 means\n\
     \x20                    some body degraded to flow-insensitive)\n\
     --authz-report        write authorization-spec coverage (grant/sink/\n\
     \x20                    order site counts, anchor check) as JSON\n\
     --check-authz-spec    fail when the given spec file drifts from the\n\
     \x20                    analyzer's embedded copy, or when any spec'd\n\
     \x20                    name no longer anchors in the workspace\n\
     \x20                    (see scripts/authz_spec.json)"
}

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut root: Option<PathBuf> = None;
    let mut report_out: Option<PathBuf> = None;
    let mut dataflow_out: Option<PathBuf> = None;
    let mut authz_out: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut authz_spec_path: Option<PathBuf> = None;
    let mut only_pass: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                other => {
                    let got = other.unwrap_or("nothing");
                    eprintln!("--format expects `text` or `json`, got `{got}`");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root expects a path");
                    return ExitCode::from(2);
                }
            },
            "--tcb-report" => match args.next() {
                Some(p) => report_out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--tcb-report expects an output path");
                    return ExitCode::from(2);
                }
            },
            "--dataflow-report" => match args.next() {
                Some(p) => dataflow_out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--dataflow-report expects an output path");
                    return ExitCode::from(2);
                }
            },
            "--authz-report" => match args.next() {
                Some(p) => authz_out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--authz-report expects an output path");
                    return ExitCode::from(2);
                }
            },
            "--check-authz-spec" => match args.next() {
                Some(p) => authz_spec_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--check-authz-spec expects a spec JSON path");
                    return ExitCode::from(2);
                }
            },
            "--pass" => match args.next() {
                Some(name) => {
                    let known: Vec<&str> = passes::registry().iter().map(|p| p.id()).collect();
                    if !known.contains(&name.as_str()) {
                        eprintln!(
                            "--pass `{name}` is not a known pass (known: {})",
                            known.join(", ")
                        );
                        return ExitCode::from(2);
                    }
                    only_pass = Some(name);
                }
                None => {
                    eprintln!("--pass expects a lint id (see --list-passes)");
                    return ExitCode::from(2);
                }
            },
            "--check-tcb-baseline" => match args.next() {
                Some(p) => baseline = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--check-tcb-baseline expects a baseline JSON path");
                    return ExitCode::from(2);
                }
            },
            "--list-passes" => {
                for pass in passes::registry() {
                    println!("{:<28} {}", pass.id(), pass.description());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match workspace::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("could not locate a workspace root above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let analysis = match analyze_workspace_filtered(&root, only_pass.as_deref()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("analysis failed: {e}");
            return ExitCode::from(2);
        }
    };
    let diags = &analysis.diagnostics;
    let report_json = analysis.tcb_report.to_json();

    if let Some(path) = &report_out {
        if let Err(e) = std::fs::write(path, &report_json) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(path) = &dataflow_out {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(path, analysis.dataflow_report.to_json()) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(path) = &authz_out {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(path, analysis.authz_report.to_json()) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    match format {
        Format::Text => print!("{}", diag::render_text(diags)),
        Format::Json => {
            // One combined document: findings plus the TCB report.
            let findings = diag::render_json(diags);
            let findings = findings.trim_end().trim_end_matches('}');
            let tcb = report_json
                .trim_start()
                .trim_start_matches('{')
                .trim_end()
                .trim_end_matches('}');
            println!("{findings},{tcb}}}");
        }
    }

    let mut failed = deny_count(diags) > 0;
    if let Some(path) = &baseline {
        match std::fs::read_to_string(path) {
            Ok(text) => match report::check_baseline(&analysis.tcb_report, &text) {
                Ok(msg) => eprintln!("tcb-baseline: {msg}"),
                Err(msg) => {
                    eprintln!("tcb-baseline: FAIL: {msg}");
                    failed = true;
                }
            },
            Err(e) => {
                eprintln!("cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    if let Some(path) = &authz_spec_path {
        match std::fs::read_to_string(path) {
            Ok(text) => match spec::parse(&text) {
                Ok(parsed) if parsed != *spec::embedded() => {
                    eprintln!(
                        "authz-spec: FAIL: {} differs from the analyzer's embedded copy \
                         (rebuild utp-analyze after editing the spec)",
                        path.display()
                    );
                    failed = true;
                }
                Ok(_) => {
                    let missing = &analysis.authz_report.missing_anchors;
                    if missing.is_empty() {
                        eprintln!(
                            "authz-spec: ok ({} in sync, all names anchored)",
                            path.display()
                        );
                    } else {
                        for m in missing {
                            eprintln!("authz-spec: FAIL: unanchored {m}");
                        }
                        failed = true;
                    }
                }
                Err(e) => {
                    eprintln!("authz-spec: FAIL: {} does not parse: {e}", path.display());
                    failed = true;
                }
            },
            Err(e) => {
                eprintln!("cannot read authz spec {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
