//! Offline stand-in for `criterion`.
//!
//! Implements the macro/builder surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with throughput and sample-size knobs — on a simple
//! median-of-samples wall-clock timer. No statistics, plots or baselines;
//! it exists so `cargo bench` compiles and prints useful numbers offline.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Declared throughput of one benchmark iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier that is just the parameter (used inside a named group).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things accepted where criterion takes a benchmark id.
pub trait IntoBenchmarkId {
    /// Converts into the canonical id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to bench closures; `iter` times the workload.
pub struct Bencher {
    samples: usize,
    result: Option<Duration>,
}

impl Bencher {
    /// Times `f`, storing the median over the configured samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up call.
        std::hint::black_box(f());
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            times.push(start.elapsed());
        }
        times.sort_unstable();
        self.result = Some(times[times.len() / 2]);
    }
}

fn run_one(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some(median) => {
            let rate = throughput.map(|t| match t {
                Throughput::Bytes(n) => {
                    format!(
                        " ({:.1} MiB/s)",
                        n as f64 / median.as_secs_f64() / (1 << 20) as f64
                    )
                }
                Throughput::Elements(n) => {
                    format!(" ({:.0} elem/s)", n as f64 / median.as_secs_f64())
                }
            });
            println!(
                "bench {label:<50} median {median:>12?}{}",
                rate.unwrap_or_default()
            );
        }
        None => println!("bench {label:<50} (no measurement)"),
    }
}

/// A set of related benchmarks sharing a name prefix and knobs.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Declares per-iteration throughput for derived rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_id());
        run_one(&label, self.samples, self.throughput, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_id());
        run_one(&label, self.samples, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (reporting is immediate, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Entry point handed to bench functions.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a standalone benchmark with default knobs.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_one(&id.into_id(), 10, None, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Declares a group-runner function invoking each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_prints() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Bytes(64));
        group.bench_with_input(BenchmarkId::new("x", 7), &7usize, |b, &n| b.iter(|| n * 2));
        group.bench_function(BenchmarkId::from_parameter(3), |b| b.iter(|| ()));
        group.finish();
    }
}
