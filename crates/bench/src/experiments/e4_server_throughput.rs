//! E4 — server-side verification throughput and latency, measured for
//! real on the host CPU (the one experiment whose numbers are not
//! modeled: RSA verification is our actual code).
//!
//! Regenerate: `cargo run -p utp-bench --bin e4_server_throughput`

use crate::table;
use std::collections::HashSet;
use std::time::{Duration, Instant};
use utp_core::ca::PrivacyCa;
use utp_core::client::{Client, ClientConfig};
use utp_core::operator::{ConfirmingHuman, Intent};
use utp_core::pal::ConfirmationPal;
use utp_core::protocol::Transaction;
use utp_core::verifier::Verifier;
use utp_crypto::rsa::RsaPublicKey;
use utp_crypto::sha1::Sha1Digest;
use utp_platform::machine::{Machine, MachineConfig};
use utp_server::metrics::throughput;
use utp_server::pipeline::{verify_batch_parallel, VerificationJob};

/// One thread-count measurement.
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    /// Worker threads.
    pub threads: usize,
    /// Jobs verified.
    pub jobs: usize,
    /// Wall-clock elapsed.
    pub elapsed: Duration,
    /// Verifications per second.
    pub ops_per_sec: f64,
}

/// A fixed server-side workload: one enrolled client, `n` genuine
/// confirmations. E4 consumes the stateless jobs; E10 also needs the
/// issued requests and raw evidence to drive the settling service path.
#[derive(Debug, Clone)]
pub struct ServerWorld {
    /// The privacy CA's public key (pinned by the verifying side).
    pub ca_key: RsaPublicKey,
    /// Trusted PAL measurements.
    pub pals: HashSet<Sha1Digest>,
    /// The issued confirmation requests, in transaction order.
    pub requests: Vec<utp_core::protocol::TransactionRequest>,
    /// The client's evidence, positionally matching `requests`.
    pub evidence: Vec<utp_core::protocol::Evidence>,
    /// Stateless verification jobs assembled from the same data.
    pub jobs: Vec<VerificationJob>,
    /// Virtual time at which the requests were issued.
    pub now: Duration,
}

/// Builds `n` genuine confirmations once (key size configurable; 1024-bit
/// approximates the paper's 2048-bit AIK verification cost within ~4x).
pub fn build_world(n: usize, key_bits: usize) -> ServerWorld {
    let ca = PrivacyCa::new(key_bits, 11);
    let mut verifier = Verifier::new(ca.public_key().clone(), 12);
    let mut machine = Machine::new(MachineConfig {
        tpm: utp_tpm::TpmConfig {
            vendor: utp_tpm::VendorProfile::Instant,
            key_bits,
            seed: 13,
            fault_rate: 0.0,
        },
        ..MachineConfig::fast_for_tests(13)
    });
    let enrollment = ca.enroll(&mut machine);
    let mut client = Client::new(ClientConfig::fast_for_tests(), enrollment);
    let mut requests = Vec::with_capacity(n);
    let mut all_evidence = Vec::with_capacity(n);
    let mut jobs = Vec::with_capacity(n);
    for i in 0..n {
        let tx = Transaction::new(i as u64, "shop.example", 100, "EUR", "x");
        let request = verifier.issue_request(tx.clone(), machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&tx), 500 + i as u64);
        let evidence = client
            .confirm(&mut machine, &request, &mut human)
            .expect("confirmation succeeds");
        jobs.push(VerificationJob {
            request_bytes: request.to_bytes(),
            tx_digest: tx.digest(),
            evidence: evidence.clone(),
        });
        requests.push(request);
        all_evidence.push(evidence);
    }
    let mut pals = HashSet::new();
    pals.insert(ConfirmationPal::v1().measurement());
    ServerWorld {
        ca_key: ca.public_key().clone(),
        pals,
        requests,
        evidence: all_evidence,
        jobs,
        now: machine.now(),
    }
}

/// Builds `n` genuine evidence jobs once. Kept as E4's historical entry
/// point; see [`build_world`] for the richer workload.
pub fn build_jobs(
    n: usize,
    key_bits: usize,
) -> (RsaPublicKey, HashSet<Sha1Digest>, Vec<VerificationJob>) {
    let world = build_world(n, key_bits);
    (world.ca_key, world.pals, world.jobs)
}

/// Measures throughput across thread counts.
pub fn run(jobs_n: usize, key_bits: usize, thread_counts: &[usize]) -> Vec<ThroughputRow> {
    let (ca_key, pals, jobs) = build_jobs(jobs_n, key_bits);
    thread_counts
        .iter()
        .map(|&threads| {
            let start = Instant::now();
            let results = verify_batch_parallel(&ca_key, &pals, &jobs, threads);
            let elapsed = start.elapsed();
            assert!(results.iter().all(|r| r.is_ok()), "all jobs genuine");
            ThroughputRow {
                threads,
                jobs: jobs.len(),
                elapsed,
                ops_per_sec: throughput(jobs.len(), elapsed),
            }
        })
        .collect()
}

/// Flattens the rows into their perf artifact pair. Job counts are
/// virtual-class (fixed by the workload); elapsed time and throughput
/// are genuine host measurements and land in the host artifact.
pub fn artifacts(rows: &[ThroughputRow], config: &str) -> utp_obs::ArtifactPair {
    let mut pair = utp_obs::ArtifactPair::new("E4", config);
    for r in rows {
        let threads = r.threads.to_string();
        let labels: &[(&str, &str)] = &[("threads", &threads)];
        pair.canonical.push_u64("e4.jobs", labels, r.jobs as u64);
        pair.host
            .push_u64("e4.elapsed_ns", labels, r.elapsed.as_nanos() as u64);
        pair.host.push_f64("e4.ops_per_sec", labels, r.ops_per_sec);
    }
    pair
}

/// Renders the E4 table.
pub fn render(rows: &[ThroughputRow]) -> String {
    table::render(
        "E4 - evidence verification throughput (host-measured)",
        &["threads", "jobs", "elapsed(ms)", "verifications/s"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.threads.to_string(),
                    r.jobs.to_string(),
                    table::ms(r.elapsed),
                    format!("{:.0}", r.ops_per_sec),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_is_thousands_per_second_per_core() {
        // The paper's scalability claim: verification is cheap. With our
        // 512-bit test keys a single thread should far exceed 1k/s.
        let rows = run(64, 512, &[1]);
        assert!(rows[0].ops_per_sec > 1_000.0, "{}", rows[0].ops_per_sec);
    }

    #[test]
    fn more_threads_do_not_reduce_throughput_much() {
        let rows = run(128, 512, &[1, 4]);
        // Parallel overhead must not eat the gain entirely: 4 threads
        // should be at least as fast as half of single-thread throughput.
        assert!(
            rows[1].ops_per_sec > rows[0].ops_per_sec * 0.5,
            "1t={} 4t={}",
            rows[0].ops_per_sec,
            rows[1].ops_per_sec
        );
    }
}
