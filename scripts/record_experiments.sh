#!/usr/bin/env bash
# Regenerates every experiment harness and splices the outputs into
# EXPERIMENTS.md at the <!--EN--> markers.
set -euo pipefail
cd "$(dirname "$0")/.."

run_and_splice() {
  local id="$1" bin="$2"
  echo ">> running $bin"
  cargo run -q -p utp-bench --bin "$bin" > "/tmp/exp_$id.txt"
  python3 - "$id" "/tmp/exp_$id.txt" <<'PY'
import sys
marker = "<!--%s-->" % sys.argv[1]
out = open(sys.argv[2]).read().rstrip()
text = open("EXPERIMENTS.md").read()
assert marker in text, marker
text = text.replace(marker, "```text\n" + out + "\n```")
open("EXPERIMENTS.md", "w").write(text)
PY
}

run_and_splice E1 e1_tpm_micro
run_and_splice E2 e2_session_breakdown
run_and_splice E3 e3_end_to_end
run_and_splice E4 e4_server_throughput
run_and_splice E5 e5_attacks
run_and_splice E6 e6_captcha_compare
run_and_splice E7 e7_tcb_size
run_and_splice E8 e8_amortized
run_and_splice E9 e9_batching
echo "EXPERIMENTS.md updated"
