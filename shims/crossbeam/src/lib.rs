//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel::unbounded` — the one API the workspace
//! uses — as a multi-producer multi-consumer queue over a `Mutex` +
//! `Condvar`. Throughput is lower than real crossbeam but semantics
//! (cloneable receivers, disconnect on last-sender drop) match.

#![forbid(unsafe_code)]

/// MPMC channels mirroring `crossbeam::channel`.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    ///
    /// The shim never reports this (receiver liveness is not tracked), but
    /// the type keeps call sites source-compatible.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] once the channel is empty and
    /// every sender has been dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; never blocks.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.senders += 1;
            drop(state);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until an item arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .ready
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Returns an item if one is queued, without blocking on producers.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.items.pop_front().ok_or(RecvError)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_out_drains_every_item() {
        let (tx, rx) = channel::unbounded::<usize>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut seen: Vec<usize> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    scope.spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(i) = rx.recv() {
                            got.push(i);
                        }
                        got
                    })
                })
                .collect();
            for h in handles {
                seen.extend(h.join().unwrap());
            }
        });
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_after_last_sender_drops() {
        let (tx, rx) = channel::unbounded::<u8>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(7).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }
}
