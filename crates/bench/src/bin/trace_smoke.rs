//! Trace smoke gate: runs E2 twice, asserts the merged canonical JSONL
//! export is byte-identical across the runs (the determinism contract
//! of virtual-time tracing), and writes the export plus the rendered
//! phase report to `target/trace/` for CI artifact upload.
//!
//! Run: `cargo run -p utp-bench --bin trace_smoke`
use std::fs;
use std::process::ExitCode;
use utp_bench::experiments::e2_session_breakdown as e2;
use utp_trace::{report, Export};

fn main() -> ExitCode {
    let first = e2::run(512);
    let second = e2::run(512);
    let a = first.recorder.export_jsonl(Export::Canonical);
    let b = second.recorder.export_jsonl(Export::Canonical);
    if a != b {
        eprintln!("trace smoke FAILED: canonical exports differ across identical runs");
        for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
            if la != lb {
                eprintln!(
                    "first differing line {}:\n  run 1: {la}\n  run 2: {lb}",
                    i + 1
                );
                break;
            }
        }
        if a.lines().count() != b.lines().count() {
            eprintln!(
                "line counts differ: {} vs {}",
                a.lines().count(),
                b.lines().count()
            );
        }
        return ExitCode::FAILURE;
    }
    let records = first.recorder.records();
    let mut rendered = report::phase_table("E2 aggregate phase breakdown", &records);
    for track in report::tracks(&records) {
        rendered.push('\n');
        rendered.push_str(&report::waterfall(&records, &track));
    }
    if let Err(e) = fs::create_dir_all("target/trace")
        .and_then(|()| fs::write("target/trace/e2_canonical.jsonl", &a))
        .and_then(|()| fs::write("target/trace/e2_phase_report.txt", &rendered))
    {
        eprintln!("trace smoke FAILED: cannot write target/trace artifacts: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "trace smoke OK: {} canonical records byte-identical across 2 runs; \
         artifacts in target/trace/",
        a.lines().count()
    );
    ExitCode::SUCCESS
}
