//! Amortized confirmation: quote once, MAC thereafter.
//!
//! A `TPM_Quote` is the most expensive step of every confirmation session
//! (E1/E2). The extension the paper's discussion points at — and Flicker
//! applications of the era used — amortizes it: the *first* session runs a
//! key-setup PAL that draws a symmetric key `K` from TPM randomness,
//! encrypts it to the provider's RSA key, **seals `K` to its own PCR-17
//! state**, and attests the whole exchange with one quote. Every later
//! confirmation session unseals `K` (possible only for the same PAL after
//! a genuine DRTM launch) and authenticates its confirmation token with
//! `HMAC-SHA256(K, token)` instead of a quote.
//!
//! Security argument: `K` exists in exactly two places — the provider's
//! database and a sealed blob only the genuine PAL can open. A valid MAC
//! over a fresh nonce therefore still proves "the trusted PAL ran via DRTM
//! and produced this token", with the quote's RSA latency replaced by the
//! (cheaper, see E8) unseal latency, and the provider's RSA verify
//! replaced by one HMAC.
//!
//! The trade-off is real and measurable: on chips where unseal is nearly
//! as slow as quote the gain shrinks — the E8 ablation regenerates exactly
//! that comparison.

use crate::ca::Enrollment;
use crate::error::UtpError;
use crate::protocol::{ConfirmMode, ConfirmationToken, TransactionRequest, Verdict};
use crate::verifier::VerifyError;
use std::collections::{HashMap, HashSet};
use std::time::Duration;
use utp_crypto::hmac::hmac_sha256;
use utp_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use utp_crypto::sha1::{Sha1, Sha1Digest};
use utp_flicker::marshal::{put_bytes, put_u64, Reader};
use utp_flicker::pal::{Operator, Pal, PalEnv, PalError, ScriptedOperator, Termination};
use utp_flicker::runtime::{run_pal, AttestSpec, SessionReport};
use utp_platform::machine::Machine;
use utp_tpm::keys::SRK_HANDLE;
use utp_tpm::pcr::PcrSelection;
use utp_tpm::seal::SealedBlob;

const INPUT_TAG_SETUP: u8 = 0;
const INPUT_TAG_CONFIRM: u8 = 1;

/// The amortized PAL: key setup + MAC-authenticated confirmation.
///
/// A distinct PAL (distinct measurement) from [`crate::pal::ConfirmationPal`];
/// providers opt in by trusting it.
#[derive(Debug, Clone)]
pub struct AmortizedPal {
    image: Vec<u8>,
    max_code_attempts: u32,
}

impl AmortizedPal {
    /// The canonical v1 build.
    pub fn v1() -> Self {
        AmortizedPal {
            image: b"UTP-AMORTIZED-CONFIRMATION-PAL v1 (max_code_attempts=3)".to_vec(),
            max_code_attempts: 3,
        }
    }

    /// The measurement providers pin for the amortized protocol.
    pub fn measurement(&self) -> Sha1Digest {
        Sha1::digest(&self.image)
    }

    fn handle_setup(
        &self,
        env: &mut PalEnv<'_, '_>,
        mut r: Reader<'_>,
    ) -> Result<Vec<u8>, PalError> {
        let server_pub_bytes = r
            .bytes()
            .map_err(|e| PalError::Failed(e.to_string()))?
            .to_vec();
        r.finish().map_err(|e| PalError::Failed(e.to_string()))?;
        let server_pub = RsaPublicKey::from_bytes(&server_pub_bytes)
            .ok_or_else(|| PalError::Failed("bad server key".into()))?;
        // Draw K and a PKCS#1 padding seed from TPM randomness so the PAL
        // needs no ambient RNG.
        let key = env.get_random(32)?;
        let pad_seed = env.get_random(8)?;
        let mut rng = {
            use rand::SeedableRng;
            rand::rngs::StdRng::seed_from_u64(u64::from_be_bytes(
                pad_seed.as_slice().try_into().expect("asked for 8 bytes"),
            ))
        };
        let key_ct = server_pub
            .encrypt_pkcs1(&mut rng, &key)
            .map_err(|e| PalError::Failed(e.to_string()))?;
        // Seal K to this PAL's own PCR-17 state.
        let blob = env.seal_to_current(SRK_HANDLE, PcrSelection::drtm_only(), &key)?;
        env.compute(Duration::from_millis(1));
        let mut out = Vec::new();
        put_bytes(&mut out, &key_ct);
        put_bytes(&mut out, &blob.to_bytes());
        Ok(out)
    }

    fn handle_confirm(
        &self,
        env: &mut PalEnv<'_, '_>,
        mut r: Reader<'_>,
    ) -> Result<Vec<u8>, PalError> {
        let request_bytes = r
            .bytes()
            .map_err(|e| PalError::Failed(e.to_string()))?
            .to_vec();
        let blob_bytes = r
            .bytes()
            .map_err(|e| PalError::Failed(e.to_string()))?
            .to_vec();
        r.finish().map_err(|e| PalError::Failed(e.to_string()))?;
        let request = TransactionRequest::from_bytes(&request_bytes)
            .map_err(|e| PalError::Failed(format!("bad request: {}", e)))?;
        let blob = SealedBlob::from_bytes(&blob_bytes)
            .ok_or_else(|| PalError::Failed("bad sealed blob".into()))?;
        // Unseal K: only succeeds if PCR 17 holds *this* PAL's launch value.
        let key = env.unseal(SRK_HANDLE, &blob)?;
        env.compute(Duration::from_millis(1));

        // Render and collect the verdict — same UX as the base PAL.
        env.show(0, "=== TRUSTED TRANSACTION CONFIRMATION (amortized) ===")?;
        env.show(2, &format!("Pay to : {}", request.transaction.payee))?;
        env.show(
            3,
            &format!("Amount : {}", request.transaction.display_amount()),
        )?;
        env.show(4, &format!("Memo   : {}", request.transaction.memo))?;
        let (verdict, attempts) = match request.mode {
            ConfirmMode::PressEnter => {
                env.show(6, "Press ENTER to approve this transaction.")?;
                env.show(7, "Press ESC to reject.")?;
                let result = env.prompt_line()?;
                let verdict = match result.termination {
                    Termination::Enter => Verdict::Confirmed,
                    Termination::Escape => Verdict::Rejected,
                    Termination::Timeout => Verdict::Timeout,
                };
                (verdict, 0)
            }
            ConfirmMode::TypeCode => {
                let raw = env.get_random(4)?;
                let code = format!(
                    "{:06}",
                    u32::from_be_bytes(raw.try_into().expect("4 bytes")) % 1_000_000
                );
                env.show(
                    6,
                    &format!("To {}{} then press ENTER.", crate::pal::CODE_MARKER, code),
                )?;
                env.show(7, "Press ESC to reject.")?;
                let mut outcome = (Verdict::Rejected, self.max_code_attempts);
                for attempt in 1..=self.max_code_attempts {
                    let result = env.prompt_line()?;
                    match result.termination {
                        Termination::Escape => {
                            outcome = (Verdict::Rejected, attempt);
                            break;
                        }
                        Termination::Timeout => {
                            outcome = (Verdict::Timeout, attempt);
                            break;
                        }
                        Termination::Enter if result.text == code => {
                            outcome = (Verdict::Confirmed, attempt);
                            break;
                        }
                        Termination::Enter => {
                            env.show(9, &format!("Code incorrect ({} used).", attempt))?;
                        }
                    }
                }
                outcome
            }
        };
        let token = ConfirmationToken {
            tx_digest: request.transaction.digest(),
            nonce: request.nonce,
            mode: request.mode,
            verdict,
            attempts,
        };
        let token_bytes = token.to_bytes();
        let mac = hmac_sha256(&key, &token_bytes);
        let mut out = Vec::new();
        put_bytes(&mut out, &token_bytes);
        put_bytes(&mut out, mac.as_bytes());
        Ok(out)
    }
}

impl Pal for AmortizedPal {
    fn image(&self) -> &[u8] {
        &self.image
    }

    fn invoke(&mut self, env: &mut PalEnv<'_, '_>, input: &[u8]) -> Result<Vec<u8>, PalError> {
        let mut r = Reader::new(input);
        let tag = r.take(1).map_err(|e| PalError::Failed(e.to_string()))?[0];
        match tag {
            INPUT_TAG_SETUP => self.handle_setup(env, r),
            INPUT_TAG_CONFIRM => self.handle_confirm(env, r),
            other => Err(PalError::Failed(format!("unknown input tag {}", other))),
        }
    }
}

/// Evidence from an amortized confirmation: token + MAC, no quote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AmortizedEvidence {
    /// The client's identity at the provider (assigned during setup).
    pub client_id: u64,
    /// The PAL's token bytes.
    pub token_bytes: Vec<u8>,
    /// `HMAC-SHA256(K, token_bytes)`.
    pub mac: [u8; 32],
}

impl AmortizedEvidence {
    /// Wire encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_u64(&mut buf, self.client_id);
        put_bytes(&mut buf, &self.token_bytes);
        buf.extend_from_slice(&self.mac);
        buf
    }

    /// Parses the wire encoding.
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        let mut r = Reader::new(data);
        let client_id = r.u64().ok()?;
        let token_bytes = r.bytes().ok()?.to_vec();
        let mac: [u8; 32] = r.take(32).ok()?.try_into().ok()?;
        r.finish().ok()?;
        Some(AmortizedEvidence {
            client_id,
            token_bytes,
            mac,
        })
    }
}

/// Client-side state for the amortized protocol.
#[derive(Debug, Clone)]
pub struct AmortizedClient {
    enrollment: Enrollment,
    pal: AmortizedPal,
    client_id: Option<u64>,
    sealed_key: Option<SealedBlob>,
}

impl AmortizedClient {
    /// Creates an un-set-up client.
    pub fn new(enrollment: Enrollment) -> Self {
        AmortizedClient {
            enrollment,
            pal: AmortizedPal::v1(),
            client_id: None,
            sealed_key: None,
        }
    }

    /// True once setup has completed.
    pub fn is_set_up(&self) -> bool {
        self.client_id.is_some() && self.sealed_key.is_some()
    }

    /// Runs the attested setup session and registers with the verifier.
    ///
    /// # Errors
    ///
    /// Session failures as [`UtpError`]; registration failures as
    /// [`VerifyError`] via the verifier.
    pub fn setup(
        &mut self,
        machine: &mut Machine,
        verifier: &mut AmortizedVerifier,
    ) -> Result<SessionReport, UtpError> {
        let nonce = verifier.issue_setup_nonce();
        let mut input = vec![INPUT_TAG_SETUP];
        put_bytes(&mut input, &verifier.server_public().to_bytes());
        let mut silent = ScriptedOperator::silent();
        let mut pal = self.pal.clone();
        let report = run_pal(
            machine,
            &mut pal,
            &input,
            &mut silent,
            Some(AttestSpec {
                aik_handle: self.enrollment.aik_handle,
                nonce,
                selection: PcrSelection::drtm_only(),
            }),
        )?;
        // Parse the PAL output: key ciphertext + sealed blob.
        let mut r = Reader::new(&report.output);
        let key_ct = r
            .bytes()
            .map_err(|e| UtpError::Protocol(e.to_string()))?
            .to_vec();
        let blob_bytes = r
            .bytes()
            .map_err(|e| UtpError::Protocol(e.to_string()))?
            .to_vec();
        r.finish().map_err(|e| UtpError::Protocol(e.to_string()))?;
        let blob = SealedBlob::from_bytes(&blob_bytes)
            .ok_or_else(|| UtpError::Protocol("bad sealed blob from pal".into()))?;
        let client_id = verifier
            .register(
                &input,
                &report.output,
                &key_ct,
                report.quote.as_ref().expect("attested"),
                &self.enrollment.certificate.to_bytes(),
                nonce,
            )
            .map_err(|e| UtpError::Protocol(format!("registration rejected: {}", e)))?;
        self.client_id = Some(client_id);
        self.sealed_key = Some(blob);
        Ok(report)
    }

    /// Runs one amortized (MAC-authenticated, quote-free) confirmation.
    ///
    /// # Errors
    ///
    /// [`UtpError::Protocol`] if setup has not run; session errors
    /// otherwise.
    pub fn confirm_with_report(
        &mut self,
        machine: &mut Machine,
        request: &TransactionRequest,
        operator: &mut dyn Operator,
    ) -> Result<(AmortizedEvidence, SessionReport), UtpError> {
        let client_id = self
            .client_id
            .ok_or_else(|| UtpError::Protocol("setup has not run".into()))?;
        let blob = self
            .sealed_key
            .as_ref()
            .ok_or_else(|| UtpError::Protocol("setup has not run".into()))?;
        let mut input = vec![INPUT_TAG_CONFIRM];
        put_bytes(&mut input, &request.to_bytes());
        put_bytes(&mut input, &blob.to_bytes());
        let mut pal = self.pal.clone();
        let report = run_pal(machine, &mut pal, &input, operator, None)?;
        let mut r = Reader::new(&report.output);
        let token_bytes = r
            .bytes()
            .map_err(|e| UtpError::Protocol(e.to_string()))?
            .to_vec();
        let mac: [u8; 32] = r
            .bytes()
            .map_err(|e| UtpError::Protocol(e.to_string()))?
            .try_into()
            .map_err(|_| UtpError::Protocol("mac must be 32 bytes".into()))?;
        r.finish().map_err(|e| UtpError::Protocol(e.to_string()))?;
        Ok((
            AmortizedEvidence {
                client_id,
                token_bytes,
                mac,
            },
            report,
        ))
    }
}

/// Provider-side verifier for the amortized protocol.
pub struct AmortizedVerifier {
    ca_key: RsaPublicKey,
    server_keypair: RsaKeyPair,
    trusted_pal: Sha1Digest,
    keys: HashMap<u64, Vec<u8>>,
    next_client_id: u64,
    setup_nonces: HashSet<[u8; 20]>,
    pending: HashMap<[u8; 20], (Vec<u8>, Duration)>, // nonce -> (tx digest, issued_at)
    used: HashSet<[u8; 20]>,
    nonce_counter: u64,
    /// Accepted confirmations.
    pub accepted: u64,
}

// Redacting Debug: the per-client MAC keys and the server transport key
// are long-lived secrets; only bookkeeping state is printed.
impl std::fmt::Debug for AmortizedVerifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AmortizedVerifier")
            .field("next_client_id", &self.next_client_id)
            .field("clients", &self.keys.len())
            .field("accepted", &self.accepted)
            .field("secrets", &"<redacted>")
            .finish_non_exhaustive()
    }
}

impl AmortizedVerifier {
    /// Creates a verifier with its own RSA key for key transport.
    pub fn new(ca_key: RsaPublicKey, key_bits: usize, seed: u64) -> Self {
        AmortizedVerifier {
            ca_key,
            server_keypair: RsaKeyPair::generate(key_bits, seed ^ 0x414d_4f52),
            trusted_pal: AmortizedPal::v1().measurement(),
            keys: HashMap::new(),
            next_client_id: 1,
            setup_nonces: HashSet::new(),
            pending: HashMap::new(),
            used: HashSet::new(),
            nonce_counter: 0,
            accepted: 0,
        }
    }

    /// The provider's key-transport public key (embedded in setup input).
    pub fn server_public(&self) -> &RsaPublicKey {
        self.server_keypair.public()
    }

    /// Number of registered clients.
    pub fn clients(&self) -> usize {
        self.keys.len()
    }

    fn fresh_nonce(&mut self) -> Sha1Digest {
        self.nonce_counter += 1;
        Sha1::digest_concat(b"amortized-nonce", &self.nonce_counter.to_be_bytes())
    }

    /// Issues a nonce for a setup session.
    pub fn issue_setup_nonce(&mut self) -> Sha1Digest {
        let n = self.fresh_nonce();
        self.setup_nonces.insert(*n.as_bytes());
        n
    }

    /// Verifies a setup session's quote and registers the client key.
    ///
    /// # Errors
    ///
    /// [`VerifyError`] variants on any failed check.
    pub fn register(
        &mut self,
        setup_input: &[u8],
        setup_output: &[u8],
        key_ct: &[u8],
        quote: &utp_tpm::quote::Quote,
        aik_cert: &[u8],
        nonce: Sha1Digest,
    ) -> Result<u64, VerifyError> {
        if !self.setup_nonces.remove(nonce.as_bytes()) {
            return Err(VerifyError::UnknownNonce);
        }
        let cert =
            crate::ca::AikCertificate::from_bytes(aik_cert).ok_or(VerifyError::BadCertificate)?;
        let aik = cert
            .validate(&self.ca_key)
            .ok_or(VerifyError::BadCertificate)?;
        let io = utp_flicker::runtime::io_digest(setup_input, setup_output);
        utp_flicker::attestation::check_attested_session(
            &aik,
            &nonce,
            &self.trusted_pal,
            &io,
            quote,
        )
        .map_err(|_| VerifyError::UntrustedPal)?;
        let key = self
            .server_keypair
            .decrypt_pkcs1(key_ct)
            .map_err(|_| VerifyError::MalformedEvidence)?;
        if key.len() != 32 {
            return Err(VerifyError::MalformedEvidence);
        }
        let id = self.next_client_id;
        self.next_client_id += 1;
        self.keys.insert(id, key);
        Ok(id)
    }

    /// Issues a confirmation request (same shape as the base protocol).
    pub fn issue_request(
        &mut self,
        tx: crate::protocol::Transaction,
        mode: ConfirmMode,
        now: Duration,
    ) -> TransactionRequest {
        let nonce = self.fresh_nonce();
        self.pending
            .insert(*nonce.as_bytes(), (tx.digest().as_bytes().to_vec(), now));
        TransactionRequest {
            transaction: tx,
            nonce,
            mode,
        }
    }

    /// Verifies amortized evidence: MAC under the client's key, nonce
    /// freshness, transaction binding, verdict.
    ///
    /// # Errors
    ///
    /// [`VerifyError`] variants on any failed check.
    pub fn verify(
        &mut self,
        evidence: &AmortizedEvidence,
    ) -> Result<ConfirmationToken, VerifyError> {
        let key = self
            .keys
            .get(&evidence.client_id)
            .ok_or(VerifyError::BadCertificate)?;
        let expect = hmac_sha256(key, &evidence.token_bytes);
        if !utp_crypto::ct::ct_eq(expect.as_bytes(), &evidence.mac) {
            return Err(VerifyError::BadQuote);
        }
        let token = ConfirmationToken::from_bytes(&evidence.token_bytes)
            .map_err(|_| VerifyError::MalformedEvidence)?;
        let nonce_bytes = *token.nonce.as_bytes();
        if self.used.contains(&nonce_bytes) {
            return Err(VerifyError::Replayed);
        }
        let (tx_digest, _issued_at) = self
            .pending
            .remove(&nonce_bytes)
            .ok_or(VerifyError::UnknownNonce)?;
        self.used.insert(nonce_bytes);
        if token.tx_digest.as_bytes().as_slice() != tx_digest.as_slice() {
            return Err(VerifyError::TokenMismatch);
        }
        if token.verdict != Verdict::Confirmed {
            return Err(VerifyError::NotConfirmed(token.verdict));
        }
        self.accepted += 1;
        Ok(token)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::PrivacyCa;
    use crate::operator::{ConfirmingHuman, Intent};
    use crate::protocol::Transaction;
    use utp_platform::machine::MachineConfig;

    fn setup_world(seed: u64) -> (AmortizedVerifier, Machine, AmortizedClient) {
        let ca = PrivacyCa::new(512, seed);
        let mut verifier = AmortizedVerifier::new(ca.public_key().clone(), 512, seed + 1);
        let mut machine = Machine::new(MachineConfig::fast_for_tests(seed + 2));
        let enrollment = ca.enroll(&mut machine);
        let mut client = AmortizedClient::new(enrollment);
        client
            .setup(&mut machine, &mut verifier)
            .expect("setup runs");
        (verifier, machine, client)
    }

    #[test]
    fn setup_registers_exactly_one_client() {
        let (verifier, _machine, client) = setup_world(700);
        assert!(client.is_set_up());
        assert_eq!(verifier.clients(), 1);
    }

    #[test]
    fn amortized_confirmation_verifies_without_quote() {
        let (mut verifier, mut machine, mut client) = setup_world(710);
        let tx = Transaction::new(1, "shop.example", 4_200, "EUR", "order");
        let request = verifier.issue_request(tx.clone(), ConfirmMode::PressEnter, machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&tx), 711);
        let (evidence, report) = client
            .confirm_with_report(&mut machine, &request, &mut human)
            .unwrap();
        assert!(report.quote.is_none(), "no quote in amortized mode");
        let token = verifier.verify(&evidence).unwrap();
        assert_eq!(token.tx_digest, tx.digest());
        assert_eq!(verifier.accepted, 1);
    }

    #[test]
    fn replay_rejected() {
        let (mut verifier, mut machine, mut client) = setup_world(720);
        let tx = Transaction::new(2, "shop.example", 100, "EUR", "");
        let request = verifier.issue_request(tx.clone(), ConfirmMode::PressEnter, machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&tx), 721);
        let (evidence, _) = client
            .confirm_with_report(&mut machine, &request, &mut human)
            .unwrap();
        verifier.verify(&evidence).unwrap();
        assert_eq!(
            verifier.verify(&evidence).unwrap_err(),
            VerifyError::Replayed
        );
    }

    #[test]
    fn tampered_token_fails_mac() {
        let (mut verifier, mut machine, mut client) = setup_world(730);
        let tx = Transaction::new(3, "shop.example", 100, "EUR", "");
        let request = verifier.issue_request(tx.clone(), ConfirmMode::PressEnter, machine.now());
        // The human rejects; malware flips the verdict.
        let mut human = ConfirmingHuman::new(Intent::rejecting(), 731);
        let (mut evidence, _) = client
            .confirm_with_report(&mut machine, &request, &mut human)
            .unwrap();
        let mut token = ConfirmationToken::from_bytes(&evidence.token_bytes).unwrap();
        token.verdict = Verdict::Confirmed;
        evidence.token_bytes = token.to_bytes();
        assert_eq!(
            verifier.verify(&evidence).unwrap_err(),
            VerifyError::BadQuote
        );
    }

    #[test]
    fn evil_pal_cannot_unseal_the_key() {
        let (mut verifier, mut machine, mut client) = setup_world(740);
        // Malware reuses the client's sealed blob with its own PAL image.
        struct EvilAmortized {
            blob: Vec<u8>,
        }
        impl Pal for EvilAmortized {
            fn image(&self) -> &[u8] {
                b"EVIL-AMORTIZED"
            }
            fn invoke(
                &mut self,
                env: &mut PalEnv<'_, '_>,
                _input: &[u8],
            ) -> Result<Vec<u8>, PalError> {
                let blob = SealedBlob::from_bytes(&self.blob).expect("blob parses");
                // The unseal must fail: PCR 17 holds EVIL-AMORTIZED's
                // measurement, not AmortizedPal v1's.
                match env.unseal(SRK_HANDLE, &blob) {
                    Ok(key) => Ok(key), // would be a security failure
                    Err(e) => Err(PalError::Failed(e.to_string())),
                }
            }
        }
        let blob = client.sealed_key.clone().unwrap();
        let mut evil = EvilAmortized {
            blob: blob.to_bytes(),
        };
        let mut silent = ScriptedOperator::silent();
        let err = run_pal(&mut machine, &mut evil, b"", &mut silent, None).unwrap_err();
        assert!(err.to_string().contains("pcr"), "{}", err);
        // And the legitimate client still works afterwards.
        let tx = Transaction::new(4, "shop.example", 100, "EUR", "");
        let request = verifier.issue_request(tx.clone(), ConfirmMode::PressEnter, machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&tx), 741);
        let (evidence, _) = client
            .confirm_with_report(&mut machine, &request, &mut human)
            .unwrap();
        verifier.verify(&evidence).unwrap();
    }

    #[test]
    fn confirm_before_setup_is_an_error() {
        let ca = PrivacyCa::new(512, 750);
        let mut verifier = AmortizedVerifier::new(ca.public_key().clone(), 512, 751);
        let mut machine = Machine::new(MachineConfig::fast_for_tests(752));
        let enrollment = ca.enroll(&mut machine);
        let mut client = AmortizedClient::new(enrollment);
        let tx = Transaction::new(5, "shop.example", 100, "EUR", "");
        let request = verifier.issue_request(tx.clone(), ConfirmMode::PressEnter, machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&tx), 753);
        let err = client
            .confirm_with_report(&mut machine, &request, &mut human)
            .unwrap_err();
        assert!(err.to_string().contains("setup"));
    }

    #[test]
    fn setup_with_wrong_pal_is_rejected_by_registration() {
        // A client that runs the *base* ConfirmationPal for setup would
        // produce a quote over the wrong measurement. Simulate by
        // corrupting the trusted measurement after a genuine setup.
        let ca = PrivacyCa::new(512, 760);
        let mut verifier = AmortizedVerifier::new(ca.public_key().clone(), 512, 761);
        verifier.trusted_pal = Sha1::digest(b"some other pal");
        let mut machine = Machine::new(MachineConfig::fast_for_tests(762));
        let enrollment = ca.enroll(&mut machine);
        let mut client = AmortizedClient::new(enrollment);
        let err = client.setup(&mut machine, &mut verifier).unwrap_err();
        assert!(err.to_string().contains("registration rejected"));
        assert_eq!(verifier.clients(), 0);
    }

    #[test]
    fn evidence_wire_roundtrip() {
        let ev = AmortizedEvidence {
            client_id: 9,
            token_bytes: vec![1, 2, 3],
            mac: [7u8; 32],
        };
        assert_eq!(AmortizedEvidence::from_bytes(&ev.to_bytes()).unwrap(), ev);
        assert!(AmortizedEvidence::from_bytes(&ev.to_bytes()[..10]).is_none());
    }

    #[test]
    fn amortized_saves_tpm_time_versus_quote_mode() {
        use utp_tpm::VendorProfile;
        // Same vendor, same transaction; compare machine-only time of a
        // quote-mode confirmation vs an amortized one.
        let ca = PrivacyCa::new(512, 770);
        // Quote mode.
        let mut verifier_q = crate::verifier::Verifier::new(ca.public_key().clone(), 771);
        let mut machine_q = Machine::new(MachineConfig::realistic(VendorProfile::Broadcom, 772));
        let enrollment_q = ca.enroll(&mut machine_q);
        let mut client_q =
            crate::client::Client::new(crate::client::ClientConfig::fast_for_tests(), enrollment_q);
        let tx = Transaction::new(1, "shop.example", 100, "EUR", "");
        let request = verifier_q.issue_request_with_mode(
            tx.clone(),
            ConfirmMode::PressEnter,
            machine_q.now(),
        );
        let mut human = ConfirmingHuman::new(Intent::approving(&tx), 773);
        let (_, report_q) = client_q
            .confirm_with_report(&mut machine_q, &request, &mut human)
            .unwrap();
        // Amortized mode (setup excluded — it is amortized).
        let mut verifier_a = AmortizedVerifier::new(ca.public_key().clone(), 512, 774);
        let mut machine_a = Machine::new(MachineConfig::realistic(VendorProfile::Broadcom, 775));
        let enrollment_a = ca.enroll(&mut machine_a);
        let mut client_a = AmortizedClient::new(enrollment_a);
        client_a.setup(&mut machine_a, &mut verifier_a).unwrap();
        let request =
            verifier_a.issue_request(tx.clone(), ConfirmMode::PressEnter, machine_a.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&tx), 776);
        let (_, report_a) = client_a
            .confirm_with_report(&mut machine_a, &request, &mut human)
            .unwrap();
        assert!(
            report_a.timings.machine_only() < report_q.timings.machine_only(),
            "amortized {:?} should beat quote-mode {:?} on Broadcom",
            report_a.timings.machine_only(),
            report_q.timings.machine_only()
        );
    }
}
