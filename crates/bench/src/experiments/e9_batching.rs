//! E9 (ablation) — batch confirmation: per-transaction machine cost vs
//! batch size. The session's fixed costs (suspend, SKINIT, quote, resume)
//! amortize as `fixed/k`, so the curve should fall hyperbolically and
//! flatten at the per-transaction floor.
//!
//! Regenerate: `cargo run -p utp-bench --bin e9_batching`

use crate::table;
use std::time::Duration;
use utp_core::batch::{BatchClient, BatchVerifier};
use utp_core::ca::PrivacyCa;
use utp_core::protocol::Transaction;
use utp_flicker::pal::{Operator, OperatorResponse};
use utp_platform::keyboard::KeyEvent;
use utp_platform::machine::{Machine, MachineConfig};
use utp_tpm::VendorProfile;

/// One batch-size measurement.
#[derive(Debug, Clone)]
pub struct BatchRow {
    /// Transactions per session.
    pub batch_size: usize,
    /// Machine-only session time.
    pub session_machine_only: Duration,
    /// Machine-only time per transaction.
    pub per_transaction: Duration,
    /// Human time per transaction.
    pub human_per_transaction: Duration,
    /// All transactions settled?
    pub all_confirmed: bool,
}

/// An operator approving everything with a fixed 2 s read-and-press time.
struct ApproveAll;
impl Operator for ApproveAll {
    fn respond(&mut self, _screen: &[String]) -> OperatorResponse {
        OperatorResponse {
            events: vec![KeyEvent::Enter],
            elapsed: Duration::from_secs(2),
        }
    }
}

/// Runs the batch-size sweep on an Infineon-profile machine.
pub fn run(key_bits: usize) -> Vec<BatchRow> {
    [1usize, 2, 4, 8, 16]
        .iter()
        .map(|&k| {
            let ca = PrivacyCa::new(key_bits, 91);
            let mut verifier = BatchVerifier::new(ca.public_key().clone());
            let mut machine = Machine::new(MachineConfig::realistic(VendorProfile::Infineon, 92));
            let enrollment = ca.enroll(&mut machine);
            let mut client = BatchClient::new(enrollment);
            let transactions: Vec<Transaction> = (0..k)
                .map(|i| Transaction::new(i as u64, format!("shop-{}.example", i), 100, "EUR", ""))
                .collect();
            let request = verifier.issue_batch(transactions, machine.now());
            let mut op = ApproveAll;
            let (evidence, report) = client
                .confirm_batch(&mut machine, &request, &mut op)
                .expect("batch session runs");
            let confirmed = verifier.verify(&evidence).expect("batch verifies");
            let machine_only = report.timings.machine_only();
            BatchRow {
                batch_size: k,
                session_machine_only: machine_only,
                per_transaction: machine_only / k as u32,
                human_per_transaction: report.timings.human / k as u32,
                all_confirmed: confirmed.len() == k,
            }
        })
        .collect()
}

/// Renders the E9 table.
pub fn render(rows: &[BatchRow]) -> String {
    table::render(
        "E9 - ablation: batch confirmation, per-transaction machine cost (Infineon, ms)",
        &[
            "batch",
            "session machine-only",
            "per-tx machine",
            "per-tx human",
            "all confirmed",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.batch_size.to_string(),
                    table::ms(r.session_machine_only),
                    table::ms(r.per_transaction),
                    table::ms(r.human_per_transaction),
                    r.all_confirmed.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_transaction_cost_falls_with_batch_size() {
        let rows = run(512);
        for pair in rows.windows(2) {
            assert!(
                pair[1].per_transaction < pair[0].per_transaction,
                "batch {} → {} did not reduce per-tx cost",
                pair[0].batch_size,
                pair[1].batch_size
            );
        }
    }

    #[test]
    fn everything_confirms_at_every_size() {
        for r in run(512) {
            assert!(r.all_confirmed, "batch {}", r.batch_size);
        }
    }

    #[test]
    fn amortization_approaches_a_floor() {
        let rows = run(512);
        let k1 = rows.first().unwrap().per_transaction;
        let k16 = rows.last().unwrap().per_transaction;
        // Large batches should cut per-tx machine cost by at least 4x...
        assert!(k16 * 4 < k1, "k1 {:?} k16 {:?}", k1, k16);
        // ...but the human time per transaction stays roughly flat.
        let h1 = rows.first().unwrap().human_per_transaction;
        let h16 = rows.last().unwrap().human_per_transaction;
        assert!(h16 > h1 / 2 && h16 < h1 * 2);
    }
}
