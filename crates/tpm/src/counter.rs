//! Monotonic counters (`TPM_CreateCounter` / `TPM_IncrementCounter`).
//!
//! The trusted-path client uses a monotonic counter to give sealed PAL
//! state rollback protection: the PAL seals `(state, counter_value)` and on
//! the next launch refuses state whose counter lags the hardware counter.

use crate::error::TpmError;
use std::collections::HashMap;

/// First handle assigned to created counters.
pub const FIRST_COUNTER_HANDLE: u32 = 0x0200_0000;

/// The TPM's monotonic counter bank.
///
/// TPM 1.2 allows incrementing only one counter per boot "epoch"; we model
/// the simpler (strictly stronger for the adversary) semantics of fully
/// independent counters, which is what the protocol relies on.
#[derive(Debug, Clone, Default)]
pub struct CounterBank {
    counters: HashMap<u32, u64>,
    next_handle: u32,
}

impl CounterBank {
    /// Creates an empty bank.
    pub fn new() -> Self {
        CounterBank {
            counters: HashMap::new(),
            next_handle: FIRST_COUNTER_HANDLE,
        }
    }

    /// Creates a counter starting at zero; returns its handle.
    pub fn create(&mut self) -> u32 {
        let h = self.next_handle;
        self.next_handle += 1;
        self.counters.insert(h, 0);
        h
    }

    /// Reads a counter.
    pub fn read(&self, handle: u32) -> Result<u64, TpmError> {
        self.counters
            .get(&handle)
            .copied()
            .ok_or(TpmError::BadCounterHandle(handle))
    }

    /// Increments a counter, returning the new value.
    pub fn increment(&mut self, handle: u32) -> Result<u64, TpmError> {
        let c = self
            .counters
            .get_mut(&handle)
            .ok_or(TpmError::BadCounterHandle(handle))?;
        *c += 1;
        Ok(*c)
    }

    /// Number of counters defined.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True if no counters exist.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_increment() {
        let mut bank = CounterBank::new();
        let h = bank.create();
        assert_eq!(bank.read(h).unwrap(), 0);
        assert_eq!(bank.increment(h).unwrap(), 1);
        assert_eq!(bank.increment(h).unwrap(), 2);
        assert_eq!(bank.read(h).unwrap(), 2);
    }

    #[test]
    fn counters_are_independent() {
        let mut bank = CounterBank::new();
        let a = bank.create();
        let b = bank.create();
        assert_ne!(a, b);
        bank.increment(a).unwrap();
        assert_eq!(bank.read(a).unwrap(), 1);
        assert_eq!(bank.read(b).unwrap(), 0);
    }

    #[test]
    fn unknown_handle_errors() {
        let mut bank = CounterBank::new();
        assert!(bank.read(1).is_err());
        assert!(bank.increment(1).is_err());
    }

    #[test]
    fn monotonicity_under_many_increments() {
        let mut bank = CounterBank::new();
        let h = bank.create();
        let mut last = 0;
        for _ in 0..1000 {
            let v = bank.increment(h).unwrap();
            assert!(v > last);
            last = v;
        }
    }
}
