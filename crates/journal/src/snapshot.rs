//! Snapshot encoding: a whole [`RecoveredState`] as one checksummed
//! frame on the snapshot device.
//!
//! Snapshots are appended, never rewritten in place: a torn snapshot
//! write therefore can't destroy the previous good one. Decoding scans
//! for frames and takes the **last valid** snapshot; replay then folds
//! in only log records with `seq > snapshot.last_seq`.

use std::time::Duration;

use utp_core::protocol::{Transaction, TransactionRequest};
use utp_core::verifier::PendingNonce;
use utp_flicker::marshal::{put_bytes, put_u32, put_u64, Reader};

use crate::record::{crc32, decode_outcome, encode_outcome, NO_ORDER};
use crate::recover::{RecoveredDecision, RecoveredOrder, RecoveredState, RecoveredStatus};

/// First byte of a snapshot frame (distinct from the WAL magic so a
/// mis-routed device is caught immediately).
pub const SNAPSHOT_MAGIC: u8 = 0x5A;

/// Snapshot payload format version.
const SNAPSHOT_VERSION: u32 = 1;

const STATUS_PENDING: u8 = 0;
const STATUS_CONFIRMED: u8 = 1;
const STATUS_REJECTED: u8 = 2;

fn encode_state(state: &RecoveredState) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u32(&mut buf, SNAPSHOT_VERSION);
    put_u64(&mut buf, state.last_seq);
    put_u64(&mut buf, state.next_order_id);
    put_u64(&mut buf, state.max_tx_id);

    put_u32(&mut buf, state.accounts.len() as u32);
    for (name, balance) in &state.accounts {
        put_bytes(&mut buf, name.as_bytes());
        put_u64(&mut buf, *balance as u64);
    }

    put_u32(&mut buf, state.orders.len() as u32);
    for (id, order) in &state.orders {
        put_u64(&mut buf, *id);
        put_bytes(&mut buf, order.account.as_bytes());
        put_bytes(&mut buf, &order.transaction.to_bytes());
        match &order.status {
            RecoveredStatus::Pending => buf.push(STATUS_PENDING),
            RecoveredStatus::Confirmed => buf.push(STATUS_CONFIRMED),
            RecoveredStatus::Rejected(e) => {
                buf.push(STATUS_REJECTED);
                encode_outcome(&mut buf, &Err(*e));
            }
        }
    }

    // Pending nonces: the request bytes carry the nonce and transaction,
    // so only (issued_at, request_bytes) need storing.
    put_u32(&mut buf, state.pending.len() as u32);
    for pending in state.pending.values() {
        put_u64(&mut buf, pending.issued_at.as_nanos() as u64);
        put_bytes(&mut buf, &pending.request_bytes);
    }

    put_u32(&mut buf, state.used.len() as u32);
    for nonce in &state.used {
        buf.extend_from_slice(nonce);
    }

    put_u32(&mut buf, state.audit.len() as u32);
    for d in &state.audit {
        put_u64(&mut buf, d.at.as_nanos() as u64);
        put_u64(&mut buf, d.order_id.unwrap_or(NO_ORDER));
        encode_outcome(&mut buf, &d.outcome);
    }
    buf
}

fn decode_state(bytes: &[u8]) -> Option<RecoveredState> {
    let mut r = Reader::new(bytes);
    if r.u32().ok()? != SNAPSHOT_VERSION {
        return None;
    }
    let mut state = RecoveredState {
        last_seq: r.u64().ok()?,
        next_order_id: r.u64().ok()?,
        max_tx_id: r.u64().ok()?,
        ..RecoveredState::default()
    };

    let n_accounts = r.u32().ok()?;
    for _ in 0..n_accounts {
        let name = String::from_utf8(r.bytes().ok()?.to_vec()).ok()?;
        let balance = r.u64().ok()? as i64;
        state.accounts.insert(name, balance);
    }

    let n_orders = r.u32().ok()?;
    for _ in 0..n_orders {
        let id = r.u64().ok()?;
        let account = String::from_utf8(r.bytes().ok()?.to_vec()).ok()?;
        let transaction = Transaction::from_bytes(r.bytes().ok()?).ok()?;
        let status = match *r.take(1).ok()?.first()? {
            STATUS_PENDING => RecoveredStatus::Pending,
            STATUS_CONFIRMED => RecoveredStatus::Confirmed,
            STATUS_REJECTED => match decode_outcome(&mut r)? {
                Err(e) => RecoveredStatus::Rejected(e),
                Ok(()) => return None,
            },
            _ => return None,
        };
        state.orders.insert(
            id,
            RecoveredOrder {
                account,
                transaction,
                status,
            },
        );
    }

    let n_pending = r.u32().ok()?;
    for _ in 0..n_pending {
        let issued_at = Duration::from_nanos(r.u64().ok()?);
        let request_bytes = r.bytes().ok()?.to_vec();
        let request = TransactionRequest::from_bytes(&request_bytes).ok()?;
        state.pending.insert(
            *request.nonce.as_bytes(),
            PendingNonce {
                request_bytes,
                transaction: request.transaction,
                issued_at,
            },
        );
    }

    let n_used = r.u32().ok()?;
    for _ in 0..n_used {
        let nonce: [u8; 20] = r.take(20).ok()?.try_into().ok()?;
        state.used.insert(nonce);
    }

    let n_audit = r.u32().ok()?;
    for _ in 0..n_audit {
        let at = Duration::from_nanos(r.u64().ok()?);
        let order_id = r.u64().ok()?;
        let outcome = decode_outcome(&mut r)?;
        state.audit.push(RecoveredDecision {
            at,
            order_id: (order_id != NO_ORDER).then_some(order_id),
            outcome,
        });
    }
    r.finish().ok()?;
    Some(state)
}

/// Encodes `state` as one snapshot frame (magic + len + crc + payload).
pub fn encode_snapshot(state: &RecoveredState) -> Vec<u8> {
    let payload = encode_state(state);
    let mut frame = Vec::with_capacity(9 + payload.len());
    frame.push(SNAPSHOT_MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Decodes the **last valid** snapshot frame in `bytes` (the snapshot
/// device's durable contents). Returns `None` if no valid snapshot
/// exists. Never panics; torn or corrupt frames end the scan, so a
/// half-written newest snapshot falls back to the previous one.
pub fn decode_snapshot(bytes: &[u8]) -> Option<RecoveredState> {
    let mut best = None;
    let mut pos = 0usize;
    while bytes.len() - pos >= 9 {
        if bytes[pos] != SNAPSHOT_MAGIC {
            break;
        }
        let len = u32::from_le_bytes([
            bytes[pos + 1],
            bytes[pos + 2],
            bytes[pos + 3],
            bytes[pos + 4],
        ]) as usize;
        let crc = u32::from_le_bytes([
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
            bytes[pos + 8],
        ]);
        let start = pos + 9;
        if bytes.len() - start < len {
            break;
        }
        let payload = &bytes[start..start + len];
        if crc32(payload) != crc {
            break;
        }
        if let Some(state) = decode_state(payload) {
            best = Some(state);
        } else {
            break;
        }
        pos = start + len;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeMap, BTreeSet};
    use utp_core::protocol::ConfirmMode;
    use utp_core::verifier::VerifyError;
    use utp_crypto::sha1::Sha1Digest;

    fn sample_state() -> RecoveredState {
        let tx = Transaction::new(3, "shop", 750, "EUR", "memo");
        let request = TransactionRequest {
            transaction: tx.clone(),
            nonce: Sha1Digest([0x55; 20]),
            mode: ConfirmMode::TypeCode,
        };
        let mut accounts = BTreeMap::new();
        accounts.insert("alice".to_string(), -120);
        accounts.insert("bob".to_string(), 9_000);
        let mut orders = BTreeMap::new();
        orders.insert(
            1,
            RecoveredOrder {
                account: "alice".into(),
                transaction: tx.clone(),
                status: RecoveredStatus::Confirmed,
            },
        );
        orders.insert(
            2,
            RecoveredOrder {
                account: "bob".into(),
                transaction: tx.clone(),
                status: RecoveredStatus::Rejected(VerifyError::Expired),
            },
        );
        let mut pending = BTreeMap::new();
        pending.insert(
            [0x55; 20],
            PendingNonce {
                request_bytes: request.to_bytes(),
                transaction: tx,
                issued_at: Duration::from_secs(9),
            },
        );
        let mut used = BTreeSet::new();
        used.insert([1; 20]);
        used.insert([2; 20]);
        RecoveredState {
            accounts,
            orders,
            pending,
            used,
            audit: vec![RecoveredDecision {
                at: Duration::from_secs(10),
                order_id: Some(1),
                outcome: Ok(()),
            }],
            next_order_id: 3,
            max_tx_id: 3,
            last_seq: 17,
        }
    }

    #[test]
    fn snapshot_roundtrips() {
        let state = sample_state();
        let frame = encode_snapshot(&state);
        let decoded = decode_snapshot(&frame).expect("snapshot decodes");
        assert_eq!(decoded, state);
    }

    #[test]
    fn last_valid_snapshot_wins() {
        let mut old = sample_state();
        old.last_seq = 5;
        let new = sample_state();
        let mut media = encode_snapshot(&old);
        media.extend_from_slice(&encode_snapshot(&new));
        assert_eq!(decode_snapshot(&media).expect("decodes").last_seq, 17);
    }

    #[test]
    fn torn_newest_snapshot_falls_back_to_previous() {
        let old = sample_state();
        let new_frame = encode_snapshot(&sample_state());
        let mut media = encode_snapshot(&old);
        media.extend_from_slice(&new_frame[..new_frame.len() / 2]);
        let decoded = decode_snapshot(&media).expect("falls back");
        assert_eq!(decoded, old);
    }

    #[test]
    fn corruption_never_panics_and_fails_closed() {
        let frame = encode_snapshot(&sample_state());
        assert!(decode_snapshot(&[]).is_none());
        assert!(decode_snapshot(&frame[..4]).is_none());
        for byte in 0..frame.len() {
            let mut corrupt = frame.clone();
            corrupt[byte] ^= 0x10;
            // Must not panic; result is either None or (when the flip is
            // detected) never a silently different state.
            let _ = decode_snapshot(&corrupt);
        }
    }

    #[test]
    fn empty_state_roundtrips() {
        let state = RecoveredState::default();
        let frame = encode_snapshot(&state);
        assert_eq!(decode_snapshot(&frame).expect("decodes"), state);
    }
}
