// Fed as `crates/server/src/svc.rs`. Four lock-discipline violations:
// a guard held across a blocking `recv()`, an a->b / b->a ordering
// cycle (one finding per edge site), and a re-entrant double lock.
pub fn forward(a: &Mutex<u32>, rx: &Receiver<u32>) {
    let guard = a.lock();
    let _msg = rx.recv();
    let _ = guard;
}

pub fn order_ab(a: &Mutex<u32>, b: &Mutex<u32>) {
    let ga = a.lock();
    let gb = b.lock();
    let _ = (ga, gb);
}

pub fn order_ba(a: &Mutex<u32>, b: &Mutex<u32>) {
    let gb = b.lock();
    let ga = a.lock();
    let _ = (ga, gb);
}

pub fn double(a: &Mutex<u32>) {
    let g1 = a.lock();
    let g2 = a.lock();
    let _ = (g1, g2);
}
