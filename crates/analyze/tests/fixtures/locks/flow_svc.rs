// Fed as `crates/server/src/flow_svc.rs`. Flow-sensitive lockset
// cases: a guard dropped on only one path is still held across the
// other path's recv() (deny); a guard moved into a call before a
// recv() is released (clean — the old extent scan flagged this); a
// guarded read reused under a re-acquired lock is stale (deny); and a
// `.lock().register(..)` chained call must not resolve by name to the
// locking `register` below (clean — the old folding flagged this).
pub fn branchy(a: &Mutex<u32>, rx: &Receiver<u32>, fast: bool) {
    let g = a.lock();
    if fast {
        drop(g);
    } else {
        let _m = rx.recv();
    }
}

pub fn handoff(a: &Mutex<u32>, rx: &Receiver<u32>) {
    let g = a.lock();
    consume(g);
    let _m = rx.recv();
}

pub fn stale_resume(a: &Mutex<Ledger>) {
    let g = a.lock();
    let head = g.head;
    drop(g);
    let g2 = a.lock();
    g2.apply(head);
}

pub fn restore(svc: &Svc) {
    svc.ledger.lock().register(7);
}

pub fn register(svc: &Svc) {
    let g = svc.ledger.lock();
    g.push(7);
}

pub fn consume(_g: MutexGuard<u32>) {}
