//! E13 — fleet-scale load: where does the verification pipeline
//! saturate, and does it degrade or collapse past that point?
//!
//! **Part A** sweeps offered load across fleet sizes on the
//! deterministic `utp-netsim` simulator (admission control on) and
//! reports goodput, latency quantiles, and shed rate — the knee of the
//! goodput-vs-offered-load curve is the service's capacity.
//!
//! **Part B** replays the overload region twice with identical seeds:
//! once with the legacy silently-dropping bounded queue, once with
//! admission control (early shed + typed retry-after). The silent
//! queue lets queueing delay exceed the client timeout, so clients
//! resend evidence that is still in flight — duplicate verifications
//! eat the workers and goodput collapses. Admission keeps the queue
//! (and so the delay) bounded, and overload degrades into shed rate
//! instead.
//!
//! **Part C** samples fleet clients through the real stack
//! ([`FleetStackHook`]: genuine DRTM evidence, journaled provider)
//! under a loss-driven replay storm and checks that replays never
//! double-spend.
//!
//! Regenerate: `cargo run --release -p utp-bench --bin e13_fleet`

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::table;
use utp_journal::{Journal, JournalConfig};
use utp_netsim::{
    AdmissionConfig, ArrivalCurve, FleetReport, LinkConfig, LinkProfile, Scenario, Topology,
};
use utp_server::flow::FleetStackHook;

/// Worker threads in the modeled verification pool (Part A).
pub const WORKERS: u32 = 4;
/// Modeled cost of one evidence verification (Part A).
pub const VERIFY_COST: Duration = Duration::from_micros(120);
/// Hubs in the two-tier sweep topology; fleet sizes must divide evenly.
pub const HUBS: u32 = 10;
/// Base seed; every scenario derives its own from this.
pub const SEED: u64 = 13;

/// Jobs/second the modeled pool can verify (the expected knee).
pub fn capacity_per_sec() -> f64 {
    f64::from(WORKERS) / VERIFY_COST.as_secs_f64()
}

/// One saturation-sweep measurement.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Fleet size.
    pub fleet: u32,
    /// Offered load as a percentage of capacity (100 = at capacity).
    pub load_pct: u32,
    /// Orders offered per virtual second.
    pub offered_per_sec: f64,
    /// The full fleet report.
    pub report: FleetReport,
    /// Host seconds the simulation took.
    pub host_secs: f64,
}

/// One admission-comparison measurement (Part B).
#[derive(Debug, Clone)]
pub struct AdmissionRow {
    /// Offered load as a percentage of capacity.
    pub load_pct: u32,
    /// `"silent"` (legacy bounded queue) or `"admission"`.
    pub mode: &'static str,
    /// The full fleet report.
    pub report: FleetReport,
    /// Host seconds the simulation took.
    pub host_secs: f64,
}

/// The sampled full-stack replay-storm measurement (Part C).
#[derive(Debug, Clone)]
pub struct FullStackRow {
    /// Fleet size.
    pub fleet: u32,
    /// Every n-th client runs the real stack.
    pub sampled_every: u32,
    /// The full fleet report (its `full_stack` tally is the point).
    pub report: FleetReport,
    /// Settles the real ledger saw beyond one per settled order — the
    /// double-spend count, which must be zero.
    pub double_spends: u64,
    /// Host seconds the run took (real RSA on the sampled path).
    pub host_secs: f64,
}

/// The full E13 report.
#[derive(Debug, Clone)]
pub struct Report {
    /// Part A rows, grouped by fleet size then load.
    pub sweep: Vec<SweepRow>,
    /// Part B rows, grouped by load then mode.
    pub admission: Vec<AdmissionRow>,
    /// Part C row.
    pub full_stack: FullStackRow,
}

/// Part A scenario: clean two-tier network, admission on, load set by
/// squeezing the arrival horizon against the pool's capacity.
fn sweep_scenario(fleet: u32, load_pct: u32, seed: u64) -> Scenario {
    let core = LinkProfile::clean(LinkConfig::fixed_rtt_bw(
        Duration::from_millis(4),
        50_000_000,
    ));
    let leaf = LinkProfile::clean(LinkConfig::broadband());
    let topo = Topology::two_tier(HUBS, fleet / HUBS, core, leaf);
    let offered = capacity_per_sec() * f64::from(load_pct) / 100.0;
    let horizon = Duration::from_secs_f64(f64::from(fleet) / offered);
    let mut sc = Scenario::new(topo, ArrivalCurve::Steady, horizon, seed);
    sc.provider.workers = WORKERS;
    sc.provider.verify_cost = VERIFY_COST;
    sc.provider.queue_limit = 4096;
    // Shed once ~256 jobs (≈7.7 ms of delay) are waiting; the hint
    // grows with the backlog so retries pace themselves.
    sc.provider.admission = Some(AdmissionConfig::for_service_time(
        256,
        VERIFY_COST / WORKERS,
    ));
    sc.tag_run("e13-sweep");
    sc
}

fn sweep_row(fleet: u32, load_pct: u32) -> SweepRow {
    let seed = SEED ^ (u64::from(fleet) << 16) ^ u64::from(load_pct);
    let sc = sweep_scenario(fleet, load_pct, seed);
    let offered = capacity_per_sec() * f64::from(load_pct) / 100.0;
    let start = Instant::now();
    let report = sc.run();
    SweepRow {
        fleet,
        load_pct,
        offered_per_sec: offered,
        report,
        host_secs: start.elapsed().as_secs_f64(),
    }
}

/// Part B pool: slower verifies and a deep silent queue. Once ~1500
/// jobs are waiting, queueing delay passes the 300 ms client timeout:
/// clients resend evidence that is still in the queue and the workers
/// start burning cycles on duplicates. Past 4096 the queue drops
/// submissions without telling anyone.
const CMP_WORKERS: u32 = 2;
const CMP_VERIFY: Duration = Duration::from_micros(400);
const CMP_QUEUE: usize = 4_096;
const CMP_TIMEOUT: Duration = Duration::from_millis(300);

/// Part B scenario; `admission` toggles the only difference between
/// the two modes.
fn compare_scenario(fleet: u32, load_pct: u32, admission: bool, seed: u64) -> Scenario {
    let core = LinkProfile::clean(LinkConfig::fixed_rtt_bw(
        Duration::from_millis(4),
        50_000_000,
    ));
    let leaf = LinkProfile::clean(LinkConfig::broadband());
    let topo = Topology::two_tier(HUBS, fleet / HUBS, core, leaf);
    let capacity = f64::from(CMP_WORKERS) / CMP_VERIFY.as_secs_f64();
    let offered = capacity * f64::from(load_pct) / 100.0;
    let horizon = Duration::from_secs_f64(f64::from(fleet) / offered);
    let mut sc = Scenario::new(topo, ArrivalCurve::Steady, horizon, seed);
    sc.provider.workers = CMP_WORKERS;
    sc.provider.verify_cost = CMP_VERIFY;
    sc.provider.queue_limit = CMP_QUEUE;
    sc.provider.admission =
        admission.then(|| AdmissionConfig::for_service_time(256, CMP_VERIFY / CMP_WORKERS));
    sc.retry.timeout = CMP_TIMEOUT;
    // Impatient clients: the resend lands while the first copy is
    // still queued — the duplication feedback that drives collapse.
    sc.retry.backoff_base = Duration::from_millis(50);
    sc.tag_run(if admission {
        "e13-admission"
    } else {
        "e13-silent"
    });
    sc
}

fn admission_row(fleet: u32, load_pct: u32, admission: bool) -> AdmissionRow {
    // Same seed for both modes: identical arrivals and jitter draws,
    // the only difference is the queue policy.
    let seed = SEED ^ 0xAD01 ^ u64::from(load_pct);
    let sc = compare_scenario(fleet, load_pct, admission, seed);
    let start = Instant::now();
    let report = sc.run();
    AdmissionRow {
        load_pct,
        mode: if admission { "admission" } else { "silent" },
        report,
        host_secs: start.elapsed().as_secs_f64(),
    }
}

/// Part C: a lossy star forces evidence replays; every `every`-th
/// client runs the real journaled stack.
pub fn full_stack_storm(fleet: u32, every: u32, seed: u64) -> FullStackRow {
    let leaf = LinkProfile::clean(LinkConfig::broadband())
        .with_loss_ppm(120_000)
        .with_reorder(50_000, Duration::from_millis(30));
    let topo = Topology::star(fleet, leaf);
    let mut sc = Scenario::new(topo, ArrivalCurve::Steady, Duration::from_secs(2), seed);
    sc.provider.workers = 2;
    sc.retry.timeout = Duration::from_millis(250);
    sc.full_stack_every = every;
    sc.tag_run("e13-fullstack");
    let mut hook = FleetStackHook::new(seed ^ 0xF00D);
    hook.attach_journal(Arc::new(Journal::new(JournalConfig::fast_for_tests())));
    let start = Instant::now();
    let report = sc.run_with(&mut hook);
    let spent = (i64::MAX / 2)
        - hook
            .provider()
            .store()
            .account("fleet")
            .map(|a| a.balance_cents)
            .unwrap_or(i64::MAX / 2);
    let once = report.full_stack.settled * FleetStackHook::spend_per_order();
    let double_spends = (spent as u64).saturating_sub(once) / FleetStackHook::spend_per_order();
    FullStackRow {
        fleet,
        sampled_every: every,
        report,
        double_spends,
        host_secs: start.elapsed().as_secs_f64(),
    }
}

/// Runs E13: the saturation sweep over `fleets × loads_pct`, the
/// admission comparison at `cmp_loads_pct` on `cmp_fleet`, and the
/// sampled full-stack storm.
pub fn run(
    fleets: &[u32],
    loads_pct: &[u32],
    cmp_fleet: u32,
    cmp_loads_pct: &[u32],
    storm_fleet: u32,
    storm_every: u32,
) -> Report {
    let mut sweep = Vec::new();
    for &fleet in fleets {
        for &load in loads_pct {
            sweep.push(sweep_row(fleet, load));
        }
    }
    let mut admission = Vec::new();
    for &load in cmp_loads_pct {
        admission.push(admission_row(cmp_fleet, load, false));
        admission.push(admission_row(cmp_fleet, load, true));
    }
    let full_stack = full_stack_storm(storm_fleet, storm_every, SEED ^ 0x5EED);
    Report {
        sweep,
        admission,
        full_stack,
    }
}

/// The knee of one fleet's load curve: the smallest swept load at
/// which the service visibly turns work away (shed rate above 5%).
/// Goodput-vs-offered ratios are distorted by the post-horizon drain
/// tail on small fleets; the shed rate is not — below the knee the
/// queue absorbs Poisson bursts, at it the admission bound engages.
/// `None` if the sweep never saturated.
pub fn knee(report: &Report, fleet: u32) -> Option<u32> {
    report
        .sweep
        .iter()
        .filter(|r| r.fleet == fleet)
        .find(|r| r.report.shed_rate() > 0.05)
        .map(|r| r.load_pct)
}

/// True when the sampled real-stack leg never double-spent — the
/// number the smoke gate and the E13 bin assert on.
pub fn zero_double_spends(report: &Report) -> bool {
    report.full_stack.double_spends == 0
}

/// Flattens the report into its perf artifact pair. Everything the
/// simulator produces is virtual-clock deterministic and goes in the
/// canonical artifact; only the host-measured simulation rates go in
/// the host artifact.
pub fn artifacts(report: &Report, config: &str) -> utp_obs::ArtifactPair {
    let mut pair = utp_obs::ArtifactPair::new("E13", config);
    let push_fleet = |art: &mut utp_obs::Artifact, labels: &[(&str, &str)], r: &FleetReport| {
        art.push_u64("e13.placed", labels, r.placed);
        art.push_u64("e13.settled", labels, r.settled);
        art.push_u64("e13.gave_up", labels, r.gave_up);
        art.push_u64("e13.timeouts", labels, r.timeouts);
        art.push_u64("e13.replays_sent", labels, r.replays_sent);
        art.push_u64("e13.shed_admission", labels, r.shed_admission);
        art.push_u64("e13.dropped_queue_full", labels, r.dropped_queue_full);
        art.push_u64("e13.dup_settles", labels, r.duplicate_settle_attempts);
        art.push_u64("e13.queue_watermark", labels, r.queue_depth_watermark);
        art.push_u64("e13.makespan_ns", labels, r.makespan.as_nanos() as u64);
        art.push_hist("e13.latency", labels, &r.latency);
    };
    for row in &report.sweep {
        let fleet = row.fleet.to_string();
        let load = row.load_pct.to_string();
        let labels: &[(&str, &str)] = &[("fleet", &fleet), ("load", &load)];
        push_fleet(&mut pair.canonical, labels, &row.report);
        pair.host.push_f64("e13.sim_secs", labels, row.host_secs);
        pair.host.push_f64(
            "e13.events_per_sec",
            labels,
            row.report.events_processed as f64 / row.host_secs.max(1e-9),
        );
    }
    for row in &report.admission {
        let load = row.load_pct.to_string();
        let labels: &[(&str, &str)] = &[("mode", row.mode), ("load", &load)];
        push_fleet(&mut pair.canonical, labels, &row.report);
        pair.host.push_f64("e13.sim_secs", labels, row.host_secs);
    }
    let fs = &report.full_stack.report.full_stack;
    let fleet = report.full_stack.fleet.to_string();
    let labels: &[(&str, &str)] = &[("part", "fullstack"), ("fleet", &fleet)];
    pair.canonical
        .push_u64("e13.fullstack_submitted", labels, fs.submitted);
    pair.canonical
        .push_u64("e13.fullstack_settled", labels, fs.settled);
    pair.canonical
        .push_u64("e13.fullstack_replayed", labels, fs.replayed);
    pair.canonical
        .push_u64("e13.fullstack_rejected", labels, fs.rejected);
    pair.canonical
        .push_u64("e13.double_spends", labels, report.full_stack.double_spends);
    pair.host
        .push_f64("e13.sim_secs", labels, report.full_stack.host_secs);
    pair
}

fn ms(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e3)
}

/// Renders the three E13 tables.
pub fn render(report: &Report) -> String {
    let sweep_rows: Vec<Vec<String>> = report
        .sweep
        .iter()
        .map(|r| {
            vec![
                r.fleet.to_string(),
                format!("{}%", r.load_pct),
                format!("{:.0}", r.offered_per_sec),
                format!("{:.0}", r.report.goodput_per_sec()),
                ms(r.report.latency.p50()),
                ms(r.report.latency.p99()),
                ms(r.report.latency.p999()),
                format!("{:.1}%", r.report.shed_rate() * 100.0),
                r.report.queue_depth_watermark.to_string(),
                r.report.gave_up.to_string(),
            ]
        })
        .collect();
    let mut out = table::render(
        &format!(
            "E13a — saturation sweep (admission on, {} workers × {} µs verify ⇒ capacity {:.0}/s)",
            WORKERS,
            VERIFY_COST.as_micros(),
            capacity_per_sec()
        ),
        &[
            "fleet",
            "load",
            "offered/s",
            "goodput/s",
            "p50 ms",
            "p99 ms",
            "p999 ms",
            "shed",
            "queue max",
            "gave up",
        ],
        &sweep_rows,
    );
    out.push('\n');
    let adm_rows: Vec<Vec<String>> = report
        .admission
        .iter()
        .map(|r| {
            vec![
                format!("{}%", r.load_pct),
                r.mode.to_string(),
                format!("{:.0}", r.report.goodput_per_sec()),
                ms(r.report.latency.p999()),
                r.report.duplicate_settle_attempts.to_string(),
                r.report.timeouts.to_string(),
                r.report.gave_up.to_string(),
                (r.report.shed_admission + r.report.dropped_queue_full).to_string(),
            ]
        })
        .collect();
    out.push_str(&table::render(
        &format!(
            "E13b — silent queue vs admission control past the knee ({} workers × {} µs verify, \
             {} ms client timeout)",
            CMP_WORKERS,
            CMP_VERIFY.as_micros(),
            CMP_TIMEOUT.as_millis()
        ),
        &[
            "load",
            "mode",
            "goodput/s",
            "p999 ms",
            "dup settles",
            "timeouts",
            "gave up",
            "turned away",
        ],
        &adm_rows,
    ));
    out.push('\n');
    let fsr = &report.full_stack;
    let fs = &fsr.report.full_stack;
    let fs_rows = vec![vec![
        fsr.fleet.to_string(),
        format!("1/{}", fsr.sampled_every),
        fsr.report.replays_sent.to_string(),
        fs.submitted.to_string(),
        fs.settled.to_string(),
        fs.replayed.to_string(),
        fs.rejected.to_string(),
        fsr.double_spends.to_string(),
    ]];
    out.push_str(&table::render(
        "E13c — sampled full-stack replay storm (real evidence, journaled provider, 12% loss)",
        &[
            "fleet",
            "sampled",
            "fleet replays",
            "submitted",
            "settled",
            "replayed",
            "rejected",
            "double spends",
        ],
        &fs_rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e13_small_run_saturates_and_never_double_spends() {
        // 2000 clients at 400% of capacity: the excess backlog
        // (fleet × (1 − 1/load) = 1500 jobs) overshoots the 256-job
        // admission bound even after link jitter smears the burst.
        // Part B needs the backlog (fleet × (1 − 1/load) = 2250) deep
        // enough that queueing delay (450 ms at the peak) passes the
        // 300 ms client timeout while the 4096 queue still accepts the
        // resends — the duplicate-work collapse regime.
        let report = run(&[2_000], &[80, 400], 3_000, &[400], 400, 20);
        // Below capacity the queue absorbs the bursts; past it the
        // admission bound engages and goodput plateaus at capacity.
        let under = &report.sweep[0];
        assert!(
            under.report.shed_rate() < 0.05,
            "80% load must not shed: {:.3}",
            under.report.shed_rate()
        );
        assert_eq!(under.report.settled, under.report.placed);
        let over = &report.sweep[1];
        assert!(over.report.shed_admission > 0, "400% load must shed");
        assert!(
            over.report.goodput_per_sec() <= 1.1 * capacity_per_sec(),
            "goodput cannot exceed the pool: {:.0}/s vs {:.0}/s",
            over.report.goodput_per_sec(),
            capacity_per_sec()
        );
        assert_eq!(knee(&report, 2_000), Some(400));
        // Identical seeds: the silent queue collapses into duplicate
        // work and timeouts, admission does not.
        let silent = &report.admission[0];
        let admission = &report.admission[1];
        assert_eq!(silent.mode, "silent");
        assert!(silent.report.timeouts > admission.report.timeouts);
        assert!(
            silent.report.duplicate_settle_attempts > admission.report.duplicate_settle_attempts
        );
        assert!(admission.report.shed_admission > 0);
        // The real-stack leg settled sampled clients and never moved
        // the ledger twice for one order.
        assert!(report.full_stack.report.full_stack.settled > 0);
        assert!(zero_double_spends(&report));
        let rendered = render(&report);
        assert!(rendered.contains("E13a"), "{rendered}");
        assert!(rendered.contains("double spends"), "{rendered}");
    }
}
