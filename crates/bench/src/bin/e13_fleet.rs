//! Prints the E13 tables (fleet-scale saturation sweep, admission
//! control vs silent queue collapse, and the sampled full-stack replay
//! storm) and drops the run's perf artifacts under `target/bench/`.
//!
//! Fleet sizes up to 250k make this a release-profile binary:
//! `cargo run --release -p utp-bench --bin e13_fleet`
use utp_bench::experiments::e13_fleet as e13;

fn main() {
    let fleets = [20_000, 100_000, 250_000];
    let report = e13::run(
        &fleets,
        &[50, 80, 100, 130, 200],
        50_000,
        &[120, 200, 400],
        5_000,
        50,
    );
    println!("{}", e13::render(&report));
    for fleet in fleets {
        if let Some(load) = e13::knee(&report, fleet) {
            println!("knee({fleet} clients): sheds engage at {load}% of capacity");
        }
    }
    assert!(
        e13::zero_double_spends(&report),
        "sampled full-stack replay storm double-spent"
    );
    utp_bench::emit_artifacts(&e13::artifacts(
        &report,
        "fleets=20k,100k,250k loads=50-200 cmp=50k@120,200,400 storm=5k/50 seed=13",
    ));
}
