//! Phase-breakdown rendering over a set of trace records: a per-span-
//! name aggregate table (count, total, p50/p90/p99/p999) and a
//! per-track waterfall. Both are plain fixed-width text, consumed by
//! the bench tables and dumped as CI artifacts.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::histogram::LatencyHistogram;
use crate::record::TraceRecord;

/// Aggregates span durations (virtual time) grouped by span name.
/// Events (no duration) are counted but contribute no latency samples.
pub fn aggregate_by_name(records: &[TraceRecord]) -> BTreeMap<&'static str, LatencyHistogram> {
    let mut by_name: BTreeMap<&'static str, LatencyHistogram> = BTreeMap::new();
    for rec in records {
        if let Some(d) = rec.dur {
            by_name.entry(rec.name).or_default().record(d);
        }
    }
    by_name
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Renders the per-span-name aggregate table.
pub fn phase_table(title: &str, records: &[TraceRecord]) -> String {
    let agg = aggregate_by_name(records);
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    out.push_str(&format!(
        "{:<18} {:>7} {:>10} {:>9} {:>9} {:>9} {:>9}\n",
        "span", "count", "total_ms", "p50_ms", "p90_ms", "p99_ms", "p999_ms"
    ));
    for (name, h) in &agg {
        out.push_str(&format!(
            "{:<18} {:>7} {:>10.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}\n",
            name,
            h.count(),
            ms(h.sum()),
            ms(h.p50()),
            ms(h.p90()),
            ms(h.p99()),
            ms(h.p999()),
        ));
    }
    if agg.is_empty() {
        out.push_str("(no spans)\n");
    }
    out
}

/// Renders one track's spans as a waterfall: each line shows the span's
/// offset from the track's first record, its duration, and a scaled bar.
pub fn waterfall(records: &[TraceRecord], track: &str) -> String {
    const WIDTH: usize = 32;
    let spans: Vec<&TraceRecord> = records
        .iter()
        .filter(|r| r.track == track && r.dur.is_some())
        .collect();
    let mut out = format!("## waterfall {track}\n");
    let Some(first) = spans.first() else {
        out.push_str("(no spans)\n");
        return out;
    };
    let t0 = first.ts;
    let end = spans
        .iter()
        .map(|r| r.ts + r.dur.unwrap_or(Duration::ZERO))
        .max()
        .unwrap_or(t0);
    let span_total = (end - t0).max(Duration::from_nanos(1));
    out.push_str(&format!(
        "{:>10} {:>10}  {:<w$}  span\n",
        "offset_ms",
        "dur_ms",
        "timeline",
        w = WIDTH
    ));
    for rec in &spans {
        let dur = rec.dur.unwrap_or(Duration::ZERO);
        let off = rec.ts.saturating_sub(t0);
        let scale = |d: Duration| -> usize {
            ((d.as_secs_f64() / span_total.as_secs_f64()) * WIDTH as f64).round() as usize
        };
        let lead = scale(off).min(WIDTH);
        let bar = scale(dur).clamp(1, WIDTH - lead.min(WIDTH - 1));
        let mut lane = " ".repeat(lead);
        lane.push_str(&"#".repeat(bar));
        out.push_str(&format!(
            "{:>10.2} {:>10.2}  {:<w$}  {}\n",
            ms(off),
            ms(dur),
            lane,
            rec.name,
            w = WIDTH
        ));
    }
    out
}

/// Distinct track labels present in a record set, in sorted order.
pub fn tracks(records: &[TraceRecord]) -> Vec<String> {
    let mut t: Vec<String> = records.iter().map(|r| r.track.clone()).collect();
    t.sort();
    t.dedup();
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::names;

    fn span(track: &str, name: &'static str, ts_us: u64, dur_us: u64) -> TraceRecord {
        TraceRecord {
            ts: Duration::from_micros(ts_us),
            dur: Some(Duration::from_micros(dur_us)),
            track: track.to_string(),
            name,
            fields: Vec::new(),
            volatile: false,
        }
    }

    #[test]
    fn phase_table_aggregates_by_name() {
        let recs = vec![
            span("a", names::SESSION_PAL, 0, 100),
            span("b", names::SESSION_PAL, 0, 300),
            span("a", names::SESSION_HUMAN, 100, 1000),
        ];
        let table = phase_table("t", &recs);
        assert!(table.contains("session.pal"));
        assert!(table.contains("session.human"));
        let agg = aggregate_by_name(&recs);
        assert_eq!(agg["session.pal"].count(), 2);
        assert_eq!(agg["session.human"].count(), 1);
    }

    #[test]
    fn waterfall_orders_and_scales() {
        let recs = vec![
            span("s", names::SESSION_SUSPEND, 0, 50),
            span("s", names::SESSION_PAL, 50, 150),
            span("other", names::SESSION_PAL, 0, 1),
        ];
        let wf = waterfall(&recs, "s");
        assert!(wf.contains("session.suspend"));
        assert!(wf.contains("session.pal"));
        assert!(!wf.contains("other"));
        let empty = waterfall(&recs, "missing");
        assert!(empty.contains("(no spans)"));
    }

    #[test]
    fn tracks_are_sorted_and_deduped() {
        let recs = vec![
            span("b", names::SESSION_PAL, 0, 1),
            span("a", names::SESSION_PAL, 0, 1),
            span("b", names::SESSION_PAL, 1, 1),
        ];
        assert_eq!(tracks(&recs), vec!["a".to_string(), "b".to_string()]);
    }
}
