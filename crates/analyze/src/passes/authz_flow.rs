//! `authorization-flow` — settlement sinks must be *dominated* by
//! authorization sources.
//!
//! The paper's core guarantee is that a transaction settles only when
//! confirmation evidence has been verified end-to-end. This pass proves
//! the static shadow of that property: every path from a function's
//! entry to a settlement sink (settling the store, journaling a
//! `Settle` decision, recording a Confirmed audit outcome, constructing
//! a `Receipt`, demoting an order's status) must first pass through a
//! capability-granting authorization source (quote-chain verification,
//! the evidence-order binding pre-check, nonce settlement, a
//! `Confirmed`-status branch check).
//!
//! Mechanics: a *must*-analysis over the statement CFG. The state is a
//! bit-set of held capabilities; the join is set *intersection*, so a
//! capability survives a merge point only when every incoming path
//! granted it — exactly "the sink is dominated by a source". Two
//! call-graph liftings make the analysis interprocedural:
//!
//! * **granting-set closure** — a function whose body must-grants
//!   capabilities on every entry→exit path becomes a source itself
//!   (calls to it grant what it grants), to a bounded fixpoint;
//! * **caller-context** — a sink missing capabilities locally is
//!   accepted when *every* live in-scope caller establishes the missing
//!   capabilities before *every* call site (recursively, to a bounded
//!   depth). A sink with no callers at all is an entry point and is
//!   denied.
//!
//! Soundness caveats (see DESIGN.md): grants are polarity-insensitive
//! (an `if` condition containing a source grants both branches), source
//! matching is name-based (a rogue same-named function would grant),
//! and fallback CFGs are treated as straight-line. All three err toward
//! *missing* violations, never toward false positives.
//!
//! Policy lives in `scripts/authz_spec.json` ([`crate::spec`]); this
//! file is mechanism only.

use std::collections::{BTreeMap, BTreeSet};

use crate::cfg::{build_cfg, Cfg, Role, Stmt};
use crate::dataflow::{solve, Lattice};
use crate::diag::Severity;
use crate::graph::WorkspaceIndex;
use crate::items::{CallSite, FnItem};
use crate::lexer::Token;
use crate::passes::flow::{calls_in, range_has_ident, recv_chain_idents};
use crate::passes::{Finding, Pass};
use crate::source::SourceFile;
use crate::spec::{AuthzSpec, SinkKind, SinkSpec};

/// Caller-context recursion bound.
const MAX_CALLER_DEPTH: usize = 3;

/// Granting-set closure iteration bound (wrapper-of-wrapper chains).
const MAX_CLOSURE_ROUNDS: usize = 4;

/// The pass (see module docs).
pub struct AuthzFlow;

impl Pass for AuthzFlow {
    fn id(&self) -> &'static str {
        "authorization-flow"
    }

    fn description(&self) -> &'static str {
        "settlement sinks must be dominated by verify / order-binding / nonce authorization sources"
    }

    fn check_workspace(&self, ws: &WorkspaceIndex) -> Vec<(usize, Finding)> {
        let spec = crate::spec::embedded();
        analyze(ws, spec)
    }
}

/// Held-capability bit-set; the join is intersection (must-analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Caps(u32);

impl Lattice for Caps {
    fn join_from(&mut self, other: &Self) -> bool {
        let met = self.0 & other.0;
        let changed = met != self.0;
        self.0 = met;
        changed
    }
}

/// Everything the transfer function needs, resolved once per run.
struct Env<'a> {
    spec: &'a AuthzSpec,
    caps: Vec<&'a str>,
    /// Closure-derived granting wrappers: fn name → granted bits.
    wrappers: BTreeMap<String, u32>,
    /// Call-sink callee names; their own bodies are mechanism, not
    /// policy violations (`Store::settle` asserting `try_settle`).
    sink_callees: BTreeSet<&'a str>,
}

impl<'a> Env<'a> {
    fn new(spec: &'a AuthzSpec) -> Env<'a> {
        Env {
            spec,
            caps: spec.capabilities(),
            wrappers: BTreeMap::new(),
            sink_callees: spec
                .sinks
                .iter()
                .filter(|s| s.kind == SinkKind::Call)
                .map(|s| s.target.as_str())
                .collect(),
        }
    }

    fn bits(&self, names: &[String]) -> u32 {
        names
            .iter()
            .fold(0, |acc, n| acc | self.spec.cap_bit(&self.caps, n))
    }

    fn cap_names(&self, bits: u32) -> Vec<&str> {
        self.caps
            .iter()
            .enumerate()
            .filter(|(i, _)| bits & (1 << i) != 0)
            .map(|(_, c)| *c)
            .collect()
    }
}

/// Capabilities granted by one call site (spec sources + wrappers).
fn call_grants(env: &Env, toks: &[Token], call: &CallSite) -> u32 {
    let mut bits = 0;
    for s in &env.spec.sources {
        if call.name != s.call {
            continue;
        }
        if let Some(r) = &s.recv {
            if !recv_chain_idents(toks, call.tok).iter().any(|c| c == r) {
                continue;
            }
        }
        bits |= env.bits(&s.grants);
    }
    if let Some(&w) = env.wrappers.get(&call.name) {
        bits |= w;
    }
    bits
}

/// The transfer function: statements only *add* capabilities.
fn transfer(env: &Env, file: &SourceFile, item: &FnItem, s: &Stmt, state: &mut Caps) {
    for call in calls_in(item, s) {
        state.0 |= call_grants(env, &file.tokens, call);
    }
    if matches!(
        s.role,
        Role::If | Role::While | Role::Match | Role::MatchArm
    ) {
        for g in &env.spec.guards {
            if range_has_ident(&file.tokens, s.lo, s.hi, &g.ident) {
                state.0 |= env.bits(&g.grants);
            }
        }
    }
}

/// Live library function inside the spec's scope, with a body.
fn analyzable(ws: &WorkspaceIndex, env: &Env, idx: usize) -> bool {
    ws.is_live_fn(idx) && env.spec.in_scope(ws.fn_path(idx)) && ws.fn_item(idx).body.is_some()
}

fn solved(ws: &WorkspaceIndex, env: &Env, idx: usize) -> (Cfg, Vec<Option<Caps>>) {
    let file = &ws.files[ws.fns[idx].file];
    let item = ws.fn_item(idx);
    let body = item.body.expect("checked by analyzable()");
    let cfg = build_cfg(&file.tokens, body);
    let entries = solve(&cfg, Caps(0), |s, st| transfer(env, file, item, s, st));
    (cfg, entries)
}

/// Capabilities held on *every* entry→exit path of fn `idx`.
fn must_exit_caps(ws: &WorkspaceIndex, env: &Env, idx: usize) -> u32 {
    let (cfg, entries) = solved(ws, env, idx);
    entries[cfg.exit].map_or(0, |c| c.0)
}

/// Builds the granting-set closure: wrappers that must-grant on all
/// paths become sources themselves.
fn build_wrappers(ws: &WorkspaceIndex, env: &mut Env) {
    for _ in 0..MAX_CLOSURE_ROUNDS {
        let mut changed = false;
        for idx in 0..ws.fns.len() {
            if !analyzable(ws, env, idx) {
                continue;
            }
            let name = &ws.fn_item(idx).name;
            if env.sink_callees.contains(name.as_str()) {
                continue; // a sink must never launder into a source
            }
            let exit = must_exit_caps(ws, env, idx);
            if exit != 0 {
                let entry = env.wrappers.entry(name.clone()).or_insert(0);
                if *entry | exit != *entry {
                    *entry |= exit;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
}

/// One matched sink site inside a statement.
struct SinkHit<'a> {
    sink: &'a SinkSpec,
    line: u32,
}

fn sink_hits<'a>(env: &'a Env, file: &SourceFile, item: &FnItem, s: &Stmt) -> Vec<SinkHit<'a>> {
    let toks = &file.tokens;
    let mut hits = Vec::new();
    for sink in &env.spec.sinks {
        match sink.kind {
            SinkKind::Call => {
                for call in calls_in(item, s) {
                    if call.name != sink.target {
                        continue;
                    }
                    let chain = recv_chain_idents(toks, call.tok);
                    if let Some(r) = &sink.recv {
                        if !chain.iter().any(|c| c == r) {
                            continue;
                        }
                    }
                    if let Some(x) = &sink.exclude_recv {
                        if chain.iter().any(|c| c == x) {
                            continue;
                        }
                    }
                    if let Some(w) = &sink.with_ident {
                        if !range_has_ident(toks, call.args.0, call.args.1, w) {
                            continue;
                        }
                    }
                    hits.push(SinkHit {
                        sink,
                        line: call.line,
                    });
                }
            }
            SinkKind::Struct => {
                // `Target { .. }` construction; arm *patterns* are
                // destructuring, not construction.
                if s.role == Role::MatchArm {
                    continue;
                }
                for i in s.lo..s.hi.saturating_sub(1).min(toks.len().saturating_sub(1)) {
                    if toks[i].is_ident(&sink.target) && toks[i + 1].is_punct("{") {
                        hits.push(SinkHit {
                            sink,
                            line: toks[i].line,
                        });
                    }
                }
            }
            SinkKind::Write => {
                for i in s.lo..s.hi.min(toks.len()) {
                    if !toks[i].is_ident(&sink.target) {
                        continue;
                    }
                    let field_write = i > s.lo
                        && toks[i - 1].is_punct(".")
                        && toks.get(i + 1).is_some_and(|t| t.is_punct("="));
                    if !field_write {
                        continue;
                    }
                    if let Some(w) = &sink.with_ident {
                        if !range_has_ident(toks, i + 2, s.hi, w) {
                            continue;
                        }
                    }
                    hits.push(SinkHit {
                        sink,
                        line: toks[i].line,
                    });
                }
            }
        }
    }
    hits
}

/// Pre-states at every call site in fn `idx` naming `callee`
/// (unreachable sites are skipped — they cannot execute).
fn call_pre_states(ws: &WorkspaceIndex, env: &Env, idx: usize, callee: &str) -> Vec<u32> {
    let file = &ws.files[ws.fns[idx].file];
    let item = ws.fn_item(idx);
    let (cfg, entries) = solved(ws, env, idx);
    let mut out = Vec::new();
    for (bi, block) in cfg.blocks.iter().enumerate() {
        let Some(entry) = entries[bi] else { continue };
        let mut state = entry;
        for s in &block.stmts {
            for call in calls_in(item, s) {
                if call.name == callee {
                    out.push(state.0);
                }
            }
            transfer(env, file, item, s, &mut state);
        }
    }
    out
}

/// Does every live in-scope caller of `target` establish the `missing`
/// capabilities before every call site (to a bounded depth)?
fn callers_establish(
    ws: &WorkspaceIndex,
    env: &Env,
    target: usize,
    missing: u32,
    depth: usize,
    visiting: &mut BTreeSet<usize>,
) -> bool {
    if depth == 0 || !visiting.insert(target) {
        return false;
    }
    let target_name = ws.fn_item(target).name.clone();
    let callers: Vec<usize> = (0..ws.fns.len())
        .filter(|&i| {
            i != target && analyzable(ws, env, i) && ws.callees[i].binary_search(&target).is_ok()
        })
        .collect();
    let mut ok = !callers.is_empty();
    'outer: for c in callers {
        let states = call_pre_states(ws, env, c, &target_name);
        if states.is_empty() {
            // The graph edge exists but no named site was found (e.g. a
            // fallback parse oddity): stay conservative.
            ok = false;
            break;
        }
        for st in states {
            let still = missing & !st;
            if still != 0 && !callers_establish(ws, env, c, still, depth - 1, visiting) {
                ok = false;
                break 'outer;
            }
        }
    }
    visiting.remove(&target);
    ok
}

/// Runs the pass over the workspace.
pub(crate) fn analyze(ws: &WorkspaceIndex, spec: &AuthzSpec) -> Vec<(usize, Finding)> {
    let mut env = Env::new(spec);
    build_wrappers(ws, &mut env);
    let mut findings = Vec::new();
    for idx in 0..ws.fns.len() {
        if !analyzable(ws, &env, idx) {
            continue;
        }
        let item = ws.fn_item(idx);
        if env.sink_callees.contains(item.name.as_str()) {
            continue; // the sink's own body is mechanism (see Env)
        }
        let file = &ws.files[ws.fns[idx].file];
        let (cfg, entries) = solved(ws, &env, idx);
        for (bi, block) in cfg.blocks.iter().enumerate() {
            let Some(entry) = entries[bi] else { continue };
            let mut state = entry;
            for s in &block.stmts {
                for hit in sink_hits(&env, file, item, s) {
                    let req_all = env.bits(&hit.sink.requires);
                    let req_any = env.bits(&hit.sink.requires_any);
                    let mut missing = req_all & !state.0;
                    if req_any != 0 && state.0 & req_any == 0 {
                        missing |= req_any;
                    }
                    if missing != 0 {
                        let mut visiting = BTreeSet::new();
                        if !callers_establish(
                            ws,
                            &env,
                            idx,
                            missing,
                            MAX_CALLER_DEPTH,
                            &mut visiting,
                        ) {
                            findings.push((
                                ws.fns[idx].file,
                                Finding {
                                    line: hit.line,
                                    severity: Severity::Deny,
                                    message: format!(
                                        "{} in `{}` is not dominated by its authorization \
                                         source(s): [{}] missing on at least one path from the \
                                         function entry (and no caller context supplies it); \
                                         settlement sinks must be preceded by their sources on \
                                         every path — see scripts/authz_spec.json",
                                        hit.sink.describe,
                                        item.name,
                                        env.cap_names(missing).join(", "),
                                    ),
                                },
                            ));
                        }
                    }
                }
                transfer(&env, file, item, s, &mut state);
            }
        }
    }
    findings
}

/// Report helper: capability-grant sites per source call name, over
/// live in-scope code.
pub(crate) fn grant_site_counts(ws: &WorkspaceIndex, spec: &AuthzSpec) -> BTreeMap<String, usize> {
    let mut out: BTreeMap<String, usize> = BTreeMap::new();
    for s in &spec.sources {
        out.insert(s.call.clone(), 0);
    }
    let env = Env::new(spec);
    let _ = &env;
    for idx in 0..ws.fns.len() {
        if !ws.is_live_fn(idx) || !spec.in_scope(ws.fn_path(idx)) {
            continue;
        }
        let file = &ws.files[ws.fns[idx].file];
        let item = ws.fn_item(idx);
        for call in &item.calls {
            for s in &spec.sources {
                if call.name != s.call {
                    continue;
                }
                if let Some(r) = &s.recv {
                    if !recv_chain_idents(&file.tokens, call.tok)
                        .iter()
                        .any(|c| c == r)
                    {
                        continue;
                    }
                }
                *out.entry(s.call.clone()).or_default() += 1;
            }
        }
    }
    out
}

/// Report helper: sink sites checked per sink name (mechanism-exempt
/// bodies excluded, matching the analysis).
pub(crate) fn sink_site_counts(ws: &WorkspaceIndex, spec: &AuthzSpec) -> BTreeMap<String, usize> {
    let env = Env::new(spec);
    let mut out: BTreeMap<String, usize> = BTreeMap::new();
    for s in &spec.sinks {
        out.insert(s.name.clone(), 0);
    }
    for idx in 0..ws.fns.len() {
        if !analyzable(ws, &env, idx) {
            continue;
        }
        let item = ws.fn_item(idx);
        if env.sink_callees.contains(item.name.as_str()) {
            continue;
        }
        let file = &ws.files[ws.fns[idx].file];
        let body = item.body.expect("checked by analyzable()");
        let cfg = build_cfg(&file.tokens, body);
        for block in &cfg.blocks {
            for s in &block.stmts {
                for hit in sink_hits(&env, file, item, s) {
                    *out.entry(hit.sink.name.clone()).or_default() += 1;
                }
            }
        }
    }
    out
}

/// Report helper: `(scope files, live functions analyzed)`.
pub(crate) fn scope_stats(ws: &WorkspaceIndex, spec: &AuthzSpec) -> (usize, usize) {
    let mut files = 0;
    let mut functions = 0;
    for (fi, file) in ws.files.iter().enumerate() {
        if !ws.metas[fi].is_src_ctx || !spec.in_scope(&file.path) {
            continue;
        }
        files += 1;
    }
    let env = Env::new(spec);
    for idx in 0..ws.fns.len() {
        if analyzable(ws, &env, idx) {
            functions += 1;
        }
    }
    (files, functions)
}
