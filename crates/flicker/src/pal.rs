//! The PAL abstraction and its execution environment.

use crate::error::FlickerError;
use std::fmt;
use std::time::Duration;
use utp_crypto::sha1::Sha1Digest;
use utp_platform::keyboard::KeyEvent;
use utp_platform::machine::SecureSession;
use utp_tpm::pcr::{PcrIndex, PcrSelection};
use utp_tpm::seal::SealedBlob;
use utp_tpm::TpmError;

/// Maximum number of prompts a PAL may issue in one session — a runaway
/// prompt loop would otherwise hang the suspended machine forever.
pub const INTERACTION_BUDGET: usize = 16;

/// Errors a PAL can report from [`Pal::invoke`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PalError {
    /// The PAL hit an internal failure (bad input, TPM refusal, ...).
    Failed(String),
    /// The operator did not complete the interaction (timeout / walk-away).
    InputUnavailable,
}

impl fmt::Display for PalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PalError::Failed(why) => write!(f, "pal failure: {}", why),
            PalError::InputUnavailable => write!(f, "operator input unavailable"),
        }
    }
}

impl std::error::Error for PalError {}

impl From<TpmError> for PalError {
    fn from(e: TpmError) -> Self {
        PalError::Failed(e.to_string())
    }
}

impl From<utp_platform::PlatformError> for PalError {
    fn from(e: utp_platform::PlatformError) -> Self {
        PalError::Failed(e.to_string())
    }
}

/// A Piece of Application Logic.
///
/// `image()` is the exact byte string SKINIT measures into PCR 17 — the
/// PAL's identity as far as remote verifiers are concerned. `invoke()` is
/// its behaviour inside the session. In the real system these are the same
/// bytes; the simulation keeps them adjacent and the runtime treats the
/// image as the identity, so "same logic, different image" is a *different
/// PAL*, exactly as on hardware.
pub trait Pal {
    /// The measured SLB image.
    fn image(&self) -> &[u8];

    /// Runs the PAL inside a live session.
    ///
    /// # Errors
    ///
    /// Returns [`PalError`] on internal failure; the runtime converts it
    /// into [`FlickerError::Pal`] and still resumes the OS cleanly.
    fn invoke(&mut self, env: &mut PalEnv<'_, '_>, input: &[u8]) -> Result<Vec<u8>, PalError>;
}

/// How a prompt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// The operator pressed Enter.
    Enter,
    /// The operator pressed Escape (explicit rejection).
    Escape,
    /// The operator stopped responding.
    Timeout,
}

/// The operator's answer to one prompt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromptResult {
    /// The line as reconstructed from key events (backspaces applied).
    pub text: String,
    /// How the prompt terminated.
    pub termination: Termination,
}

/// The party at the physical keyboard during a session.
///
/// Experiments plug in a `HumanModel`-driven operator; the attack harness
/// plugs in adversarial operators (who, notably, can only act through
/// *hardware* key events — software injection is blocked by the platform).
pub trait Operator {
    /// Reacts to the current screen with key events and the wall-clock
    /// time the reaction took.
    fn respond(&mut self, screen: &[String]) -> OperatorResponse;
}

/// Key events plus elapsed time for one operator reaction.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OperatorResponse {
    /// Events in press order.
    pub events: Vec<KeyEvent>,
    /// Time the operator took to produce them.
    pub elapsed: Duration,
}

/// An operator replaying a fixed script of responses; yields empty
/// responses when the script runs out.
#[derive(Debug, Clone, Default)]
pub struct ScriptedOperator {
    script: Vec<OperatorResponse>,
    cursor: usize,
    /// Screens observed at each prompt (for assertions).
    pub observed_screens: Vec<Vec<String>>,
}

impl ScriptedOperator {
    /// An operator that never responds (for non-interactive PALs).
    pub fn silent() -> Self {
        ScriptedOperator::default()
    }

    /// An operator that plays the given responses in order.
    pub fn with_script(script: Vec<OperatorResponse>) -> Self {
        ScriptedOperator {
            script,
            cursor: 0,
            observed_screens: Vec::new(),
        }
    }

    /// Convenience: one response that types `text` then Enter, instantly.
    pub fn typing(text: &str) -> Self {
        let mut events: Vec<KeyEvent> = text.chars().map(KeyEvent::Char).collect();
        events.push(KeyEvent::Enter);
        Self::with_script(vec![OperatorResponse {
            events,
            elapsed: Duration::ZERO,
        }])
    }

    /// Convenience: one response that presses a single key, instantly.
    pub fn pressing(key: KeyEvent) -> Self {
        Self::with_script(vec![OperatorResponse {
            events: vec![key],
            elapsed: Duration::ZERO,
        }])
    }
}

impl Operator for ScriptedOperator {
    fn respond(&mut self, screen: &[String]) -> OperatorResponse {
        self.observed_screens.push(screen.to_vec());
        let r = self.script.get(self.cursor).cloned().unwrap_or_default();
        self.cursor += 1;
        r
    }
}

/// The restricted environment a PAL executes in: the secure session's
/// devices and locality-2 TPM, plus the operator hook. Tracks how much of
/// the session went to human interaction (for the timing breakdown).
pub struct PalEnv<'s, 'm> {
    session: &'s mut SecureSession<'m>,
    operator: &'s mut dyn Operator,
    human_time: Duration,
    prompts_used: usize,
}

impl<'s, 'm> PalEnv<'s, 'm> {
    /// Wraps a live session and operator.
    pub fn new(session: &'s mut SecureSession<'m>, operator: &'s mut dyn Operator) -> Self {
        PalEnv {
            session,
            operator,
            human_time: Duration::ZERO,
            prompts_used: 0,
        }
    }

    /// The PAL's own measurement (as the TPM recorded it).
    pub fn measurement(&self) -> Sha1Digest {
        self.session.measurement()
    }

    /// Time spent waiting on the operator so far.
    pub fn human_time(&self) -> Duration {
        self.human_time
    }

    /// Prompts issued so far.
    pub fn prompts_used(&self) -> usize {
        self.prompts_used
    }

    /// Current virtual time.
    pub fn now(&self) -> Duration {
        self.session.now()
    }

    /// Models PAL compute time (hashing, parsing) advancing the clock.
    pub fn compute(&mut self, d: Duration) {
        self.session.advance(d);
    }

    /// Writes a line on the PAL-owned display.
    pub fn show(&mut self, row: usize, text: &str) -> Result<(), PalError> {
        self.session
            .show(row, 0, text)
            .map_err(|e| PalError::Failed(e.to_string()))
    }

    /// Clears a display row (overwrites with spaces).
    pub fn clear_row(&mut self, row: usize) -> Result<(), PalError> {
        self.session
            .show(row, 0, &" ".repeat(utp_platform::display::COLS))
            .map_err(|e| PalError::Failed(e.to_string()))
    }

    /// The screen as the human sees it.
    pub fn screen(&self) -> Vec<String> {
        self.session.screen()
    }

    /// Prompts the operator and collects one line of input through the
    /// isolated keyboard.
    ///
    /// # Errors
    ///
    /// [`PalError::InputUnavailable`] once [`INTERACTION_BUDGET`] prompts
    /// have been issued.
    pub fn prompt_line(&mut self) -> Result<PromptResult, PalError> {
        if self.prompts_used >= INTERACTION_BUDGET {
            return Err(PalError::InputUnavailable);
        }
        self.prompts_used += 1;
        let screen = self.session.screen();
        let response = self.operator.respond(&screen);
        self.human_time += response.elapsed;
        self.session.advance(response.elapsed);
        // Deliver through the hardware path: the keyboard model is what
        // guarantees malware couldn't have put events here.
        for ev in response.events {
            self.session.hardware_key(ev);
        }
        let mut text = String::new();
        let mut termination = Termination::Timeout;
        while let Some(q) = self.session.read_key()? {
            match q.event {
                KeyEvent::Char(c) => text.push(c),
                KeyEvent::Backspace => {
                    text.pop();
                }
                KeyEvent::Enter => {
                    termination = Termination::Enter;
                    break;
                }
                KeyEvent::Escape => {
                    termination = Termination::Escape;
                    break;
                }
            }
        }
        Ok(PromptResult { text, termination })
    }

    // ----- TPM (locality 2) ------------------------------------------------

    /// TPM randomness.
    pub fn get_random(&mut self, len: usize) -> Result<Vec<u8>, PalError> {
        Ok(self.session.get_random(len)?)
    }

    /// Extends a PCR with a measurement.
    pub fn extend(&mut self, pcr: PcrIndex, value: &Sha1Digest) -> Result<Sha1Digest, PalError> {
        Ok(self.session.extend(pcr, value)?)
    }

    /// Reads a PCR.
    pub fn pcr_read(&mut self, pcr: PcrIndex) -> Result<Sha1Digest, PalError> {
        Ok(self.session.pcr_read(pcr)?)
    }

    /// Seals `payload` to the current PCR values.
    pub fn seal_to_current(
        &mut self,
        key_handle: u32,
        selection: PcrSelection,
        payload: &[u8],
    ) -> Result<SealedBlob, PalError> {
        Ok(self
            .session
            .seal_to_current(key_handle, selection, payload)?)
    }

    /// Unseals a blob under this session's PCR state.
    pub fn unseal(&mut self, key_handle: u32, blob: &SealedBlob) -> Result<Vec<u8>, PalError> {
        Ok(self.session.unseal(key_handle, blob)?)
    }

    /// Increments a monotonic counter.
    pub fn increment_counter(&mut self, handle: u32) -> Result<u64, PalError> {
        Ok(self.session.increment_counter(handle)?)
    }

    /// Reads a monotonic counter.
    pub fn read_counter(&mut self, handle: u32) -> Result<u64, PalError> {
        Ok(self.session.read_counter(handle)?)
    }
}

impl fmt::Debug for PalEnv<'_, '_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PalEnv")
            .field("human_time", &self.human_time)
            .field("prompts_used", &self.prompts_used)
            .finish()
    }
}

/// Converts a [`PalError`] into the runtime's error space.
impl From<PalError> for FlickerError {
    fn from(e: PalError) -> Self {
        FlickerError::Pal(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utp_platform::machine::{Machine, MachineConfig};

    #[test]
    fn scripted_operator_replays_then_goes_silent() {
        let mut op = ScriptedOperator::typing("42");
        let r1 = op.respond(&[]);
        assert_eq!(r1.events.len(), 3); // '4', '2', Enter
        let r2 = op.respond(&[]);
        assert!(r2.events.is_empty());
    }

    #[test]
    fn prompt_line_reconstructs_text_with_backspace() {
        let mut m = Machine::new(MachineConfig::fast_for_tests(1));
        let mut session = m.skinit(b"pal").unwrap();
        let mut op = ScriptedOperator::with_script(vec![OperatorResponse {
            events: vec![
                KeyEvent::Char('4'),
                KeyEvent::Char('3'),
                KeyEvent::Backspace,
                KeyEvent::Char('2'),
                KeyEvent::Enter,
            ],
            elapsed: Duration::from_secs(2),
        }]);
        let mut env = PalEnv::new(&mut session, &mut op);
        let r = env.prompt_line().unwrap();
        assert_eq!(r.text, "42");
        assert_eq!(r.termination, Termination::Enter);
        assert_eq!(env.human_time(), Duration::from_secs(2));
    }

    #[test]
    fn prompt_line_reports_escape_and_timeout() {
        let mut m = Machine::new(MachineConfig::fast_for_tests(1));
        let mut session = m.skinit(b"pal").unwrap();
        let mut op = ScriptedOperator::with_script(vec![
            OperatorResponse {
                events: vec![KeyEvent::Escape],
                elapsed: Duration::ZERO,
            },
            OperatorResponse::default(),
        ]);
        let mut env = PalEnv::new(&mut session, &mut op);
        assert_eq!(env.prompt_line().unwrap().termination, Termination::Escape);
        assert_eq!(env.prompt_line().unwrap().termination, Termination::Timeout);
    }

    #[test]
    fn interaction_budget_is_enforced() {
        let mut m = Machine::new(MachineConfig::fast_for_tests(1));
        let mut session = m.skinit(b"pal").unwrap();
        let mut op = ScriptedOperator::silent();
        let mut env = PalEnv::new(&mut session, &mut op);
        for _ in 0..INTERACTION_BUDGET {
            env.prompt_line().unwrap();
        }
        assert_eq!(env.prompt_line().unwrap_err(), PalError::InputUnavailable);
    }

    #[test]
    fn operator_sees_what_pal_displayed() {
        let mut m = Machine::new(MachineConfig::fast_for_tests(1));
        let mut session = m.skinit(b"pal").unwrap();
        let mut op = ScriptedOperator::pressing(KeyEvent::Enter);
        {
            let mut env = PalEnv::new(&mut session, &mut op);
            env.show(0, "CONFIRM PAYMENT OF 10 EUR").unwrap();
            env.prompt_line().unwrap();
        }
        assert!(op.observed_screens[0][0].contains("CONFIRM PAYMENT"));
    }
}
