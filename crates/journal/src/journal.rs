//! The journal facade: WAL with group commit, snapshots, recovery.
//!
//! One [`Journal`] owns two [`StorageDevice`]s — the append-only log
//! and the snapshot area — behind a single mutex. Device time is
//! serialized: the journal keeps its own virtual device timeline
//! (`device_time`), advanced by every append/flush/read cost, modeling
//! one disk servicing requests in order regardless of which worker
//! thread issued them.
//!
//! **Group commit**: [`Journal::append_record`] stages the frame in the
//! device write cache; once `group_commit` records are staged, one
//! flush persists them all. [`Journal::sync_to`] is the ack barrier —
//! if a concurrent worker's flush already covered this record's
//! sequence number, it returns instantly, which is exactly how group
//! commit amortizes fsync across workers.
//!
//! **Durability contract (WAL-before-ack)**: a settle outcome may be
//! acknowledged only after `sync_to(receipt.seq)` returns.

use std::time::Duration;

use parking_lot::Mutex;
use utp_trace::{event_volatile, keys, names, span_volatile, Value};

use crate::device::{DeviceCounters, DeviceProfile, FaultPlan, StorageDevice};
use crate::record::{encode_frame, frame_boundaries, scan, Frame, JournalRecord};
use crate::recover::{replay_bytes, RecoveredState, RecoveryReport};
use crate::snapshot::encode_snapshot;

/// Journal configuration.
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Device cost model (shared by log and snapshot devices).
    pub profile: DeviceProfile,
    /// Records staged per flush. `1` means flush-per-record (no group
    /// commit); the service's ack path still guarantees durability at
    /// every setting via [`Journal::sync_to`].
    pub group_commit: usize,
    /// Fault plan for the log device.
    pub log_faults: FaultPlan,
}

impl JournalConfig {
    /// Fault-free config with the given profile and batch size.
    pub fn new(profile: DeviceProfile, group_commit: usize) -> Self {
        JournalConfig {
            profile,
            group_commit: group_commit.max(1),
            log_faults: FaultPlan::none(),
        }
    }

    /// Small fast config for tests: test profile, batch of 4.
    pub fn fast_for_tests() -> Self {
        Self::new(DeviceProfile::fast_for_tests(), 4)
    }
}

/// Receipt for one appended record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendReceipt {
    /// Sequence number assigned to the record.
    pub seq: u64,
    /// Virtual device time consumed by this call (append, plus a flush
    /// if this append filled the batch).
    pub cost: Duration,
    /// Whether this call itself triggered the batch flush.
    pub flushed: bool,
}

/// Aggregate journal statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records appended since creation (or last recovery).
    pub appends: u64,
    /// Flush barriers issued.
    pub syncs: u64,
    /// [`Journal::sync_to`] calls satisfied by an earlier flush — the
    /// group-commit win.
    pub sync_elided: u64,
    /// Snapshots installed.
    pub snapshots: u64,
}

#[derive(Debug, Clone)]
struct Inner {
    log: StorageDevice,
    snap: StorageDevice,
    group_commit: usize,
    /// Next sequence number to assign.
    next_seq: u64,
    /// Highest sequence number known durable (covered by a flush).
    durable_seq: u64,
    /// Records staged in the cache since the last flush.
    staged: usize,
    /// Serialized device timeline.
    device_time: Duration,
    stats: JournalStats,
}

impl Inner {
    fn flush_log(&mut self) -> Duration {
        let cost = self.log.flush();
        self.device_time += cost;
        self.durable_seq = self.next_seq - 1;
        self.staged = 0;
        self.stats.syncs += 1;
        cost
    }
}

/// Crash-safe write-ahead journal for the settlement path.
#[derive(Debug)]
pub struct Journal {
    // Not named `inner`: lock-discipline keys its order graph by field
    // name workspace-wide, and `inner` is the parking_lot shim's own
    // mutex field, which would merge this lock with every `.lock()` in
    // the workspace.
    mu: Mutex<Inner>,
}

impl Journal {
    /// Creates an empty journal.
    pub fn new(config: JournalConfig) -> Self {
        Journal {
            mu: Mutex::new(Inner {
                log: StorageDevice::with_faults(config.profile.clone(), config.log_faults),
                snap: StorageDevice::new(config.profile),
                group_commit: config.group_commit.max(1),
                next_seq: 1,
                durable_seq: 0,
                staged: 0,
                device_time: Duration::ZERO,
                stats: JournalStats::default(),
            }),
        }
    }

    /// A journal whose devices already hold the given durable images —
    /// rehydrates disk contents captured with
    /// [`Journal::durable_snapshot_bytes`] / [`Journal::durable_log_bytes`],
    /// so a crash-point sweep can restart a provider from *every* prefix
    /// of a recorded run. Sequence counters are seeded from a replay of
    /// the images; the fault plan in `config` still applies to future
    /// appends.
    pub fn with_durable(config: JournalConfig, snapshot_bytes: &[u8], log_bytes: &[u8]) -> Self {
        let j = Journal::new(config);
        {
            let mut inner = j.mu.lock();
            inner.snap.seed_media(snapshot_bytes);
            inner.log.seed_media(log_bytes);
            let (state, _report) = replay_bytes(snapshot_bytes, log_bytes);
            inner.next_seq = state.last_seq + 1;
            inner.durable_seq = state.last_seq;
        }
        j
    }

    /// Deep copy of the journal — devices (media *and* unflushed
    /// caches), sequence counters, device timeline and statistics. The
    /// fork and the original share nothing; this is the branch
    /// primitive the adversarial state-space explorer uses to try
    /// different action interleavings against the same durable history.
    pub fn fork(&self) -> Journal {
        Journal {
            mu: Mutex::new(self.mu.lock().clone()),
        }
    }

    /// Appends one record, staging it in the device cache. If the batch
    /// is full this call also flushes. Emits a volatile `journal.append`
    /// (and `journal.flush`) event after releasing the lock.
    pub fn append_record(&self, record: &JournalRecord) -> AppendReceipt {
        let (receipt, at, flush_cost) = {
            let mut inner = self.mu.lock();
            let seq = inner.next_seq;
            inner.next_seq += 1;
            let frame = encode_frame(seq, record);
            let frame_len = frame.len();
            let mut cost = inner.log.append(&frame);
            inner.device_time += cost;
            inner.staged += 1;
            inner.stats.appends += 1;
            let mut flushed = false;
            let mut flush_cost = Duration::ZERO;
            if inner.staged >= inner.group_commit {
                flush_cost = inner.flush_log();
                cost += flush_cost;
                flushed = true;
            }
            (
                AppendReceipt { seq, cost, flushed },
                (inner.device_time, frame_len),
                flush_cost,
            )
        };
        let (now, frame_len) = at;
        event_volatile(
            names::JOURNAL_APPEND,
            now,
            &[
                (keys::SEQ, Value::U64(receipt.seq)),
                (keys::BYTES, Value::U64(frame_len as u64)),
            ],
        );
        if receipt.flushed {
            span_volatile(
                names::JOURNAL_FLUSH,
                now.saturating_sub(flush_cost),
                flush_cost,
                &[(keys::SEQ, Value::U64(receipt.seq))],
            );
        }
        receipt
    }

    /// Flushes any staged records unconditionally. Returns the cost
    /// (zero if nothing was staged).
    pub fn sync(&self) -> Duration {
        let (cost, now, did) = {
            let mut inner = self.mu.lock();
            if inner.staged == 0 {
                inner.stats.sync_elided += 1;
                (Duration::ZERO, inner.device_time, false)
            } else {
                let c = inner.flush_log();
                (c, inner.device_time, true)
            }
        };
        if did {
            span_volatile(names::JOURNAL_FLUSH, now.saturating_sub(cost), cost, &[]);
        }
        cost
    }

    /// The ack barrier: ensures record `seq` is durable, flushing only
    /// if no concurrent flush already covered it. Returns the cost paid
    /// by *this* caller (zero when elided — the group-commit win).
    pub fn sync_to(&self, seq: u64) -> Duration {
        let (cost, now, did) = {
            let mut inner = self.mu.lock();
            if inner.durable_seq >= seq {
                inner.stats.sync_elided += 1;
                (Duration::ZERO, inner.device_time, false)
            } else {
                let c = inner.flush_log();
                (c, inner.device_time, true)
            }
        };
        if did {
            span_volatile(
                names::JOURNAL_FLUSH,
                now.saturating_sub(cost),
                cost,
                &[(keys::SEQ, Value::U64(seq))],
            );
        }
        cost
    }

    /// Installs a snapshot of `state` and truncates the log. Ordering is
    /// crash-safe: flush the log, append + flush the snapshot frame,
    /// only then truncate the log — a crash between any two steps leaves
    /// either the old (snapshot, log) pair or the new one, never a gap.
    /// Returns the total device cost.
    pub fn install_snapshot(&self, state: &RecoveredState) -> Duration {
        let mut inner = self.mu.lock();
        let mut cost = Duration::ZERO;
        if inner.staged > 0 {
            cost += inner.flush_log();
        }
        let frame = encode_snapshot(state);
        let c = inner.snap.append(&frame);
        inner.device_time += c;
        cost += c;
        let c = inner.snap.flush();
        inner.device_time += c;
        cost += c;
        let c = inner.log.truncate();
        inner.device_time += c;
        cost += c;
        inner.staged = 0;
        inner.stats.snapshots += 1;
        cost
    }

    /// Simulated power loss on both devices: unflushed caches are lost
    /// (modulo the fault plan's torn tail on the log).
    pub fn crash(&self) {
        let mut inner = self.mu.lock();
        inner.log.crash();
        inner.snap.crash();
        inner.staged = 0;
        // What was staged-but-unflushed is gone; sequence bookkeeping is
        // rebuilt by replay().
    }

    /// Recovers from the durable bytes: replays snapshot + log, repairs
    /// the log media (truncating any torn/corrupt suffix so future
    /// appends extend a clean prefix), and re-seeds the sequence
    /// counters. Returns the recovered state, the report, and the
    /// virtual read cost of the recovery pass.
    pub fn replay(&self) -> (RecoveredState, RecoveryReport, Duration) {
        let mut inner = self.mu.lock();
        let snap_bytes = inner.snap.durable().to_vec();
        let log_bytes = inner.log.durable().to_vec();
        let read_cost =
            inner.snap.read_cost(snap_bytes.len()) + inner.log.read_cost(log_bytes.len());
        inner.device_time += read_cost;
        let (state, report) = replay_bytes(&snap_bytes, &log_bytes);
        inner.log.discard_after(report.valid_log_bytes);
        inner.next_seq = state.last_seq + 1;
        inner.durable_seq = state.last_seq;
        inner.staged = 0;
        (state, report, read_cost)
    }

    /// Replays over the **appended** view (media + unflushed cache) —
    /// what a live, uncrashed process can still read back. Used by the
    /// audit log's durable paging, which wants history including
    /// records staged but not yet flushed.
    pub fn replay_live(&self) -> RecoveredState {
        let inner = self.mu.lock();
        let (state, _) = replay_bytes(inner.snap.durable(), &inner.log.appended());
        state
    }

    /// Decoded frames currently on the durable log media.
    pub fn durable_frames(&self) -> Vec<Frame> {
        scan(self.mu.lock().log.durable()).frames
    }

    /// Raw durable log bytes (for crash-point sweeps).
    pub fn durable_log_bytes(&self) -> Vec<u8> {
        self.mu.lock().log.durable().to_vec()
    }

    /// Raw durable snapshot bytes.
    pub fn durable_snapshot_bytes(&self) -> Vec<u8> {
        self.mu.lock().snap.durable().to_vec()
    }

    /// Frame boundaries of the durable log (crash-point sweep support).
    pub fn durable_boundaries(&self) -> Vec<usize> {
        frame_boundaries(self.mu.lock().log.durable())
    }

    /// Total serialized device time consumed so far.
    pub fn device_time(&self) -> Duration {
        self.mu.lock().device_time
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> JournalStats {
        self.mu.lock().stats
    }

    /// Log-device operation counters.
    pub fn log_counters(&self) -> DeviceCounters {
        self.mu.lock().log.counters()
    }

    /// Highest sequence number currently durable.
    pub fn durable_seq(&self) -> u64 {
        self.mu.lock().durable_seq
    }

    /// Registers the journal's aggregate stats, log-device counters,
    /// and serialized device time on a metrics registry. All values are
    /// virtual-clock and deterministic for a given workload, so they
    /// land in canonical bench artifacts.
    pub fn export_metrics(&self, registry: &utp_obs::MetricsRegistry) {
        let (stats, counters, device_time) = {
            let g = self.mu.lock();
            (g.stats, g.log.counters(), g.device_time)
        };
        stats.export_metrics(registry);
        counters.export_metrics(registry, "log");
        registry
            .counter("journal.device_time_ns", &[])
            .add(device_time.as_nanos() as u64);
    }
}

impl JournalStats {
    /// Registers the four aggregate counters under `journal.*` names.
    pub fn export_metrics(&self, registry: &utp_obs::MetricsRegistry) {
        registry.counter("journal.appends", &[]).add(self.appends);
        registry.counter("journal.syncs", &[]).add(self.syncs);
        registry
            .counter("journal.sync_elided", &[])
            .add(self.sync_elided);
        registry
            .counter("journal.snapshots", &[])
            .add(self.snapshots);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::NO_ORDER;

    fn settle(n: u8) -> JournalRecord {
        JournalRecord::Settle {
            order_id: NO_ORDER,
            nonce: [n; 20],
            at: Duration::from_millis(n as u64),
            outcome: Ok(()),
        }
    }

    #[test]
    fn group_commit_flushes_every_batch() {
        let j = Journal::new(JournalConfig::fast_for_tests()); // batch 4
        for i in 0..7 {
            let r = j.append_record(&settle(i));
            assert_eq!(r.seq, i as u64 + 1);
            assert_eq!(r.flushed, i == 3, "i={i}");
        }
        assert_eq!(j.durable_seq(), 4);
        assert_eq!(j.durable_frames().len(), 4);
        // sync_to for an already-durable seq is free.
        assert_eq!(j.sync_to(3), Duration::ZERO);
        // sync_to past the durable point flushes the rest.
        assert!(j.sync_to(7) > Duration::ZERO);
        assert_eq!(j.durable_frames().len(), 7);
        let stats = j.stats();
        assert_eq!(stats.appends, 7);
        assert_eq!(stats.syncs, 2);
        assert_eq!(stats.sync_elided, 1);
    }

    #[test]
    fn export_metrics_covers_stats_device_and_timeline() {
        use utp_obs::{MetricId, MetricsRegistry, SampleValue};
        let j = Journal::new(JournalConfig::fast_for_tests()); // batch 4
        for i in 0..5 {
            j.append_record(&settle(i));
        }
        j.sync_to(5);
        let registry = MetricsRegistry::new();
        j.export_metrics(&registry);
        let snap = registry.snapshot(Duration::ZERO);
        let get = |name: &str, labels: &[(&str, &str)]| {
            let id = MetricId::new(name, labels);
            snap.samples
                .iter()
                .find(|s| s.id == id)
                .map(|s| s.value.clone())
        };
        assert_eq!(get("journal.appends", &[]), Some(SampleValue::Counter(5)));
        assert_eq!(get("journal.syncs", &[]), Some(SampleValue::Counter(2)));
        assert_eq!(
            get("device.appends", &[("device", "log")]),
            Some(SampleValue::Counter(5))
        );
        let dt = get("journal.device_time_ns", &[]);
        assert!(matches!(dt, Some(SampleValue::Counter(n)) if n > 0));
    }

    #[test]
    fn crash_loses_staged_records_and_replay_repairs() {
        let j = Journal::new(JournalConfig::fast_for_tests());
        for i in 0..6 {
            j.append_record(&settle(i));
        }
        // 4 durable (one batch), 2 staged.
        j.crash();
        let (state, report, _cost) = j.replay();
        assert_eq!(report.records_applied, 4);
        assert_eq!(state.last_seq, 4);
        assert_eq!(state.used.len(), 4);
        // Appending after recovery continues the sequence cleanly.
        let r = j.append_record(&settle(99));
        assert_eq!(r.seq, 5);
        j.sync();
        assert_eq!(j.durable_frames().len(), 5);
    }

    #[test]
    fn torn_tail_is_discarded_on_replay() {
        let cfg = JournalConfig {
            log_faults: FaultPlan {
                torn_tail_bytes: 5,
                corrupt_torn_tail: true,
                ..FaultPlan::none()
            },
            ..JournalConfig::fast_for_tests()
        };
        let j = Journal::new(cfg);
        for i in 0..5 {
            j.append_record(&settle(i));
        }
        j.crash(); // 4 durable + 5 torn bytes of record 5
        let before = j.durable_log_bytes().len();
        let (state, report, _) = j.replay();
        assert_eq!(report.records_applied, 4);
        assert!(report.valid_log_bytes < before, "torn tail detected");
        assert_eq!(state.last_seq, 4);
        // The torn suffix is gone from the media; a fresh append + sync
        // yields a clean 5-frame log.
        j.append_record(&settle(50));
        j.sync();
        assert_eq!(j.durable_frames().len(), 5);
    }

    #[test]
    fn dropped_flush_means_lost_records_on_crash() {
        let cfg = JournalConfig {
            log_faults: FaultPlan {
                drop_flushes: [1].into_iter().collect(),
                ..FaultPlan::none()
            },
            ..JournalConfig::fast_for_tests()
        };
        let j = Journal::new(cfg);
        for i in 0..4 {
            j.append_record(&settle(i)); // batch flush #1 is dropped
        }
        j.crash();
        let (state, _, _) = j.replay();
        assert_eq!(state.last_seq, 0, "lying drive lost the whole batch");
    }

    #[test]
    fn snapshot_truncates_log_and_replay_uses_it() {
        let j = Journal::new(JournalConfig::fast_for_tests());
        for i in 0..4 {
            j.append_record(&settle(i));
        }
        let (state, _, _) = j.replay();
        j.install_snapshot(&state);
        assert!(j.durable_log_bytes().is_empty(), "log truncated");
        // More records after the snapshot.
        for i in 10..12 {
            j.append_record(&settle(i));
        }
        j.sync();
        j.crash();
        let (recovered, report, _) = j.replay();
        assert!(report.snapshot_used);
        assert_eq!(report.records_applied, 2);
        assert_eq!(recovered.used.len(), 6);
        assert_eq!(recovered.last_seq, 6);
    }

    #[test]
    fn crash_between_snapshot_and_nothing_preserves_old_state() {
        // Snapshot install is atomic from the caller's view: crash right
        // after install keeps the snapshot (it was flushed before the
        // log truncate).
        let j = Journal::new(JournalConfig::fast_for_tests());
        for i in 0..4 {
            j.append_record(&settle(i));
        }
        let (state, _, _) = j.replay();
        j.install_snapshot(&state);
        j.crash();
        let (recovered, report, _) = j.replay();
        assert!(report.snapshot_used);
        assert_eq!(recovered, state);
    }

    #[test]
    fn device_time_is_monotone_and_billed_per_operation() {
        let j = Journal::new(JournalConfig::fast_for_tests());
        let t0 = j.device_time();
        j.append_record(&settle(1));
        let t1 = j.device_time();
        assert!(t1 > t0);
        j.sync();
        assert!(j.device_time() > t1);
    }
}
