//! Fuzz-style mutation tests for the journal recovery path: seeded,
//! exhaustive-by-position, no fuzzer dependency (protocol_fuzz style).
//!
//! The WAL is the one input the recovery path reads that a crash — or an
//! attacker with disk access — controls byte-for-byte. For a genuine
//! multi-record log: every single-bit flip, every truncation length, and
//! every 4-byte length-field lie must scan and replay without panicking,
//! and recovery must stop at the last frame the corruption left intact
//! (prefix-consistent, fail-closed — corruption never *invents* state).
//! Snapshot bytes get the same treatment through [`decode_snapshot`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;
use utp::core::ca::PrivacyCa;
use utp::core::protocol::Transaction;
use utp::core::verifier::Verifier;
use utp::journal::{
    decode_snapshot, encode_snapshot, frame_boundaries, replay_bytes, scan, Journal, JournalConfig,
    JournalRecord, ScanEnd, NO_ORDER,
};

/// A genuine WAL with all three record kinds, plus its snapshot form.
/// `CreateOrder` records must carry a parseable challenge (the decoder
/// rejects garbage request bytes), so a real verifier issues them.
fn genuine_log() -> (Vec<u8>, Vec<u8>) {
    let ca = PrivacyCa::new(512, 9_001);
    let mut verifier = Verifier::new(ca.public_key().clone(), 9_002);
    let journal = Arc::new(Journal::new(JournalConfig::fast_for_tests()));
    journal.append_record(&JournalRecord::OpenAccount {
        name: "alice".into(),
        balance_cents: 50_000,
    });
    for i in 0..4u64 {
        let tx = Transaction::new(i, "shop.example", 1_000 + i, "EUR", "fuzz");
        let request = verifier.issue_request(tx, Duration::from_millis(10 + i));
        journal.append_record(&JournalRecord::CreateOrder {
            order_id: i,
            account: "alice".into(),
            issued_at: Duration::from_millis(10 + i),
            request_bytes: request.to_bytes(),
        });
        journal.append_record(&JournalRecord::Settle {
            order_id: i,
            nonce: *request.nonce.as_bytes(),
            at: Duration::from_millis(20 + i),
            outcome: Ok(()),
        });
    }
    journal.sync();
    let log = journal.durable_log_bytes();
    let (state, _) = replay_bytes(&[], &log);
    (log, encode_snapshot(&state))
}

/// Asserts the recovery path's contract for an arbitrary byte string:
/// never panics, and the replayed state equals replaying the scan's own
/// valid prefix (recovery uses exactly the bytes the scan vouched for).
fn assert_fail_closed(bytes: &[u8]) {
    let s = scan(bytes);
    assert!(s.valid_len <= bytes.len());
    let (state, report) = replay_bytes(&[], bytes);
    assert_eq!(report.valid_log_bytes, s.valid_len);
    assert_eq!(report.records_applied, s.frames.len() as u64);
    let (from_prefix, _) = replay_bytes(&[], &bytes[..s.valid_len]);
    assert_eq!(state, from_prefix);
}

#[test]
fn every_single_bit_flip_recovers_the_intact_prefix() {
    let (log, _) = genuine_log();
    let boundaries = frame_boundaries(&log);
    for byte in 0..log.len() {
        for bit in 0..8 {
            let mut mutated = log.clone();
            mutated[byte] ^= 1 << bit;
            assert_fail_closed(&mutated);
            let s = scan(&mutated);
            // The flip lands inside exactly one frame; every frame before
            // it survives, nothing at or after it does (a lucky flip
            // cannot re-validate: CRC-32 catches all single-bit errors).
            let frame_start = *boundaries.iter().rev().find(|&&b| b <= byte).unwrap();
            assert_eq!(
                s.valid_len, frame_start,
                "flip at byte {byte} bit {bit}: scan must stop at the damaged frame"
            );
            assert_ne!(s.end, ScanEnd::Clean);
        }
    }
}

#[test]
fn every_truncation_length_recovers_the_intact_prefix() {
    let (log, _) = genuine_log();
    let boundaries = frame_boundaries(&log);
    for cut in 0..=log.len() {
        let truncated = &log[..cut];
        assert_fail_closed(truncated);
        let s = scan(truncated);
        let frame_start = *boundaries.iter().rev().find(|&&b| b <= cut).unwrap();
        assert_eq!(s.valid_len, frame_start, "cut at {cut}");
        if boundaries.contains(&cut) {
            assert_eq!(s.end, ScanEnd::Clean, "cut at {cut}");
        } else {
            // A mid-frame cut reads as a torn header or torn body —
            // indistinguishable from a crash, absorbed silently.
            assert!(
                matches!(s.end, ScanEnd::TornHeader | ScanEnd::TornBody),
                "cut at {cut}: got {:?}",
                s.end
            );
        }
    }
}

#[test]
fn every_length_field_lie_is_caught() {
    let (log, _) = genuine_log();
    let boundaries = frame_boundaries(&log);
    let mut rng = StdRng::seed_from_u64(9_101);
    // Each frame's length field is the u32 right after the magic byte.
    for (i, &start) in boundaries[..boundaries.len() - 1].iter().enumerate() {
        let truth = u32::from_le_bytes(log[start + 1..start + 5].try_into().unwrap());
        let lies: Vec<u32> = vec![
            0,
            1,
            u32::MAX,
            (log.len() - start) as u32, // claims the rest of the log
            rng.gen::<u32>(),
            rng.gen_range(0..=65_536u32),
        ];
        for lie in lies.into_iter().filter(|&l| l != truth) {
            let mut mutated = log.clone();
            mutated[start + 1..start + 5].copy_from_slice(&lie.to_le_bytes());
            assert_fail_closed(&mutated);
            let s = scan(&mutated);
            // The lie either promises bytes that aren't there (torn) or
            // points the CRC at the wrong body (checksum/record error) —
            // either way, nothing past the previous boundary survives.
            assert!(
                s.valid_len <= start,
                "frame {i}: lie {lie} at offset {start} extended the valid prefix"
            );
            assert_ne!(s.end, ScanEnd::Clean, "frame {i}: lie {lie}");
        }
    }
}

#[test]
fn random_garbage_and_appended_garbage_never_panic() {
    let (log, _) = genuine_log();
    let mut rng = StdRng::seed_from_u64(9_202);
    // Pure noise of assorted lengths.
    for len in [0usize, 1, 8, 9, 64, 1_024] {
        for _ in 0..16 {
            let noise: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            assert_fail_closed(&noise);
        }
    }
    // A valid log with garbage appended: the genuine prefix survives in
    // full, the garbage is discarded.
    for _ in 0..32 {
        let mut mutated = log.clone();
        let tail_len = rng.gen_range(1..64usize);
        mutated.extend((0..tail_len).map(|_| rng.gen::<u8>()));
        let s = scan(&mutated);
        assert!(s.valid_len >= log.len());
        assert_fail_closed(&mutated);
    }
}

#[test]
fn snapshot_corruption_never_panics_and_falls_back_cleanly() {
    let (log, snapshot) = genuine_log();
    let (reference, _) = replay_bytes(&snapshot, &[]);
    // Bit flips: a damaged snapshot decodes to None (CRC) and replay
    // falls back to an empty base state rather than trusting it.
    for byte in 0..snapshot.len() {
        let mut mutated = snapshot.clone();
        mutated[byte] ^= 0x01;
        let decoded = decode_snapshot(&mutated);
        let (state, report) = replay_bytes(&mutated, &log);
        assert_eq!(report.snapshot_used, decoded.is_some());
        if decoded.is_none() {
            // Fail-closed: the log alone rebuilds the state.
            let (from_log, _) = replay_bytes(&[], &log);
            assert_eq!(state, from_log);
        }
    }
    // Truncations.
    for cut in 0..=snapshot.len() {
        let decoded = decode_snapshot(&snapshot[..cut]);
        if cut == snapshot.len() {
            assert_eq!(decoded.as_ref(), Some(&reference));
        }
        let (_state, _report) = replay_bytes(&snapshot[..cut], &[]);
    }
    // Last-valid-wins: two stacked snapshots decode to the second.
    let (mut stacked, second) = {
        let mut second = reference.clone();
        second.accounts.insert("bob".into(), 7);
        second.last_seq += 1;
        (snapshot.clone(), second)
    };
    stacked.extend_from_slice(&encode_snapshot(&second));
    assert_eq!(decode_snapshot(&stacked), Some(second));
}

/// `NO_ORDER` round-trips through mutation untouched: a settle record
/// carrying the sentinel decodes back to the sentinel, never to a real
/// order id (guards the audit-only record form).
#[test]
fn sentinel_order_id_survives_roundtrip() {
    let journal = Journal::new(JournalConfig::fast_for_tests());
    journal.append_record(&JournalRecord::Settle {
        order_id: NO_ORDER,
        nonce: [9u8; 20],
        at: std::time::Duration::from_millis(1),
        outcome: Ok(()),
    });
    journal.sync();
    let log = journal.durable_log_bytes();
    let s = scan(&log);
    assert_eq!(s.frames.len(), 1);
    assert!(matches!(
        s.frames[0].record,
        JournalRecord::Settle {
            order_id: NO_ORDER,
            ..
        }
    ));
}
