//! Pass 5: `wallclock-in-model` — the simulated clock is the only time
//! source.
//!
//! Every latency the model reports (TPM vendor profiles, network delays,
//! human think time) flows through `crates/platform/src/clock.rs` so that
//! experiments are deterministic and machine-independent. `Instant::now`
//! / `SystemTime` readings anywhere else silently mix host time into the
//! model. Only the bench harness (which measures real host CPU on
//! purpose), the server's operational metrics, and the offline criterion
//! shim may touch the wall clock.

use super::{Finding, Pass};
use crate::diag::Severity;
use crate::source::SourceFile;

/// Files allowed to read the host clock.
fn is_exempt(path: &str) -> bool {
    path.starts_with("crates/bench/")
        || path.starts_with("shims/criterion/")
        || path == "crates/server/src/metrics.rs"
}

/// The `wallclock-in-model` pass.
pub struct WallclockInModel;

impl Pass for WallclockInModel {
    fn id(&self) -> &'static str {
        "wallclock-in-model"
    }

    fn description(&self) -> &'static str {
        "Instant::now/SystemTime are reserved for bench + metrics; the model uses the simulated clock"
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        if is_exempt(&file.path) {
            return Vec::new();
        }
        let tokens = &file.tokens;
        let mut findings = Vec::new();
        for (i, t) in tokens.iter().enumerate() {
            let hit = if t.is_ident("Instant")
                && tokens.get(i + 1).is_some_and(|n| n.is_punct("::"))
                && tokens.get(i + 2).is_some_and(|n| n.is_ident("now"))
            {
                Some("Instant::now()")
            } else if t.is_ident("SystemTime") {
                Some("SystemTime")
            } else {
                None
            };
            if let Some(what) = hit {
                findings.push(Finding {
                    line: t.line,
                    severity: Severity::Deny,
                    message: format!(
                        "`{what}` reads the host wall clock inside the simulation model; \
                         route time through the simulated clock \
                         (`crates/platform/src/clock.rs`) so runs stay deterministic \
                         (bench/metrics code is exempt)"
                    ),
                });
            }
        }
        findings
    }
}
