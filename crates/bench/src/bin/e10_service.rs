//! Prints the E10 table (persistent verification service vs. one-shot
//! batch pipeline, with cert-cache hit rate).
use utp_bench::experiments::e10_service as e10;

fn main() {
    let report = e10::run(256, 1024, &[1, 2, 4, 8], &[1, 2, 4]);
    println!("{}", e10::render(&report));
}
