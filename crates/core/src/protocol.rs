//! Wire protocol between service provider, client orchestrator and PAL.

use utp_crypto::sha1::{Sha1, Sha1Digest};
use utp_flicker::marshal::{put_bytes, put_u32, put_u64, Reader};
use utp_flicker::FlickerError;
use utp_tpm::quote::Quote;

/// Protocol version tag embedded in every structure.
pub const PROTOCOL_VERSION: u32 = 1;

/// Length of a typed confirmation code.
pub const CODE_LEN: usize = 6;

/// A transaction awaiting confirmation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Transaction {
    /// Provider-assigned identifier.
    pub id: u64,
    /// Payee / merchant identifier.
    pub payee: String,
    /// Amount in minor units (cents).
    pub amount_cents: u64,
    /// ISO-ish currency code.
    pub currency: String,
    /// Free-text memo (order number, etc.).
    pub memo: String,
}

impl Transaction {
    /// Creates a transaction.
    pub fn new(
        id: u64,
        payee: impl Into<String>,
        amount_cents: u64,
        currency: impl Into<String>,
        memo: impl Into<String>,
    ) -> Self {
        Transaction {
            id,
            payee: payee.into(),
            amount_cents,
            currency: currency.into(),
            memo: memo.into(),
        }
    }

    /// Canonical byte encoding (digest input and wire format).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_u32(&mut buf, PROTOCOL_VERSION);
        put_u64(&mut buf, self.id);
        put_bytes(&mut buf, self.payee.as_bytes());
        put_u64(&mut buf, self.amount_cents);
        put_bytes(&mut buf, self.currency.as_bytes());
        put_bytes(&mut buf, self.memo.as_bytes());
        buf
    }

    /// Parses the canonical encoding.
    pub fn from_bytes(data: &[u8]) -> Result<Self, FlickerError> {
        let mut r = Reader::new(data);
        let tx = Self::read(&mut r)?;
        r.finish()?;
        Ok(tx)
    }

    pub(crate) fn read(r: &mut Reader<'_>) -> Result<Self, FlickerError> {
        let version = r.u32()?;
        if version != PROTOCOL_VERSION {
            return Err(FlickerError::Marshal(format!(
                "unsupported transaction version {}",
                version
            )));
        }
        let id = r.u64()?;
        let payee = String::from_utf8(r.bytes()?.to_vec())
            .map_err(|e| FlickerError::Marshal(e.to_string()))?;
        let amount_cents = r.u64()?;
        let currency = String::from_utf8(r.bytes()?.to_vec())
            .map_err(|e| FlickerError::Marshal(e.to_string()))?;
        let memo = String::from_utf8(r.bytes()?.to_vec())
            .map_err(|e| FlickerError::Marshal(e.to_string()))?;
        Ok(Transaction {
            id,
            payee,
            amount_cents,
            currency,
            memo,
        })
    }

    pub(crate) fn write(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_bytes());
    }

    /// SHA-1 digest of the canonical encoding — the 20-byte value bound
    /// into PCR 17 and checked by the verifier.
    pub fn digest(&self) -> Sha1Digest {
        Sha1::digest(&self.to_bytes())
    }

    /// Human-readable amount, e.g. `42.00 EUR`.
    pub fn display_amount(&self) -> String {
        format!(
            "{}.{:02} {}",
            self.amount_cents / 100,
            self.amount_cents % 100,
            self.currency
        )
    }
}

/// How the PAL asks the human to confirm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConfirmMode {
    /// Press Enter to approve, Escape to reject. Fast; vulnerable to a
    /// human rubber-stamping without reading.
    PressEnter,
    /// Type a random on-screen code. Slower; proves the human read the
    /// screen the PAL drew (the mode the paper recommends for high-value
    /// transactions and as the CAPTCHA replacement).
    TypeCode,
}

impl ConfirmMode {
    fn to_u8(self) -> u8 {
        match self {
            ConfirmMode::PressEnter => 0,
            ConfirmMode::TypeCode => 1,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(ConfirmMode::PressEnter),
            1 => Some(ConfirmMode::TypeCode),
            _ => None,
        }
    }
}

/// The provider's challenge: a transaction plus a fresh nonce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransactionRequest {
    /// The transaction to confirm.
    pub transaction: Transaction,
    /// Single-use anti-replay nonce, also the quote's `externalData`.
    pub nonce: Sha1Digest,
    /// Requested confirmation UX.
    pub mode: ConfirmMode,
}

impl TransactionRequest {
    /// Canonical encoding — these exact bytes are the PAL's input and are
    /// bound into PCR 17 via the session I/O digest.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.transaction.write(&mut buf);
        buf.extend_from_slice(self.nonce.as_bytes());
        buf.push(self.mode.to_u8());
        buf
    }

    /// Parses the canonical encoding.
    pub fn from_bytes(data: &[u8]) -> Result<Self, FlickerError> {
        let mut r = Reader::new(data);
        let transaction = Transaction::read(&mut r)?;
        let nonce = Sha1Digest::from_slice(r.take(20)?)
            .ok_or_else(|| FlickerError::Marshal("nonce needs 20 bytes".into()))?;
        let mode_byte = r.take(1)?[0];
        r.finish()?;
        let mode = ConfirmMode::from_u8(mode_byte)
            .ok_or_else(|| FlickerError::Marshal(format!("bad mode byte {}", mode_byte)))?;
        Ok(TransactionRequest {
            transaction,
            nonce,
            mode,
        })
    }
}

/// The human's verdict as the PAL recorded it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// The human approved the transaction.
    Confirmed,
    /// The human explicitly rejected it.
    Rejected,
    /// The human stopped responding (or exhausted code attempts).
    Timeout,
}

impl Verdict {
    fn to_u8(self) -> u8 {
        match self {
            Verdict::Confirmed => 1,
            Verdict::Rejected => 2,
            Verdict::Timeout => 3,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(Verdict::Confirmed),
            2 => Some(Verdict::Rejected),
            3 => Some(Verdict::Timeout),
            _ => None,
        }
    }
}

/// The PAL's output: verdict bound to transaction and nonce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfirmationToken {
    /// Digest of the transaction the PAL displayed.
    pub tx_digest: Sha1Digest,
    /// The request nonce, echoed.
    pub nonce: Sha1Digest,
    /// UX mode actually used.
    pub mode: ConfirmMode,
    /// The verdict.
    pub verdict: Verdict,
    /// Code-entry attempts the human needed (0 for `PressEnter`).
    pub attempts: u32,
}

impl ConfirmationToken {
    /// Canonical encoding — the PAL's exact output bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_u32(&mut buf, PROTOCOL_VERSION);
        buf.extend_from_slice(self.tx_digest.as_bytes());
        buf.extend_from_slice(self.nonce.as_bytes());
        buf.push(self.mode.to_u8());
        buf.push(self.verdict.to_u8());
        put_u32(&mut buf, self.attempts);
        buf
    }

    /// Parses the canonical encoding.
    pub fn from_bytes(data: &[u8]) -> Result<Self, FlickerError> {
        let mut r = Reader::new(data);
        let version = r.u32()?;
        if version != PROTOCOL_VERSION {
            return Err(FlickerError::Marshal(format!(
                "bad token version {}",
                version
            )));
        }
        let tx_digest = Sha1Digest::from_slice(r.take(20)?)
            .ok_or_else(|| FlickerError::Marshal("tx digest needs 20 bytes".into()))?;
        let nonce = Sha1Digest::from_slice(r.take(20)?)
            .ok_or_else(|| FlickerError::Marshal("nonce needs 20 bytes".into()))?;
        let mode = ConfirmMode::from_u8(r.take(1)?[0])
            .ok_or_else(|| FlickerError::Marshal("bad mode".into()))?;
        let verdict = Verdict::from_u8(r.take(1)?[0])
            .ok_or_else(|| FlickerError::Marshal("bad verdict".into()))?;
        let attempts = r.u32()?;
        r.finish()?;
        Ok(ConfirmationToken {
            tx_digest,
            nonce,
            mode,
            verdict,
            attempts,
        })
    }
}

/// Everything the client sends back to the provider.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evidence {
    /// The PAL's output token (exact bytes, as bound into PCR 17).
    pub token_bytes: Vec<u8>,
    /// The TPM quote over PCR 17 with the request nonce.
    pub quote: Quote,
    /// The AIK certificate issued by the privacy CA.
    pub aik_cert: Vec<u8>,
}

impl Evidence {
    /// Wire encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_bytes(&mut buf, &self.token_bytes);
        put_bytes(&mut buf, &self.quote.to_bytes());
        put_bytes(&mut buf, &self.aik_cert);
        buf
    }

    /// Parses the wire encoding.
    pub fn from_bytes(data: &[u8]) -> Result<Self, FlickerError> {
        let mut r = Reader::new(data);
        let token_bytes = r.bytes()?.to_vec();
        let quote = Quote::from_bytes(r.bytes()?)
            .ok_or_else(|| FlickerError::Marshal("bad quote encoding".into()))?;
        let aik_cert = r.bytes()?.to_vec();
        r.finish()?;
        Ok(Evidence {
            token_bytes,
            quote,
            aik_cert,
        })
    }

    /// The decoded token.
    pub fn token(&self) -> Result<ConfirmationToken, FlickerError> {
        ConfirmationToken::from_bytes(&self.token_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utp_tpm::pcr::PcrSelection;

    fn tx() -> Transaction {
        Transaction::new(42, "shop.example", 12_34, "EUR", "order 9")
    }

    #[test]
    fn transaction_roundtrip() {
        let t = tx();
        assert_eq!(Transaction::from_bytes(&t.to_bytes()).unwrap(), t);
    }

    #[test]
    fn transaction_digest_is_field_sensitive() {
        let base = tx();
        let mut variants = vec![base.clone()];
        let mut v = base.clone();
        v.id = 43;
        variants.push(v);
        let mut v = base.clone();
        v.payee = "evil.example".into();
        variants.push(v);
        let mut v = base.clone();
        v.amount_cents = 999_999;
        variants.push(v);
        let mut v = base.clone();
        v.memo = "order 10".into();
        variants.push(v);
        for i in 0..variants.len() {
            for j in i + 1..variants.len() {
                assert_ne!(variants[i].digest(), variants[j].digest(), "{} vs {}", i, j);
            }
        }
    }

    #[test]
    fn transaction_encoding_is_unambiguous_across_fields() {
        // "ab" + "c" must encode differently from "a" + "bc".
        let t1 = Transaction::new(1, "ab", 0, "c", "");
        let t2 = Transaction::new(1, "a", 0, "bc", "");
        assert_ne!(t1.to_bytes(), t2.to_bytes());
        assert_ne!(t1.digest(), t2.digest());
    }

    #[test]
    fn display_amount_formats_cents() {
        assert_eq!(tx().display_amount(), "12.34 EUR");
        assert_eq!(
            Transaction::new(1, "p", 5, "USD", "").display_amount(),
            "0.05 USD"
        );
    }

    #[test]
    fn request_roundtrip() {
        let req = TransactionRequest {
            transaction: tx(),
            nonce: Sha1::digest(b"n"),
            mode: ConfirmMode::TypeCode,
        };
        assert_eq!(
            TransactionRequest::from_bytes(&req.to_bytes()).unwrap(),
            req
        );
    }

    #[test]
    fn request_rejects_bad_mode_and_truncation() {
        let req = TransactionRequest {
            transaction: tx(),
            nonce: Sha1Digest::zero(),
            mode: ConfirmMode::PressEnter,
        };
        let mut bytes = req.to_bytes();
        *bytes.last_mut().unwrap() = 9;
        assert!(TransactionRequest::from_bytes(&bytes).is_err());
        assert!(TransactionRequest::from_bytes(&bytes[..bytes.len() - 2]).is_err());
    }

    #[test]
    fn token_roundtrip_all_verdicts() {
        for verdict in [Verdict::Confirmed, Verdict::Rejected, Verdict::Timeout] {
            for mode in [ConfirmMode::PressEnter, ConfirmMode::TypeCode] {
                let token = ConfirmationToken {
                    tx_digest: Sha1::digest(b"t"),
                    nonce: Sha1::digest(b"n"),
                    mode,
                    verdict,
                    attempts: 2,
                };
                assert_eq!(
                    ConfirmationToken::from_bytes(&token.to_bytes()).unwrap(),
                    token
                );
            }
        }
    }

    #[test]
    fn token_rejects_garbage() {
        assert!(ConfirmationToken::from_bytes(&[]).is_err());
        let token = ConfirmationToken {
            tx_digest: Sha1Digest::zero(),
            nonce: Sha1Digest::zero(),
            mode: ConfirmMode::PressEnter,
            verdict: Verdict::Confirmed,
            attempts: 0,
        };
        let mut bytes = token.to_bytes();
        bytes.push(0); // trailing garbage
        assert!(ConfirmationToken::from_bytes(&bytes).is_err());
    }

    #[test]
    fn evidence_roundtrip() {
        let ev = Evidence {
            token_bytes: vec![1, 2, 3],
            quote: Quote {
                selection: PcrSelection::drtm_only(),
                pcr_values: vec![Sha1Digest::zero()],
                external_data: Sha1Digest::ones(),
                signature: vec![9; 64],
            },
            aik_cert: vec![4, 5],
        };
        assert_eq!(Evidence::from_bytes(&ev.to_bytes()).unwrap(), ev);
    }

    use utp_crypto::sha1::Sha1;
}
