//! Platform invariants under randomized schedules: whatever interleaving
//! of OS activity, hardware input and launches occurs, the isolation
//! rules must hold.

use proptest::prelude::*;
use utp_platform::keyboard::KeyEvent;
use utp_platform::machine::{Machine, MachineConfig};
use utp_platform::scancode::{encode, ScancodeDecoder};

/// An abstract action the OS / human can attempt.
#[derive(Debug, Clone, Copy)]
enum Action {
    OsInject(char),
    OsWriteDisplay,
    HardwareKey(char),
    OsReadKey,
    Launch,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        proptest::char::range('a', 'z').prop_map(Action::OsInject),
        Just(Action::OsWriteDisplay),
        proptest::char::range('a', 'z').prop_map(Action::HardwareKey),
        Just(Action::OsReadKey),
        Just(Action::Launch),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn machine_survives_any_action_sequence(
        actions in proptest::collection::vec(action_strategy(), 0..40),
        seed in any::<u64>()
    ) {
        let mut m = Machine::new(MachineConfig::fast_for_tests(seed));
        for action in actions {
            match action {
                Action::OsInject(c) => {
                    // Outside a session this must succeed; there is no
                    // "inside a session" state reachable here because a
                    // session borrows the machine exclusively.
                    m.os_inject_key(KeyEvent::Char(c)).unwrap();
                }
                Action::OsWriteDisplay => {
                    m.os_write_display(0, 0, "os text").unwrap();
                }
                Action::HardwareKey(c) => m.hardware_key(KeyEvent::Char(c)),
                Action::OsReadKey => {
                    let _ = m.os_read_key().unwrap();
                }
                Action::Launch => {
                    // Every launch must cleanly start and (on drop) end.
                    let mut session = m.skinit(b"prop pal").unwrap();
                    session.show(0, 0, "session").unwrap();
                    // The session never sees pre-session input.
                    prop_assert!(session.read_key().unwrap().is_none());
                    drop(session);
                    prop_assert!(!m.in_secure_session());
                }
            }
        }
        // The machine is still fully functional.
        prop_assert!(m.skinit(b"final").is_ok() || m.in_secure_session());
    }

    #[test]
    fn session_input_never_leaks_to_os(
        keys in proptest::collection::vec(proptest::char::range('0', '9'), 1..10),
        seed in any::<u64>()
    ) {
        let mut m = Machine::new(MachineConfig::fast_for_tests(seed));
        {
            let mut session = m.skinit(b"pal").unwrap();
            for &k in &keys {
                session.hardware_key(KeyEvent::Char(k));
            }
            // Session consumes some of them.
            let _ = session.read_key();
            session.end();
        }
        // Nothing typed during the session reaches the OS afterwards.
        prop_assert!(m.os_read_key().unwrap().is_none());
    }

    #[test]
    fn scancode_roundtrip_for_typable_lines(text in "[a-z0-9 .-]{0,20}") {
        let mut bytes = Vec::new();
        for c in text.chars() {
            bytes.extend(encode(KeyEvent::Char(c)).expect("typable"));
        }
        let events = ScancodeDecoder::new().decode_all(&bytes);
        let reconstructed: String = events
            .iter()
            .filter_map(|e| e.as_char())
            .collect();
        prop_assert_eq!(reconstructed, text);
    }
}
