//! Fixture-pinned tests for the authorization-flow and protocol-order
//! passes (PR 8).
//!
//! The two revert-fixtures re-introduce PR 7's provider bugs — the
//! evidence-order binding pre-check removed (`provider_unbound.rs`) and
//! sticky-Confirmed removed (`store_demote.rs`) — and the passes must
//! flag both, proving the static oracle catches what the dynamic
//! explorer did. Each bad fixture ships with a clean twin so the tests
//! pin the *boundary* of the rule, not just its firing.
//!
//! `authz_golden_snapshot_and_determinism` locks the combined findings
//! plus the authz coverage report byte-for-byte against
//! `tests/fixtures/authz/golden.json` across two runs. Regenerate with
//! `UPDATE_GOLDEN=1 cargo test -p utp-analyze`.

use std::fs;
use std::path::PathBuf;

use utp_analyze::diag::{render_json, Severity};
use utp_analyze::{analyze_files, Analysis};

fn fixture(rel: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/authz")
        .join(rel);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Runs the analyzer over fixtures mapped to fake workspace paths.
fn analyze(map: &[(&str, &str)]) -> Analysis {
    analyze_files(
        map.iter()
            .map(|(fake, rel)| (fake.to_string(), fixture(rel)))
            .collect(),
    )
}

/// Asserts diagnostics match `(file, line, lint, message-substring)`
/// exactly, in order.
fn assert_diags(analysis: &Analysis, expected: &[(&str, u32, &str, &str)]) {
    let got: Vec<String> = analysis
        .diagnostics
        .iter()
        .map(|d| format!("{}:{}: [{}] {}", d.file, d.line, d.lint, d.message))
        .collect();
    assert_eq!(
        analysis.diagnostics.len(),
        expected.len(),
        "diagnostic count mismatch:\n{}",
        got.join("\n")
    );
    for (d, (file, line, lint, needle)) in analysis.diagnostics.iter().zip(expected) {
        assert_eq!(d.file, *file, "wrong file:\n{}", got.join("\n"));
        assert_eq!(d.line, *line, "wrong line:\n{}", got.join("\n"));
        assert_eq!(d.lint, *lint, "wrong lint:\n{}", got.join("\n"));
        assert_eq!(d.severity, Severity::Deny);
        assert!(
            d.message.contains(needle),
            "message `{}` does not contain `{}`",
            d.message,
            needle
        );
    }
}

/// Revert-fixture 1: binding pre-check removed — both settlement sinks
/// (the store settle and the `Receipt`) deny for the missing
/// `order-bound` capability; the bound twin is clean.
#[test]
fn authz_flow_flags_unbound_settlement_and_accepts_bound_twin() {
    let analysis = analyze(&[
        ("crates/server/src/provider_bound.rs", "provider_bound.rs"),
        (
            "crates/server/src/provider_unbound.rs",
            "provider_unbound.rs",
        ),
    ]);
    assert_diags(
        &analysis,
        &[
            (
                "crates/server/src/provider_unbound.rs",
                16,
                "authorization-flow",
                "settling an order (`Store::try_settle`) in `submit_unbound` is not dominated \
                 by its authorization source(s): [order-bound] missing",
            ),
            (
                "crates/server/src/provider_unbound.rs",
                17,
                "authorization-flow",
                "constructing a settlement `Receipt` in `submit_unbound` is not dominated \
                 by its authorization source(s): [order-bound] missing",
            ),
        ],
    );
}

/// Revert-fixture 2: sticky-Confirmed removed — demoting an order to
/// Rejected without first checking for Confirmed denies; the guarded
/// twin (same file) is clean.
#[test]
fn authz_flow_flags_unguarded_status_demotion() {
    let analysis = analyze(&[("crates/server/src/store_demote.rs", "store_demote.rs")]);
    assert_diags(
        &analysis,
        &[(
            "crates/server/src/store_demote.rs",
            8,
            "authorization-flow",
            "demoting an order status to `Rejected` in `reject_unchecked` is not dominated \
             by its authorization source(s): [confirmed-checked] missing",
        )],
    );
}

/// WAL-before-ack: resolving the ticket before the journal append on a
/// `Settle` path denies; append-first, the `if let Some(journal)` guard
/// and the must-journaling helper (performer closure) are all clean.
#[test]
fn protocol_order_flags_ack_before_wal_only() {
    let analysis = analyze(&[("crates/server/src/order_ack.rs", "order_ack.rs")]);
    assert_diags(
        &analysis,
        &[(
            "crates/server/src/order_ack.rs",
            7,
            "protocol-order",
            "`send` here can run before `append_record` on some path through `ack_first`",
        )],
    );
}

/// WAL-before-challenge: registering the confirmation challenge before
/// the `CreateOrder` append denies; WAL-first is clean.
#[test]
fn protocol_order_flags_register_before_wal_only() {
    let analysis = analyze(&[("crates/server/src/order_place.rs", "order_place.rs")]);
    assert_diags(
        &analysis,
        &[(
            "crates/server/src/order_place.rs",
            12,
            "protocol-order",
            "`register` here can run before `append_record` on some path through \
             `register_first`",
        )],
    );
}

/// Caller-context lifting: a sink with no local authorization is clean
/// when every caller establishes the capabilities before the call, and
/// denied when its only caller establishes nothing.
#[test]
fn authz_flow_lifts_authorization_through_callers() {
    let analysis = analyze(&[("crates/server/src/authz_lift.rs", "authz_lift.rs")]);
    assert_diags(
        &analysis,
        &[(
            "crates/server/src/authz_lift.rs",
            38,
            "authorization-flow",
            "settling an order (`Store::try_settle`) in `finish_unchecked` is not dominated",
        )],
    );
}

const ALL_FIXTURES: &[(&str, &str)] = &[
    ("crates/server/src/authz_lift.rs", "authz_lift.rs"),
    ("crates/server/src/order_ack.rs", "order_ack.rs"),
    ("crates/server/src/order_place.rs", "order_place.rs"),
    ("crates/server/src/provider_bound.rs", "provider_bound.rs"),
    (
        "crates/server/src/provider_unbound.rs",
        "provider_unbound.rs",
    ),
    ("crates/server/src/store_demote.rs", "store_demote.rs"),
];

fn combined_document() -> String {
    let analysis = analyze(ALL_FIXTURES);
    let findings = render_json(&analysis.diagnostics);
    let findings = findings.trim_end().trim_end_matches('}');
    let authz = analysis.authz_report.to_json();
    let authz = authz
        .trim_start()
        .trim_start_matches('{')
        .trim_end()
        .trim_end_matches('}');
    format!("{findings},{authz}}}\n")
}

/// All authz fixtures combined: locks findings + the authz coverage
/// report byte-for-byte, and proves two runs are identical (no map
/// iteration order or fixpoint scheduling leaks into the output).
#[test]
fn authz_golden_snapshot_and_determinism() {
    let first = combined_document();
    let second = combined_document();
    assert_eq!(first, second, "authz analysis is not deterministic");

    let golden_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/authz/golden.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::write(&golden_path, &first).expect("write golden");
        return;
    }
    let golden = fs::read_to_string(&golden_path).expect(
        "tests/fixtures/authz/golden.json missing; regenerate with \
         UPDATE_GOLDEN=1 cargo test -p utp-analyze",
    );
    assert_eq!(
        first, golden,
        "authz JSON output diverged from the golden snapshot; if the \
         change is intentional regenerate with UPDATE_GOLDEN=1"
    );
}
