//! WAL-before-challenge fixtures: the order/nonce binding must be WAL'd
//! (`CreateOrder` record) before the confirmation challenge is
//! registered with the verifier service. Only `register_first` violates
//! the rule.

pub fn register_first(
    journal: &Journal,
    service: &VerifierService,
    request: &Request,
    now: Duration,
) {
    service.register(request, now);
    journal.append_record(&JournalRecord::CreateOrder { id: 1 });
}

pub fn wal_then_register(
    journal: &Journal,
    service: &VerifierService,
    request: &Request,
    now: Duration,
) {
    journal.append_record(&JournalRecord::CreateOrder { id: 1 });
    service.register(request, now);
}
