//! A small hand-rolled Rust lexer.
//!
//! The analyzer's passes only need a comment- and string-aware token
//! stream with line numbers — not a full parse tree — so this lexer
//! handles exactly the hard parts of Rust's lexical grammar that would
//! otherwise cause false positives: nested block comments, string /
//! raw-string / byte-string literals, char literals vs. lifetimes, and
//! multi-character operators the passes match on (`::`, `==`, `!=`, range
//! tokens). Everything else is a single-character punctuation token.

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unwrap`, `Instant`, ...).
    Ident,
    /// Lifetime such as `'a` (the tick is included in the text).
    Lifetime,
    /// Integer or float literal.
    Number,
    /// String, raw-string, byte-string or C-string literal (quotes kept).
    Str,
    /// Character or byte literal.
    Char,
    /// Punctuation; multi-char for `::`, `==`, `!=`, `..=`, `..`, `->`,
    /// `=>`, single char otherwise.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token classification.
    pub kind: TokenKind,
    /// Exact source text (for `Str`, the full literal including quotes).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// True when this is punctuation with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }

    /// True when this is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }
}

/// A line comment captured during lexing (the passes use these for
/// `// utp-analyze: allow(...)` annotations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text without the leading `//`.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// Lexer output: the token stream plus all line comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All `//` comments (including `///` doc comments) in source order.
    pub comments: Vec<Comment>,
}

/// Tokenizes `source`. Never fails: unterminated literals simply consume
/// the rest of the input, which is good enough for analysis purposes.
pub fn lex(source: &str) -> Lexed {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                // Raw / byte / C-string prefixes must win over plain idents.
                'r' | 'b' | 'c' if self.is_literal_prefix() => self.prefixed_literal(),
                // Raw identifiers (`r#match`) are one ident token, not
                // `r` + `#` + `match`.
                'r' if self.peek(1) == Some('#')
                    && self.peek(2).is_some_and(|c| c.is_alphabetic() || c == '_') =>
                {
                    self.raw_ident()
                }
                c if c.is_alphabetic() || c == '_' => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                '"' => self.string(line),
                '\'' => self.char_or_lifetime(),
                _ => self.punct(),
            }
        }
        self.out
    }

    /// Does the current `r`/`b`/`c` start a literal like `r"`, `r#"`,
    /// `b"`, `br##"`, `b'`?
    fn is_literal_prefix(&self) -> bool {
        let mut i = 1;
        // Allow a second prefix letter (`br`, `cr`).
        if matches!(self.peek(i), Some('r' | 'b')) && self.peek(0) != Some('r') {
            i += 1;
        }
        let mut j = i;
        while self.peek(j) == Some('#') {
            j += 1;
        }
        match self.peek(j) {
            Some('"') => true,
            // Byte char literal b'x'.
            Some('\'') => j == i && self.peek(0) == Some('b') && i == 1,
            _ => false,
        }
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { text, line });
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line);
    }

    /// `r#name` — the `r#` stays in the token text so a raw `r#match`
    /// never collides with the `match` keyword in downstream scans.
    fn raw_ident(&mut self) {
        let line = self.line;
        let mut text = String::from("r#");
        self.bump();
        self.bump();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        // Numbers may contain `_`, type suffixes, hex digits, and one `.`
        // (but `1..2` is two numbers and a range operator).
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.' && self.peek(1) != Some('.') && !text.contains('.') {
                // A digit must follow for this to be part of the number
                // (`1.max(2)` keeps `1` and `.` separate).
                if self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            } else {
                break;
            }
        }
        self.push(TokenKind::Number, text, line);
    }

    fn string(&mut self, line: u32) {
        let mut text = String::new();
        text.push(self.bump().expect("opening quote"));
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '\\' {
                if let Some(escaped) = self.bump() {
                    text.push(escaped);
                }
            } else if c == '"' {
                break;
            }
        }
        self.push(TokenKind::Str, text, line);
    }

    /// Literal starting with `r`, `b`, `c` prefixes: raw strings with any
    /// number of `#` guards, byte strings, or byte chars.
    fn prefixed_literal(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut raw = false;
        while let Some(c) = self.peek(0) {
            if matches!(c, 'r' | 'b' | 'c') && text.len() < 2 {
                raw |= c == 'r';
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let mut guards = 0usize;
        while self.peek(0) == Some('#') {
            guards += 1;
            text.push('#');
            self.bump();
        }
        match self.peek(0) {
            Some('"') if raw || guards > 0 => {
                // Raw string: ends at `"` followed by `guards` hashes.
                text.push(self.bump().expect("quote"));
                loop {
                    match self.bump() {
                        None => break,
                        Some('"') => {
                            text.push('"');
                            let mut seen = 0;
                            while seen < guards && self.peek(0) == Some('#') {
                                text.push('#');
                                self.bump();
                                seen += 1;
                            }
                            if seen == guards {
                                break;
                            }
                        }
                        Some(c) => text.push(c),
                    }
                }
                self.push(TokenKind::Str, text, line);
            }
            Some('"') => {
                // Cooked byte/C string: same escape rules as `string`.
                text.push(self.bump().expect("quote"));
                while let Some(c) = self.bump() {
                    text.push(c);
                    if c == '\\' {
                        if let Some(escaped) = self.bump() {
                            text.push(escaped);
                        }
                    } else if c == '"' {
                        break;
                    }
                }
                self.push(TokenKind::Str, text, line);
            }
            Some('\'') => {
                // Byte char literal b'x' / b'\n'.
                text.push(self.bump().expect("quote"));
                if self.peek(0) == Some('\\') {
                    text.push(self.bump().expect("backslash"));
                }
                while let Some(c) = self.bump() {
                    text.push(c);
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokenKind::Char, text, line);
            }
            _ => self.push(TokenKind::Ident, text, line),
        }
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        // `'a'` / `'\n'` are chars; `'a` (no closing tick) is a lifetime.
        let is_char = matches!(
            (self.peek(1), self.peek(2)),
            (Some('\\'), _) | (Some(_), Some('\''))
        );
        if is_char {
            let mut text = String::new();
            text.push(self.bump().expect("tick"));
            if self.peek(0) == Some('\\') {
                text.push(self.bump().expect("backslash"));
                if let Some(escaped) = self.bump() {
                    text.push(escaped);
                    // Unicode escapes: consume through the closing brace.
                    if escaped == 'u' {
                        while let Some(c) = self.bump() {
                            text.push(c);
                            if c == '}' {
                                break;
                            }
                        }
                    }
                }
            } else if let Some(c) = self.bump() {
                text.push(c);
            }
            if self.peek(0) == Some('\'') {
                text.push(self.bump().expect("closing tick"));
            }
            self.push(TokenKind::Char, text, line);
        } else {
            let mut text = String::new();
            text.push(self.bump().expect("tick"));
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokenKind::Lifetime, text, line);
        }
    }

    fn punct(&mut self) {
        let line = self.line;
        let c = self.bump().expect("punct char");
        // Join the few multi-char operators the passes care about.
        let joined = match (c, self.peek(0), self.peek(1)) {
            (':', Some(':'), _) => Some("::"),
            ('=', Some('='), _) => Some("=="),
            ('!', Some('='), _) => Some("!="),
            ('.', Some('.'), Some('=')) => Some("..="),
            ('.', Some('.'), _) => Some(".."),
            ('-', Some('>'), _) => Some("->"),
            ('=', Some('>'), _) => Some("=>"),
            _ => None,
        };
        if let Some(op) = joined {
            for _ in 1..op.len() {
                self.bump();
            }
            self.push(TokenKind::Punct, op.to_string(), line);
        } else {
            self.push(TokenKind::Punct, c.to_string(), line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let x = "a.unwrap() // not a comment";"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("unwrap")));
        // The unwrap inside the string is not an ident token.
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
        // Escaped quotes don't terminate the string early.
        let toks = kinds(r#"("ab\"cd", next)"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("cd")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "next"));
    }

    #[test]
    fn raw_strings_with_guards() {
        let toks = kinds(r###"let s = r#"quote " inside"#; let t = 1;"###);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("inside")));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "t"));
        let toks = kinds(r#"let b = br"bytes"; done"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("bytes")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "done"));
    }

    #[test]
    fn nested_block_comments_are_skipped() {
        let toks = kinds("before /* outer /* inner */ still comment */ after");
        let idents: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["before", "after"]);
    }

    #[test]
    fn raw_identifiers_are_one_token() {
        // `r#match` must not split into `r` + `#` + `match` (which used
        // to happen — the literal-prefix probe only claims `r#"`), and
        // the keyword scanners must not see a bare `match` ident.
        let toks = kinds("let r#match = r#fn + other;");
        let idents: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["let", "r#match", "r#fn", "other"]);
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Punct && t == "#"));
        // `r#"…"#` still lexes as a raw string, not a raw ident.
        let toks = kinds(r###"let s = r#"text"#;"###);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("text")));
    }

    #[test]
    fn raw_strings_comments_and_raw_idents_interleave() {
        let toks = kinds(
            r###"let r#type = r#"raw " body"#; /* note /* nested */ gone */ let tail = 2;"###,
        );
        let idents: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["let", "r#type", "let", "tail"]);
        assert!(!toks.iter().any(|(_, t)| t.contains("gone")));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "'a"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Char && t == "'x'"));
        let toks = kinds(r"let c = '\n'; let l: &'static str = s;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Char && t == r"'\n'"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "'static"));
    }

    #[test]
    fn byte_char_and_unicode_escape() {
        let toks = kinds(r"let a = b'x'; let c = '\u{1F600}'; end");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Char && t == "b'x'"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Char && t.starts_with(r"'\u{")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "end"));
    }

    #[test]
    fn multi_char_operators_and_ranges() {
        let toks = kinds("a == b; c != d; e::f; 0..10; 1..=9; x -> y => z");
        let puncts: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        for op in ["==", "!=", "::", "..", "..=", "->", "=>"] {
            assert!(puncts.contains(&op), "missing {op}");
        }
        // `0..10` must be two numbers, not a float.
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && t == "0"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && t == "10"));
    }

    #[test]
    fn shr_in_nested_generics_is_two_closing_angles() {
        // The CFG builder brace-matches `<`/`>` by depth, so `>>` in
        // `Vec<Vec<u8>>` must stay two `>` puncts, never a shift op.
        let toks = kinds("let x: Vec<Vec<u8>> = make(); x >> 2;");
        let gt: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, (k, t))| *k == TokenKind::Punct && t == ">")
            .map(|(i, _)| i)
            .collect();
        assert_eq!(gt.len(), 4, "four single `>` tokens: {toks:?}");
        // The generic closers are adjacent token positions.
        assert_eq!(gt[1], gt[0] + 1);
        assert!(!toks.iter().any(|(_, t)| t == ">>"));
    }

    #[test]
    fn if_let_chains_keep_their_structure() {
        // `&&` must stay two `&` puncts and the `let` keyword an Ident
        // so statement splitting sees the chain's shape.
        let toks = kinds("if let Some(a) = m && flag { use_it(a); }");
        let texts: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(&texts[..8], ["if", "let", "Some", "(", "a", ")", "=", "m"]);
        let amps = texts.iter().filter(|t| **t == "&").count();
        assert_eq!(amps, 2, "`&&` lexes as two `&`: {texts:?}");
        assert!(!texts.contains(&"&&"));
    }

    #[test]
    fn labeled_breaks_lex_label_as_lifetime() {
        // `'outer` must not be swallowed as an unterminated char
        // literal, or everything after the label disappears from the
        // token stream (and from every CFG built over it).
        let toks = kinds("'outer: loop { if done() { break 'outer; } continue 'outer; } after");
        let labels = toks
            .iter()
            .filter(|(k, t)| *k == TokenKind::Lifetime && t == "'outer")
            .count();
        assert_eq!(labels, 3);
        for kw in ["loop", "break", "continue", "after"] {
            assert!(
                toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == kw),
                "missing {kw}"
            );
        }
    }

    #[test]
    fn closure_bodies_stay_in_the_token_stream() {
        // Closure pipes are plain puncts (`||` is two tokens), so a
        // closure body's statements stay visible to the CFG builder.
        let toks = kinds("let f = |acc, x| acc + x; items.retain(|| keep());");
        let pipes = toks.iter().filter(|(_, t)| t == "|").count();
        assert_eq!(pipes, 4, "{toks:?}");
        assert!(!toks.iter().any(|(_, t)| t == "||"));
        for id in ["acc", "x", "retain", "keep"] {
            assert!(
                toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == id),
                "missing {id}"
            );
        }
    }

    #[test]
    fn float_vs_method_call_on_number() {
        let toks = kinds("let a = 1.5; let b = 1.max(2);");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && t == "1.5"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "max"));
    }

    #[test]
    fn line_numbers_and_comments() {
        let lexed = lex("line1\n// a comment\nline3 // trailing\nline4");
        let l3 = lexed
            .tokens
            .iter()
            .find(|t| t.text == "line3")
            .expect("line3 token");
        assert_eq!(l3.line, 3);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 2);
        assert_eq!(lexed.comments[1].line, 3);
        assert!(lexed.comments[1].text.contains("trailing"));
    }
}
