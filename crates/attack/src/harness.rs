//! Trial harness: turns per-trial attack closures into success rates.

/// Result of running an attack scenario many times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackResult {
    /// Trials executed.
    pub attempts: usize,
    /// Trials in which the provider settled a transaction the human never
    /// approved.
    pub successes: usize,
}

impl AttackResult {
    /// Success rate in `[0, 1]`.
    pub fn rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.successes as f64 / self.attempts as f64
        }
    }
}

/// Runs `trials` independent attempts of a seeded attack scenario.
///
/// Each trial gets a distinct derived seed so the worlds are independent
/// but the whole experiment is reproducible.
pub fn run_trials(
    trials: usize,
    base_seed: u64,
    mut attack: impl FnMut(u64) -> bool,
) -> AttackResult {
    let mut successes = 0;
    for i in 0..trials {
        let seed = base_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(i as u64);
        if attack(seed) {
            successes += 1;
        }
    }
    AttackResult {
        attempts: trials,
        successes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_compute() {
        let r = AttackResult {
            attempts: 200,
            successes: 50,
        };
        assert!((r.rate() - 0.25).abs() < 1e-12);
        assert_eq!(
            AttackResult {
                attempts: 0,
                successes: 0
            }
            .rate(),
            0.0
        );
    }

    #[test]
    fn trials_pass_distinct_seeds() {
        let mut seeds = Vec::new();
        run_trials(10, 42, |s| {
            seeds.push(s);
            false
        });
        let unique: std::collections::HashSet<u64> = seeds.iter().copied().collect();
        assert_eq!(unique.len(), 10);
    }

    #[test]
    fn trials_count_successes() {
        let mut flip = false;
        let r = run_trials(10, 1, |_| {
            flip = !flip;
            flip
        });
        assert_eq!(r.attempts, 10);
        assert_eq!(r.successes, 5);
    }
}
