//! E6 — CAPTCHA replacement comparison: human cost, human failure rate,
//! bot success and provider CPU per verified human action, for CAPTCHAs
//! versus the trusted path (the paper's headline application argument).
//!
//! Regenerate: `cargo run -p utp-bench --bin e6_captcha_compare`

use crate::table;
use std::time::Duration;
use utp_captcha::{BotSolver, CaptchaGenerator, Difficulty, HumanSolver};
use utp_core::ca::PrivacyCa;
use utp_core::client::{Client, ClientConfig};
use utp_core::operator::{ConfirmingHuman, Intent};
use utp_core::protocol::{ConfirmMode, Transaction};
use utp_core::verifier::Verifier;
use utp_platform::machine::{Machine, MachineConfig};
use utp_server::metrics::Summary;
use utp_tpm::VendorProfile;

/// One mechanism's measured costs.
#[derive(Debug, Clone)]
pub struct MechanismRow {
    /// Mechanism label.
    pub mechanism: String,
    /// Human time per action (mean over samples).
    pub human_time: Summary,
    /// Fraction of honest human attempts that fail.
    pub human_failure_rate: f64,
    /// Automated attack success rate (best available bot).
    pub bot_success_rate: f64,
    /// Host CPU the provider spends per verified action.
    pub server_cpu: Duration,
}

fn captcha_row(difficulty: Difficulty, label: &str, samples: usize) -> MechanismRow {
    let mut generator = CaptchaGenerator::new(21);
    let mut human = HumanSolver::new(22);
    let mut bot = BotSolver::ocr(23);
    let mut times = Vec::new();
    let mut failures = 0usize;
    let mut bot_successes = 0usize;
    for _ in 0..samples {
        let c = generator.generate(difficulty);
        let h = human.solve(&c);
        times.push(h.elapsed);
        if !h.success {
            failures += 1;
        }
        if bot.solve(&c).success {
            bot_successes += 1;
        }
    }
    MechanismRow {
        mechanism: label.to_string(),
        human_time: Summary::of(&times).expect("samples > 0"),
        human_failure_rate: failures as f64 / samples as f64,
        bot_success_rate: bot_successes as f64 / samples as f64,
        // Checking a CAPTCHA answer is a string compare: effectively free.
        server_cpu: Duration::from_micros(5),
    }
}

fn utp_row(mode: ConfirmMode, label: &str, samples: usize) -> MechanismRow {
    let ca = PrivacyCa::new(512, 31);
    let mut verifier = Verifier::new(ca.public_key().clone(), 32);
    let mut machine = Machine::new(MachineConfig::realistic(VendorProfile::Infineon, 33));
    let enrollment = ca.enroll(&mut machine);
    let mut client = Client::new(ClientConfig::fast_for_tests(), enrollment);
    let mut times = Vec::new();
    let mut failures = 0usize;
    let mut verify_cpu = Duration::ZERO;
    for i in 0..samples {
        let tx = Transaction::new(i as u64, "shop.example", 1_000, "EUR", "x");
        let request = verifier.issue_request_with_mode(tx.clone(), mode, machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&tx), 600 + i as u64);
        let (evidence, report) = client
            .confirm_with_report(&mut machine, &request, &mut human)
            .expect("session runs");
        times.push(report.timings.human);
        let wall = std::time::Instant::now();
        if verifier.verify(&evidence, machine.now()).is_err() {
            failures += 1;
        }
        verify_cpu += wall.elapsed();
    }
    MechanismRow {
        mechanism: label.to_string(),
        human_time: Summary::of(&times).expect("samples > 0"),
        human_failure_rate: failures as f64 / samples as f64,
        // E5 shows every automated attack fails against UTP.
        bot_success_rate: 0.0,
        server_cpu: verify_cpu / samples as u32,
    }
}

/// Runs the comparison.
pub fn run(samples: usize) -> Vec<MechanismRow> {
    vec![
        captcha_row(Difficulty::Easy, "captcha-easy", samples),
        captcha_row(Difficulty::Medium, "captcha-medium", samples),
        captcha_row(Difficulty::Hard, "captcha-hard", samples),
        utp_row(ConfirmMode::PressEnter, "utp-press-enter", samples.min(60)),
        utp_row(ConfirmMode::TypeCode, "utp-type-code", samples.min(60)),
    ]
}

/// Renders the E6 table.
pub fn render(rows: &[MechanismRow]) -> String {
    table::render(
        "E6 - CAPTCHA vs uni-directional trusted path, per verified human action",
        &[
            "mechanism",
            "human mean(ms)",
            "human p95(ms)",
            "human fail",
            "bot success",
            "server cpu(ms)",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.mechanism.clone(),
                    table::ms(r.human_time.mean),
                    table::ms(r.human_time.p95),
                    table::pct(r.human_failure_rate),
                    table::pct(r.bot_success_rate),
                    format!("{:.3}", r.server_cpu.as_secs_f64() * 1e3),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utp_beats_captcha_on_every_security_axis() {
        let rows = run(200);
        let get = |m: &str| rows.iter().find(|r| r.mechanism == m).unwrap().clone();
        let captcha = get("captcha-medium");
        let utp_enter = get("utp-press-enter");
        let utp_code = get("utp-type-code");
        // Security: bots beat CAPTCHAs at some rate; never UTP.
        assert!(captcha.bot_success_rate > 0.0);
        assert_eq!(utp_enter.bot_success_rate, 0.0);
        // Usability: press-enter confirmation is faster than solving a
        // CAPTCHA; type-code is comparable.
        assert!(utp_enter.human_time.mean < captcha.human_time.mean);
        assert!(utp_code.human_time.mean < captcha.human_time.mean * 2);
        // Reliability: honest humans fail CAPTCHAs far more often.
        assert!(captcha.human_failure_rate > utp_enter.human_failure_rate);
    }
}
