//! Online banking with the protocol extensions: one attested key-setup
//! session, then fast amortized (quote-free) confirmations, plus a batch
//! session settling several standing orders at once.
//!
//! Run with: `cargo run --example online_banking`

use utp::core::amortized::{AmortizedClient, AmortizedVerifier};
use utp::core::batch::{BatchClient, BatchVerifier};
use utp::core::ca::PrivacyCa;
use utp::core::operator::{ConfirmingHuman, Intent};
use utp::core::protocol::{ConfirmMode, Transaction};
use utp::flicker::pal::{Operator, OperatorResponse};
use utp::platform::keyboard::KeyEvent;
use utp::platform::machine::{Machine, MachineConfig};
use utp::tpm::VendorProfile;

fn main() {
    println!("== Online banking: amortized + batch confirmations ==\n");
    let ca = PrivacyCa::new(1024, 41);
    let mut machine = Machine::new(MachineConfig::realistic(VendorProfile::Broadcom, 42));

    // --- One-time enrollment + key setup (the only quote of the day) -------
    let mut amortized = AmortizedVerifier::new(ca.public_key().clone(), 1024, 43);
    let enrollment = ca.enroll(&mut machine);
    let mut client = AmortizedClient::new(enrollment.clone());
    let setup = client
        .setup(&mut machine, &mut amortized)
        .expect("setup session runs");
    println!(
        "[bank] key-setup session attested with one quote ({:.0} ms machine time)",
        setup.timings.machine_only().as_secs_f64() * 1e3
    );

    // --- Three wire transfers, each MAC-authenticated, no quotes ----------
    for (payee, cents) in [
        ("landlord.example", 95_000u64),
        ("energy.example", 8_420),
        ("isp.example", 3_999),
    ] {
        let tx = Transaction::new(cents, payee, cents, "EUR", "monthly");
        let request = amortized.issue_request(tx.clone(), ConfirmMode::PressEnter, machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&tx), cents);
        let (evidence, report) = client
            .confirm_with_report(&mut machine, &request, &mut human)
            .expect("amortized session runs");
        amortized.verify(&evidence).expect("MAC verifies");
        println!(
            "[bank] transfer {} to {} confirmed — {:.0} ms machine time, no quote",
            tx.display_amount(),
            payee,
            report.timings.machine_only().as_secs_f64() * 1e3
        );
    }

    // --- A batch of standing orders in one session -------------------------
    println!("\n-- quarterly standing orders, one session, one quote --");
    let mut batch_verifier = BatchVerifier::new(ca.public_key().clone());
    let mut batch_client = BatchClient::new(enrollment);
    let orders: Vec<Transaction> = [
        ("charity.example", 2_000u64),
        ("gym.example", 4_500),
        ("paper.example", 5_900),
        ("insurance.example", 21_750),
    ]
    .iter()
    .enumerate()
    .map(|(i, (payee, cents))| Transaction::new(i as u64, *payee, *cents, "EUR", "standing order"))
    .collect();
    let request = batch_verifier.issue_batch(orders.clone(), machine.now());

    struct ApproveAll;
    impl Operator for ApproveAll {
        fn respond(&mut self, _screen: &[String]) -> OperatorResponse {
            OperatorResponse {
                events: vec![KeyEvent::Enter],
                elapsed: std::time::Duration::from_secs(2),
            }
        }
    }
    let (evidence, report) = batch_client
        .confirm_batch(&mut machine, &request, &mut ApproveAll)
        .expect("batch session runs");
    let confirmed = batch_verifier.verify(&evidence).expect("batch verifies");
    println!(
        "[bank] {} of {} standing orders confirmed in one session",
        confirmed.len(),
        orders.len()
    );
    println!(
        "[bank] per-order machine time: {:.0} ms (vs ~{:.0} ms unbatched on this chip)",
        report.timings.machine_only().as_secs_f64() * 1e3 / orders.len() as f64,
        report.timings.machine_only().as_secs_f64() * 1e3
    );
    assert_eq!(confirmed.len(), orders.len());
}
