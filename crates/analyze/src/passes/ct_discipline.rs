//! Pass 3: `ct-discipline` — secret-dependent control flow and memory
//! addressing must be constant-time.
//!
//! Short-circuiting `==`/`!=` on key/digest/MAC material, branching on
//! a secret value, indexing a table at a secret-dependent address, and
//! early `return`s inside loops over secrets all leak timing to the
//! untrusted OS sharing the machine. In `utp-crypto` and the TPM auth
//! path these must go through `utp_crypto::ct::ct_eq` / `ct_select`.
//!
//! Whether a value *is* secret is decided flow-sensitively: each
//! function body is lowered to a CFG and a per-local secrecy state is
//! solved to a fixpoint. A local's flow state overrides the name
//! heuristic in both directions —
//!
//! * `let probe = auth_digest[0];` makes `probe` secret even though the
//!   name says nothing (the flow-insensitive pass missed this);
//! * `let digest = data.len();` makes `digest` public even though the
//!   name matches (the flow-insensitive pass flagged any later
//!   `digest == n` comparison).
//!
//! Untracked identifiers (parameters, fields, anything bound through a
//! call we can't classify) fall back to the name heuristic
//! ([`super::is_secret_ident`]). Results of `ct_eq` are public by
//! construction — branching on them is the approved idiom — and public
//! projections (`len`, `is_some`, ...) launder their receiver. On a
//! fallback CFG the pass degrades to the pure name heuristic.

use super::{Finding, Pass};
use crate::cfg::{build_cfg, Role, Stmt};
use crate::dataflow::{solve, JoinMap, Lattice};
use crate::diag::Severity;
use crate::items::matching;
use crate::lexer::{Token, TokenKind};
use crate::passes::flow::{binding_of, is_local_use, postfix_projects_public};
use crate::source::SourceFile;

/// Methods whose results are public even on secret receivers.
const PUBLIC_PROJECTIONS: &[&str] = &[
    "len", "is_empty", "count", "capacity", "is_some", "is_none", "is_ok", "is_err",
];

/// Constant-time comparators: their *results* are public (branching on
/// `ct_eq(..)` is the approved pattern), and their arguments are where
/// secrets are supposed to go.
const CT_FNS: &[&str] = &["ct_eq", "ct_select"];

/// The `ct-discipline` pass.
pub struct CtDiscipline;

/// Is this file in scope: the crypto crate, or the TPM authorization path?
fn in_scope(path: &str) -> bool {
    path.starts_with("crates/crypto/src/")
        || path == "crates/tpm/src/auth.rs"
        || path == "crates/tpm/src/seal.rs"
}

impl Pass for CtDiscipline {
    fn id(&self) -> &'static str {
        "ct-discipline"
    }

    fn description(&self) -> &'static str {
        "secret values (tracked flow-sensitively) must not reach comparisons, branches, \
         or indices outside ct_eq/ct_select"
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        if !in_scope(&file.path) {
            return Vec::new();
        }
        let flow = FileFlow::build(file);
        let mut findings = Vec::new();
        self.check_comparisons(file, &flow, &mut findings);
        self.check_branches(file, &flow, &mut findings);
        self.check_indexing(file, &flow, &mut findings);
        self.check_loop_returns(file, &mut findings);
        findings
    }
}

// ---------------------------------------------------------------------
// Per-local secrecy flow.

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sec {
    Clean,
    Secret,
}

impl Lattice for Sec {
    fn join_from(&mut self, other: &Self) -> bool {
        if *self == Sec::Clean && *other == Sec::Secret {
            *self = Sec::Secret;
            true
        } else {
            false
        }
    }
}

type Env = JoinMap<Sec>;

/// Solved secrecy states: for every statement of every structured
/// function body, the environment *at entry to* that statement.
struct FileFlow {
    /// Disjoint statements (with their roles) and their entry states.
    states: Vec<(Stmt, Env)>,
}

impl FileFlow {
    fn build(file: &SourceFile) -> FileFlow {
        let toks = &file.tokens;
        let mut states = Vec::new();
        for f in &file.items.fns {
            let Some(body) = f.body else { continue };
            let cfg = build_cfg(toks, body);
            if cfg.fallback {
                continue; // name heuristic only in this fn
            }
            let entries = solve(&cfg, Env::default(), |s, env| transfer(toks, s, env));
            for (bi, block) in cfg.blocks.iter().enumerate() {
                let Some(entry) = &entries[bi] else { continue };
                let mut env = entry.clone();
                for s in &block.stmts {
                    states.push((s.clone(), env.clone()));
                    transfer(toks, s, &mut env);
                }
            }
        }
        FileFlow { states }
    }

    /// Environment at the statement containing token `i`, if any.
    fn env_at(&self, i: usize) -> Option<&Env> {
        self.states
            .iter()
            .find(|(s, _)| (s.lo..s.hi).contains(&i))
            .map(|(_, e)| e)
    }

    /// Is `name` (used at token `i`) secret? Flow state wins; untracked
    /// names fall back to the heuristic.
    fn is_secret(&self, name: &str, i: usize) -> bool {
        match self.env_at(i).and_then(|e| e.0.get(name)) {
            Some(Sec::Secret) => true,
            Some(Sec::Clean) => false,
            None => super::is_secret_ident(name),
        }
    }
}

/// Secrecy of the expression `[lo, hi)` under `env`: `Some(Secret)` if
/// any live secret flows in, `Some(Clean)` if every part is known
/// public, `None` when a call we can't classify decides the value (the
/// binding then stays on the name heuristic).
fn classify(toks: &[Token], lo: usize, hi: usize, env: &Env) -> Option<Sec> {
    let mut secret = false;
    let mut unknown_call = false;
    let mut i = lo;
    while i < hi {
        let t = &toks[i];
        if t.kind == TokenKind::Ident && toks.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            let callee = t.text.as_str();
            if callee == "ct_eq" {
                // Public bool result; arguments are the sanctioned
                // destination for secrets — skip them entirely.
                if let Some(close) = matching(toks, i + 1, "(", ")") {
                    i = close + 1;
                    continue;
                }
            } else if !PUBLIC_PROJECTIONS.contains(&callee) {
                unknown_call = true;
            }
        }
        if is_local_use(toks, i) && !toks[i].is_ident("mut") {
            let name = &t.text;
            let effective = match env.0.get(name) {
                Some(Sec::Secret) => true,
                Some(Sec::Clean) => false,
                None => super::is_secret_ident(name),
            };
            if effective && !postfix_projects_public(toks, i, PUBLIC_PROJECTIONS) {
                secret = true;
            }
        }
        i += 1;
    }
    if secret {
        Some(Sec::Secret)
    } else if unknown_call {
        None
    } else {
        Some(Sec::Clean)
    }
}

fn transfer(toks: &[Token], s: &Stmt, env: &mut Env) {
    match s.role {
        Role::For => {
            // `for PAT in EXPR`: bind the pattern idents with EXPR's
            // secrecy (`for b in key.iter()` makes `b` secret).
            let Some(in_pos) = (s.lo..s.hi).find(|&i| toks[i].is_ident("in")) else {
                return;
            };
            let v = classify(toks, in_pos + 1, s.hi, env);
            for t in &toks[s.lo..in_pos] {
                if t.kind == TokenKind::Ident && !t.is_ident("mut") {
                    match v {
                        Some(v) => {
                            env.0.insert(t.text.clone(), v);
                        }
                        None => {
                            env.0.remove(&t.text);
                        }
                    }
                }
            }
        }
        Role::Normal => {
            let Some((name, rhs_lo, compound)) = binding_of(toks, s) else {
                return;
            };
            match classify(toks, rhs_lo, s.hi, env) {
                Some(Sec::Secret) => {
                    env.0.insert(name, Sec::Secret);
                }
                Some(Sec::Clean) => {
                    if !compound {
                        env.0.insert(name, Sec::Clean);
                    }
                }
                // Unclassifiable: drop any override so the name
                // heuristic applies again (`let digest = ctx.finalize()`
                // must stay treated as secret).
                None => {
                    env.0.remove(&name);
                }
            }
        }
        _ => {}
    }
}

// ---------------------------------------------------------------------
// Sinks.

impl CtDiscipline {
    fn check_comparisons(&self, file: &SourceFile, flow: &FileFlow, findings: &mut Vec<Finding>) {
        let tokens = &file.tokens;
        for (i, t) in tokens.iter().enumerate() {
            if !(t.is_punct("==") || t.is_punct("!=")) || file.in_test_code(t.line) {
                continue;
            }
            let left = operand_idents(tokens, i, Direction::Left);
            let right = operand_idents(tokens, i, Direction::Right);
            let secret_side = |idents: &[String]| {
                idents.iter().any(|s| flow.is_secret(s, i))
                    && !idents
                        .iter()
                        .any(|s| PUBLIC_PROJECTIONS.contains(&s.as_str()))
            };
            if secret_side(&left) || secret_side(&right) {
                findings.push(Finding {
                    line: t.line,
                    severity: Severity::Deny,
                    message: format!(
                        "`{}` on secret-named data short-circuits on the first differing \
                         byte, leaking a timing oracle; compare with \
                         `utp_crypto::ct::ct_eq` (or select with `ct_select`)",
                        t.text
                    ),
                });
            }
        }
    }

    /// Branch-on-secret: an `if`/`while` condition or `match` scrutinee
    /// whose value depends on a live secret. Conditions containing
    /// `==`/`!=` are left to [`Self::check_comparisons`] (one finding
    /// per defect), and anything inside `ct_eq`/`ct_select` arguments
    /// is the approved idiom.
    fn check_branches(&self, file: &SourceFile, flow: &FileFlow, findings: &mut Vec<Finding>) {
        let toks = &file.tokens;
        for (stmt, env) in &flow.states {
            let (lo, hi) = (stmt.lo, stmt.hi);
            if !matches!(stmt.role, Role::If | Role::While | Role::Match) {
                continue;
            }
            if file.in_test_code(toks[lo].line) {
                continue;
            }
            if toks[lo..hi]
                .iter()
                .any(|t| t.is_punct("==") || t.is_punct("!="))
            {
                continue;
            }
            let mut i = lo;
            while i < hi {
                let t = &toks[i];
                if t.kind == TokenKind::Ident
                    && CT_FNS.contains(&t.text.as_str())
                    && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
                {
                    if let Some(close) = matching(toks, i + 1, "(", ")") {
                        i = close + 1;
                        continue;
                    }
                }
                if is_local_use(toks, i) {
                    let name = &t.text;
                    let effective = match env.0.get(name) {
                        Some(Sec::Secret) => true,
                        Some(Sec::Clean) => false,
                        None => super::is_secret_ident(name),
                    };
                    if effective && !postfix_projects_public(toks, i, PUBLIC_PROJECTIONS) {
                        findings.push(Finding {
                            line: t.line,
                            severity: Severity::Deny,
                            message: format!(
                                "branching on secret-dependent value `{}` leaks it through \
                                 the instruction stream; compute both paths and pick with \
                                 `utp_crypto::ct::ct_select` (compare with `ct_eq`)",
                                name
                            ),
                        });
                        break; // one finding per condition
                    }
                }
                i += 1;
            }
        }
    }

    /// Secret-dependent indexing: a live secret inside a postfix
    /// `[...]` addresses memory by secret value (cache-line oracle).
    /// Indexing *into* a secret buffer with a public index is fine.
    fn check_indexing(&self, file: &SourceFile, flow: &FileFlow, findings: &mut Vec<Finding>) {
        let toks = &file.tokens;
        for (stmt, env) in &flow.states {
            let (lo, hi) = (stmt.lo, stmt.hi);
            let mut i = lo + 1;
            while i < hi {
                if !(toks[i].is_punct("[") && is_postfix_index(&toks[i - 1])) {
                    i += 1;
                    continue;
                }
                let Some(close) = matching(toks, i, "[", "]") else {
                    break;
                };
                for j in i + 1..close.min(hi) {
                    if !is_local_use(toks, j) || file.in_test_code(toks[j].line) {
                        continue;
                    }
                    let name = &toks[j].text;
                    let effective = match env.0.get(name) {
                        Some(Sec::Secret) => true,
                        Some(Sec::Clean) => false,
                        None => super::is_secret_ident(name),
                    };
                    if effective && !postfix_projects_public(toks, j, PUBLIC_PROJECTIONS) {
                        findings.push(Finding {
                            line: toks[j].line,
                            severity: Severity::Deny,
                            message: format!(
                                "indexing with secret-dependent value `{}` addresses memory \
                                 by secret; the cache line it touches is observable — scan \
                                 all entries and pick with `utp_crypto::ct::ct_select`",
                                name
                            ),
                        });
                        break;
                    }
                }
                i = close + 1;
            }
        }
    }

    fn check_loop_returns(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
        let tokens = &file.tokens;
        for (i, t) in tokens.iter().enumerate() {
            if t.kind != TokenKind::Ident
                || !matches!(t.text.as_str(), "for" | "while" | "loop")
                || file.in_test_code(t.line)
            {
                continue;
            }
            // Header = tokens between the keyword and the body's `{`.
            let Some(body_open) = tokens[i..].iter().position(|t| t.is_punct("{")) else {
                continue;
            };
            let body_open = i + body_open;
            let header_secret = tokens[i + 1..body_open]
                .iter()
                .any(|t| t.kind == TokenKind::Ident && super::is_secret_ident(&t.text));
            if !header_secret {
                continue;
            }
            // Body extent via brace matching.
            let mut depth = 0usize;
            let mut close = body_open;
            while close < tokens.len() {
                if tokens[close].is_punct("{") {
                    depth += 1;
                } else if tokens[close].is_punct("}") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                close += 1;
            }
            for rt in &tokens[body_open..close.min(tokens.len())] {
                if rt.is_ident("return") {
                    findings.push(Finding {
                        line: rt.line,
                        severity: Severity::Deny,
                        message: "early `return` inside a loop over secret-named data makes \
                                  the iteration count observable; accumulate a flag and \
                                  decide after the loop (see `utp_crypto::ct`)"
                            .to_string(),
                    });
                }
            }
        }
    }
}

/// Is a `[` after this token an indexing bracket (vs an array literal)?
fn is_postfix_index(prev: &Token) -> bool {
    (prev.kind == TokenKind::Ident && !prev.is_ident("return") && !prev.is_ident("in"))
        || prev.is_punct(")")
        || prev.is_punct("]")
}

enum Direction {
    Left,
    Right,
}

/// Collects the identifiers of the operand expression adjacent to the
/// comparison at `idx`, walking over member access / calls / indexing.
fn operand_idents(tokens: &[Token], idx: usize, dir: Direction) -> Vec<String> {
    let mut idents = Vec::new();
    let mut steps = 0;
    let mut j = idx;
    loop {
        let next = match dir {
            Direction::Left => j.checked_sub(1),
            Direction::Right => Some(j + 1),
        };
        let Some(next) = next else { break };
        let Some(t) = tokens.get(next) else { break };
        steps += 1;
        if steps > 10 {
            break;
        }
        let continues = match t.kind {
            TokenKind::Ident => {
                idents.push(t.text.clone());
                true
            }
            TokenKind::Number | TokenKind::Char | TokenKind::Str => true,
            TokenKind::Punct => matches!(
                t.text.as_str(),
                "." | "::" | "(" | ")" | "[" | "]" | "&" | "*"
            ),
            _ => false,
        };
        if !continues {
            break;
        }
        j = next;
    }
    idents
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let file = SourceFile::parse("crates/crypto/src/fixture.rs", src);
        CtDiscipline.check(&file)
    }

    #[test]
    fn flow_taints_a_neutral_name_copied_from_a_secret() {
        // v2 (name heuristic only) missed this: `probe` says nothing.
        let f = run("fn leak(auth_digest: &[u8], guess: u8) -> bool {\n\
             let probe = auth_digest[0];\n\
             if probe == guess {\n\
             return true;\n\
             }\n\
             false\n\
             }\n");
        assert!(
            f.iter().any(|f| f.message.contains("short-circuits")),
            "{f:?}"
        );
    }

    #[test]
    fn flow_clears_a_secret_name_bound_from_a_public_length() {
        // v2 flagged this: `digest` names a secret but holds data.len().
        let f = run("fn fine(data: &[u8]) -> bool {\n\
             let digest = data.len();\n\
             digest == 8\n\
             }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unknown_call_results_keep_the_name_heuristic() {
        // `ctx.finalize()` is unclassifiable; the binding's *name* says
        // secret, so the comparison must still be flagged.
        let f = run("fn hash(ctx: Ctx, expected: &[u8]) -> bool {\n\
             let digest = ctx.finalize();\n\
             digest == expected\n\
             }\n");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn branching_on_a_secret_is_flagged_but_ct_eq_results_are_fine() {
        let bad = run("fn check(key_byte: u8) -> u8 {\n\
             if key_byte & 1 != 0 { odd() } else { even() }\n\
             }\n");
        // `!=` against a literal: the comparison rule reports it.
        assert_eq!(bad.len(), 1, "{bad:?}");
        let bad2 = run("fn check(secret_flag: bool) -> u8 {\n\
             if secret_flag { odd() } else { even() }\n\
             }\n");
        assert!(
            bad2.iter()
                .any(|f| f.message.contains("branching on secret")),
            "{bad2:?}"
        );
        let good = run("fn check(expect: &Auth, auth: &Auth) -> Result<(), E> {\n\
             if !ct_eq(expect.as_bytes(), auth.as_bytes()) {\n\
             return Err(E::AuthFail);\n\
             }\n\
             Ok(())\n\
             }\n");
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn public_projections_do_not_count_as_branching_on_secret() {
        let f = run("fn pad(key: &[u8]) -> usize {\n\
             if key.len() > 64 { 64 } else { key.len() }\n\
             }\n");
        assert!(f.is_empty(), "{f:?}");
        let g = run("fn have(owner_auth: &Option<Auth>) -> bool {\n\
             if owner_auth.is_some() { true } else { false }\n\
             }\n");
        assert!(g.is_empty(), "{g:?}");
    }

    #[test]
    fn secret_dependent_indexing_is_flagged_public_index_is_not() {
        let bad = run("fn sbox_lookup(table: &[u8; 256], key_byte: u8) -> u8 {\n\
             let v = table[key_byte as usize];\n\
             v\n\
             }\n");
        assert!(
            bad.iter()
                .any(|f| f.message.contains("indexing with secret")),
            "{bad:?}"
        );
        let good = run("fn xor_pad(padded: &[u8], key: &[u8]) -> u8 {\n\
             let mut acc = 0;\n\
             for i in 0..key.len() {\n\
             acc ^= padded[i];\n\
             }\n\
             acc\n\
             }\n");
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn loop_over_secret_with_early_return_is_still_flagged() {
        let f = run("fn cmp(key: &[u8], other: &[u8]) -> bool {\n\
             for i in 0..key.len() {\n\
             if key[i] != other[i] {\n\
             return false;\n\
             }\n\
             }\n\
             true\n\
             }\n");
        assert!(
            f.iter()
                .any(|f| f.message.contains("early `return` inside a loop")),
            "{f:?}"
        );
    }

    #[test]
    fn reassignment_retaints_a_clean_local() {
        // v2 could not see the second assignment changing the story.
        let f = run("fn swap(session_key: &[u8]) -> bool {\n\
             let mut buf = 0;\n\
             buf = session_key[0];\n\
             buf == 7\n\
             }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("short-circuits"));
    }
}
