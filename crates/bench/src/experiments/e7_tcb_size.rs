//! E7 — TCB size: lines of code the service provider must trust (the PAL
//! and what runs inside the session) versus the code it explicitly does
//! *not* have to trust (OS surface, client orchestrator, everything else).
//!
//! Counted from the shipped sources at run time; the paper's analogous
//! table compares its ~250-line PAL against millions of OS/browser lines.
//!
//! Regenerate: `cargo run -p utp-bench --bin e7_tcb_size`

use crate::table;
use std::path::{Path, PathBuf};

/// A component and its code size.
#[derive(Debug, Clone)]
pub struct TcbRow {
    /// Component label.
    pub component: &'static str,
    /// Whether the provider must trust it.
    pub trusted: bool,
    /// Non-blank, non-comment-only lines of Rust.
    pub loc: usize,
}

fn count_loc(path: &Path) -> usize {
    let Ok(src) = std::fs::read_to_string(path) else {
        return 0;
    };
    src.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//"))
        .count()
}

fn crate_dir(name: &str) -> PathBuf {
    // bench crate lives at crates/bench; siblings are ../<name>/src.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join(name)
        .join("src")
}

fn count_dir(dir: &Path) -> usize {
    let mut total = 0;
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            total += count_dir(&p);
        } else if p.extension().is_some_and(|e| e == "rs") {
            total += count_loc(&p);
        }
    }
    total
}

/// Computes the TCB table from the shipped sources.
pub fn run() -> Vec<TcbRow> {
    vec![
        TcbRow {
            component: "confirmation PAL (core/pal.rs)",
            trusted: true,
            loc: count_loc(&crate_dir("core").join("pal.rs")),
        },
        TcbRow {
            component: "session runtime (flicker/runtime.rs + pal.rs)",
            trusted: true,
            loc: count_loc(&crate_dir("flicker").join("runtime.rs"))
                + count_loc(&crate_dir("flicker").join("pal.rs")),
        },
        TcbRow {
            component: "protocol structures (core/protocol.rs)",
            trusted: true,
            loc: count_loc(&crate_dir("core").join("protocol.rs")),
        },
        TcbRow {
            component: "client orchestrator (untrusted OS side)",
            trusted: false,
            loc: count_loc(&crate_dir("core").join("client.rs")),
        },
        TcbRow {
            component: "platform / OS / device models",
            trusted: false,
            loc: count_dir(&crate_dir("platform")),
        },
        TcbRow {
            component: "TPM model (hardware, trusted by assumption)",
            trusted: true,
            loc: count_dir(&crate_dir("tpm")),
        },
        TcbRow {
            component: "server stack",
            trusted: false,
            loc: count_dir(&crate_dir("server")),
        },
    ]
}

/// Measured-code TCB (what SKINIT actually measures into PCR 17): the PAL
/// plus the in-session runtime.
pub fn measured_tcb_loc(rows: &[TcbRow]) -> usize {
    rows.iter()
        .filter(|r| r.trusted && !r.component.contains("TPM"))
        .map(|r| r.loc)
        .sum()
}

/// Everything else the user's machine runs.
pub fn untrusted_loc(rows: &[TcbRow]) -> usize {
    rows.iter().filter(|r| !r.trusted).map(|r| r.loc).sum()
}

/// Renders the E7 table.
pub fn render(rows: &[TcbRow]) -> String {
    let mut body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.component.to_string(),
                if r.trusted { "yes" } else { "no" }.to_string(),
                r.loc.to_string(),
            ]
        })
        .collect();
    body.push(vec![
        "TOTAL measured into PCR 17".to_string(),
        "yes".to_string(),
        measured_tcb_loc(rows).to_string(),
    ]);
    body.push(vec![
        "TOTAL untrusted".to_string(),
        "no".to_string(),
        untrusted_loc(rows).to_string(),
    ]);
    table::render(
        "E7 - trusted computing base by component (lines of code)",
        &["component", "trusted", "loc"],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_are_found_and_counted() {
        let rows = run();
        for r in &rows {
            assert!(r.loc > 0, "{} not found / empty", r.component);
        }
    }

    #[test]
    fn measured_tcb_is_much_smaller_than_untrusted_code() {
        let rows = run();
        let tcb = measured_tcb_loc(&rows);
        let untrusted = untrusted_loc(&rows);
        assert!(
            untrusted > tcb,
            "tcb {} should be smaller than untrusted {}",
            tcb,
            untrusted
        );
    }
}
