#!/usr/bin/env bash
# Regenerates every experiment harness and splices the outputs into
# EXPERIMENTS.md at the <!--EN--> markers.
#
# With --refresh-perf-baselines, additionally re-runs the seven
# artifact-emitting experiments in release mode and re-records the
# checked-in perf baselines under scripts/bench_baseline/ from the
# fresh artifacts (an intentional act — the perf gate compares every
# later run against exactly these files).
set -euo pipefail
cd "$(dirname "$0")/.."

refresh_baselines=0
for arg in "$@"; do
  case "$arg" in
    --refresh-perf-baselines) refresh_baselines=1 ;;
    *)
      echo "usage: $0 [--refresh-perf-baselines]" >&2
      exit 2
      ;;
  esac
done

run_and_splice() {
  local id="$1" bin="$2"
  echo ">> running $bin"
  cargo run -q -p utp-bench --bin "$bin" > "/tmp/exp_$id.txt"
  python3 - "$id" "/tmp/exp_$id.txt" <<'PY'
import sys
marker = "<!--%s-->" % sys.argv[1]
out = open(sys.argv[2]).read().rstrip()
text = open("EXPERIMENTS.md").read()
assert marker in text, marker
text = text.replace(marker, "```text\n" + out + "\n```")
open("EXPERIMENTS.md", "w").write(text)
PY
}

run_and_splice E1 e1_tpm_micro
run_and_splice E2 e2_session_breakdown
run_and_splice E3 e3_end_to_end
run_and_splice E4 e4_server_throughput
run_and_splice E5 e5_attacks
run_and_splice E6 e6_captcha_compare
run_and_splice E7 e7_tcb_size
run_and_splice E8 e8_amortized
run_and_splice E9 e9_batching
echo "EXPERIMENTS.md updated"

if [ "$refresh_baselines" = 1 ]; then
  echo ">> refreshing perf baselines (release-mode artifact runs)"
  for bin in e2_session_breakdown e4_server_throughput e8_amortized \
             e10_service e11_durability e12_explore e13_fleet; do
    echo ">> running $bin (release)"
    cargo run --release -q -p utp-bench --bin "$bin" > /dev/null
  done
  cargo run --release -q -p utp-obs -- update \
    --baselines scripts/bench_baseline --artifacts target/bench
  echo "perf baselines refreshed under scripts/bench_baseline/"
fi
