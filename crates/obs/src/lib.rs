//! Workspace-wide observability: a labeled metrics registry, canonical
//! machine-readable perf artifacts, and a perf-regression gate.
//!
//! The crate has three layers, mirroring the tracing substrate's
//! split between deterministic and host-measured data:
//!
//! * [`metrics`] — the lock-free primitive cells ([`Counter`],
//!   [`Gauge`] with a persistent high-watermark, [`Summary`] with a
//!   p999 tail) that the verification service, journal, and explorer
//!   bump on their hot paths. These moved here from
//!   `utp-server::metrics` so every crate can share them.
//! * [`registry`] — a labeled [`MetricsRegistry`] that names those
//!   cells (`name{label=value}`), hands out `Arc` handles whose
//!   increments never take the registry lock, and exports
//!   deterministic, sorted [`MetricsSnapshot`]s on the virtual clock.
//! * [`artifact`] / [`gate`] — the schema-versioned `BENCH_<exp>.json`
//!   artifact format every experiment bin emits, a Prometheus-style
//!   text [`expo`]sition renderer for human inspection, and the
//!   baseline comparator behind `utp-obs gate`.
//!
//! # Determinism contract
//!
//! Every metric is classified [`Class::Virtual`] or [`Class::Host`].
//! Virtual metrics derive from the simulation's virtual clock and
//! seeded randomness, so their values — and the canonical
//! `BENCH_<exp>.json` carrying them — are byte-identical across runs
//! *and machines*; the gate holds them to zero drift. Host metrics
//! (wall-clock throughput, real queue waits) live in the separate
//! `BENCH_<exp>.host.json` and get loose tolerance bands. This is the
//! same canonical/volatile split `utp-trace` applies to its exports.
//!
//! Like the tracing crate, none of this code may be linked into the
//! TCB: the `tcb-boundary` analyzer pass forbids `utp_obs` imports
//! from attested code, and the `secret-taint` pass treats the
//! registry/artifact writers as serialization sinks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod expo;
pub mod gate;
pub mod json;
pub mod metrics;
pub mod registry;

pub use artifact::{Artifact, ArtifactPair, Class, Dist, Metric, MetricValue, SCHEMA};
pub use expo::render_exposition;
pub use gate::{compare, Baseline, BaselineMetric, GateDiff, GateReport, BASELINE_SCHEMA};
pub use metrics::{throughput, Counter, Gauge, Summary};
pub use registry::{
    HistogramCell, MetricId, MetricsRegistry, MetricsSnapshot, Sample, SampleValue,
};
