//! The service-provider facade.

use crate::audit::AuditLog;
use crate::metrics::ServiceStats;
use crate::service::{ServiceConfig, VerifierService};
use crate::store::{OrderStatus, Store};
use std::time::Duration;
use utp_core::protocol::{ConfirmMode, Evidence, Transaction, TransactionRequest};
use utp_core::verifier::{Verifier, VerifierConfig, VerifyError};
use utp_crypto::rsa::RsaPublicKey;

/// A settled-transaction receipt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Receipt {
    /// The order this receipt settles.
    pub order_id: u64,
    /// Transaction as confirmed.
    pub transaction: Transaction,
    /// Code attempts the human needed.
    pub attempts: u32,
}

/// An e-commerce provider accepting trusted-path confirmations.
///
/// Verification runs through the serial [`Verifier`] by default; call
/// [`ServiceProvider::attach_service`] to route evidence through a
/// persistent sharded [`VerifierService`] instead (issuance stays on the
/// serial verifier, which owns the nonce RNG).
#[derive(Debug)]
pub struct ServiceProvider {
    ca_key: RsaPublicKey,
    verifier: Verifier,
    service: Option<VerifierService>,
    store: Store,
    audit: AuditLog,
    tx_counter: u64,
}

impl ServiceProvider {
    /// Creates a provider pinning the given privacy-CA key.
    pub fn new(ca_key: RsaPublicKey, seed: u64) -> Self {
        Self::with_config(ca_key, VerifierConfig::default(), seed)
    }

    /// Creates a provider with explicit verifier policy.
    pub fn with_config(ca_key: RsaPublicKey, config: VerifierConfig, seed: u64) -> Self {
        ServiceProvider {
            verifier: Verifier::with_config(ca_key.clone(), config, seed),
            ca_key,
            service: None,
            store: Store::new(),
            audit: AuditLog::new(),
            tx_counter: 0,
        }
    }

    /// Starts a [`VerifierService`] with the given pool geometry and
    /// routes all subsequent evidence submissions through it. The service
    /// inherits this provider's verification policy (TTL, trusted PALs).
    pub fn attach_service(&mut self, threads: usize, shards: usize) {
        let config = ServiceConfig::from_verifier_config(self.verifier.config(), threads, shards);
        self.service = Some(VerifierService::start(self.ca_key.clone(), config));
    }

    /// Shuts down an attached service (draining in-flight jobs) and
    /// returns its final counters; `None` if none was attached.
    pub fn detach_service(&mut self) -> Option<ServiceStats> {
        self.service.take().map(VerifierService::shutdown)
    }

    /// The attached verification service, if any.
    pub fn service(&self) -> Option<&VerifierService> {
        self.service.as_ref()
    }

    /// The underlying store (accounts, orders).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Mutable store access (account provisioning).
    pub fn store_mut(&mut self) -> &mut Store {
        &mut self.store
    }

    /// The verifier (policy + stats).
    pub fn verifier(&self) -> &Verifier {
        &self.verifier
    }

    /// The audit log of verification decisions.
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// Places an order: creates the transaction and issues the
    /// confirmation challenge. Returns `(order_id, request)` — the request
    /// travels to the client.
    pub fn place_order(
        &mut self,
        account: &str,
        payee: &str,
        amount_cents: u64,
        currency: &str,
        memo: &str,
        now: Duration,
    ) -> (u64, TransactionRequest) {
        self.place_order_with_mode(
            account,
            payee,
            amount_cents,
            currency,
            memo,
            self.verifier.config().default_mode,
            now,
        )
    }

    /// Places an order with an explicit confirmation mode.
    #[allow(clippy::too_many_arguments)]
    pub fn place_order_with_mode(
        &mut self,
        account: &str,
        payee: &str,
        amount_cents: u64,
        currency: &str,
        memo: &str,
        mode: ConfirmMode,
        now: Duration,
    ) -> (u64, TransactionRequest) {
        self.tx_counter += 1;
        let tx = Transaction::new(self.tx_counter, payee, amount_cents, currency, memo);
        let order_id = self.store.create_order(account, tx.clone());
        let request = self.verifier.issue_request_with_mode(tx, mode, now);
        if let Some(service) = &self.service {
            // The service settles this nonce; the serial ledger's copy is
            // never consumed, so garbage-collect it by TTL here to keep
            // the serial ledger bounded.
            service.register(&request, now);
            self.verifier.gc(now);
        }
        (order_id, request)
    }

    /// Accepts evidence for an order.
    ///
    /// Routed through the attached [`VerifierService`] when one is
    /// present, otherwise verified inline by the serial [`Verifier`].
    ///
    /// # Errors
    ///
    /// Returns the verifier's typed rejection; the order is marked
    /// rejected for settled-but-unconfirmed outcomes and stays pending on
    /// retryable ones (see [`Verifier::verify`]).
    pub fn submit_evidence(
        &mut self,
        order_id: u64,
        evidence: &Evidence,
        now: Duration,
    ) -> Result<Receipt, VerifyError> {
        let outcome = match &self.service {
            Some(service) => match service.submit_evidence(evidence.clone(), now) {
                Ok(ticket) => ticket.wait(),
                Err(_) => Err(VerifyError::ServiceUnavailable),
            },
            None => self.verifier.verify(evidence, now),
        };
        match outcome {
            Ok(verified) => {
                self.audit.record(now, order_id, Ok(()));
                // `try_settle`: order ids arrive from outside the process,
                // so an unknown id must not panic the server.
                self.store.try_settle(order_id);
                Ok(Receipt {
                    order_id,
                    transaction: verified.transaction,
                    attempts: verified.attempts,
                })
            }
            Err(e) => {
                self.audit.record(now, order_id, Err(e));
                // Terminal outcomes mark the order; transport-level ones
                // leave it pending for retry.
                match e {
                    VerifyError::NotConfirmed(_)
                    | VerifyError::Replayed
                    | VerifyError::Expired
                    | VerifyError::UntrustedPal
                    | VerifyError::BadQuote
                    | VerifyError::TokenMismatch
                    | VerifyError::BadCertificate => self.store.reject(order_id, e),
                    _ => {}
                }
                Err(e)
            }
        }
    }

    /// True if the order is confirmed.
    pub fn is_confirmed(&self, order_id: u64) -> bool {
        matches!(
            self.store.order(order_id).map(|o| &o.status),
            Some(OrderStatus::Confirmed)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utp_core::ca::PrivacyCa;
    use utp_core::client::{Client, ClientConfig};
    use utp_core::operator::{ConfirmingHuman, Intent};
    use utp_platform::machine::{Machine, MachineConfig};

    fn setup() -> (ServiceProvider, Machine, Client) {
        let ca = PrivacyCa::new(512, 91);
        let mut provider = ServiceProvider::new(ca.public_key().clone(), 92);
        provider.store_mut().open_account("alice", 100_000);
        let mut machine = Machine::new(MachineConfig::fast_for_tests(93));
        let enrollment = ca.enroll(&mut machine);
        let client = Client::new(ClientConfig::fast_for_tests(), enrollment);
        (provider, machine, client)
    }

    #[test]
    fn order_confirmed_and_settled() {
        let (mut provider, mut machine, mut client) = setup();
        let (order_id, request) =
            provider.place_order("alice", "bookshop", 4_200, "EUR", "order 7", machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&request.transaction), 94);
        let evidence = client.confirm(&mut machine, &request, &mut human).unwrap();
        let receipt = provider
            .submit_evidence(order_id, &evidence, machine.now())
            .unwrap();
        assert_eq!(receipt.transaction.payee, "bookshop");
        assert!(provider.is_confirmed(order_id));
        assert_eq!(
            provider.store().account("alice").unwrap().balance_cents,
            95_800
        );
    }

    #[test]
    fn human_rejection_marks_order_rejected_without_debit() {
        let (mut provider, mut machine, mut client) = setup();
        let (order_id, request) =
            provider.place_order("alice", "attacker", 99_999, "EUR", "??", machine.now());
        let mut human = ConfirmingHuman::new(Intent::rejecting(), 95);
        let evidence = client.confirm(&mut machine, &request, &mut human).unwrap();
        let err = provider
            .submit_evidence(order_id, &evidence, machine.now())
            .unwrap_err();
        assert!(matches!(err, VerifyError::NotConfirmed(_)));
        assert!(!provider.is_confirmed(order_id));
        assert_eq!(
            provider.store().account("alice").unwrap().balance_cents,
            100_000
        );
    }

    #[test]
    fn replayed_evidence_cannot_settle_twice() {
        let (mut provider, mut machine, mut client) = setup();
        let (order_id, request) =
            provider.place_order("alice", "shop", 1_000, "EUR", "", machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&request.transaction), 96);
        let evidence = client.confirm(&mut machine, &request, &mut human).unwrap();
        provider
            .submit_evidence(order_id, &evidence, machine.now())
            .unwrap();
        // Malware re-submits the same evidence against a *new* order.
        let (order2, _request2) =
            provider.place_order("alice", "shop", 1_000, "EUR", "", machine.now());
        let err = provider
            .submit_evidence(order2, &evidence, machine.now())
            .unwrap_err();
        assert_eq!(err, VerifyError::Replayed);
        assert_eq!(
            provider.store().account("alice").unwrap().balance_cents,
            99_000
        );
    }

    #[test]
    fn attached_service_confirms_and_settles() {
        let (mut provider, mut machine, mut client) = setup();
        provider.attach_service(2, 4);
        let (order_id, request) =
            provider.place_order("alice", "bookshop", 4_200, "EUR", "order 7", machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&request.transaction), 97);
        let evidence = client.confirm(&mut machine, &request, &mut human).unwrap();
        provider
            .submit_evidence(order_id, &evidence, machine.now())
            .unwrap();
        assert!(provider.is_confirmed(order_id));
        // Replay against a new order is caught by the sharded ledger.
        let (order2, _) = provider.place_order("alice", "shop", 1_000, "EUR", "", machine.now());
        let err = provider
            .submit_evidence(order2, &evidence, machine.now())
            .unwrap_err();
        assert_eq!(err, VerifyError::Replayed);
        let stats = provider.detach_service().unwrap();
        assert_eq!(stats.totals().accepted, 1);
        assert_eq!(stats.totals().replayed, 1);
        assert_eq!(stats.totals().registered, 2);
        // Detached: the serial verifier takes over again for new orders.
        let (order3, request3) =
            provider.place_order("alice", "shop", 500, "EUR", "", machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&request3.transaction), 98);
        let evidence3 = client.confirm(&mut machine, &request3, &mut human).unwrap();
        provider
            .submit_evidence(order3, &evidence3, machine.now())
            .unwrap();
        assert!(provider.is_confirmed(order3));
    }

    #[test]
    fn transaction_ids_are_unique_per_provider() {
        let (mut provider, machine, _client) = setup();
        let (_, r1) = provider.place_order("alice", "a", 1, "EUR", "", machine.now());
        let (_, r2) = provider.place_order("alice", "b", 1, "EUR", "", machine.now());
        assert_ne!(r1.transaction.id, r2.transaction.id);
        assert_ne!(r1.nonce, r2.nonce);
    }
}
