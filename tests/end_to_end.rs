//! Cross-crate integration tests: the full trusted path from human intent
//! to provider settlement, exercised through the public `utp` facade.

use utp::core::ca::PrivacyCa;
use utp::core::client::{Client, ClientConfig};
use utp::core::operator::{ConfirmingHuman, Intent};
use utp::core::protocol::{ConfirmMode, Transaction};
use utp::core::verifier::{Verifier, VerifyError};
use utp::netsim::{Link, LinkConfig};
use utp::platform::machine::{Machine, MachineConfig};
use utp::server::flow::run_transaction;
use utp::server::provider::ServiceProvider;
use utp::tpm::VendorProfile;

fn world(seed: u64) -> (PrivacyCa, Verifier, Machine, Client) {
    let ca = PrivacyCa::new(512, seed);
    let verifier = Verifier::new(ca.public_key().clone(), seed + 1);
    let mut machine = Machine::new(MachineConfig::fast_for_tests(seed + 2));
    let enrollment = ca.enroll(&mut machine);
    let client = Client::new(ClientConfig::fast_for_tests(), enrollment);
    (ca, verifier, machine, client)
}

#[test]
fn full_flow_on_every_vendor_profile() {
    for (i, vendor) in VendorProfile::all_real().iter().enumerate() {
        let ca = PrivacyCa::new(512, 300 + i as u64);
        let mut verifier = Verifier::new(ca.public_key().clone(), 301 + i as u64);
        let mut machine = Machine::new(MachineConfig::realistic(*vendor, 302 + i as u64));
        let enrollment = ca.enroll(&mut machine);
        let mut client = Client::new(ClientConfig::fast_for_tests(), enrollment);
        let tx = Transaction::new(1, "shop.example", 999, "EUR", "x");
        let request = verifier.issue_request(tx.clone(), machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&tx), 303 + i as u64);
        let evidence = client
            .confirm(&mut machine, &request, &mut human)
            .expect("session runs");
        verifier
            .verify(&evidence, machine.now())
            .unwrap_or_else(|e| panic!("{:?}: {}", vendor, e));
    }
}

#[test]
fn both_confirmation_modes_verify() {
    let (_ca, mut verifier, mut machine, mut client) = world(310);
    for mode in [ConfirmMode::PressEnter, ConfirmMode::TypeCode] {
        let tx = Transaction::new(2, "shop.example", 500, "EUR", "m");
        let request = verifier.issue_request_with_mode(tx.clone(), mode, machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&tx), 311);
        let evidence = client.confirm(&mut machine, &request, &mut human).unwrap();
        let verified = verifier.verify(&evidence, machine.now()).unwrap();
        assert_eq!(verified.mode, mode);
    }
}

#[test]
fn one_verifier_serves_many_machines() {
    let ca = PrivacyCa::new(512, 320);
    let mut verifier = Verifier::new(ca.public_key().clone(), 321);
    for i in 0..3u64 {
        let mut machine = Machine::new(MachineConfig::fast_for_tests(330 + i));
        let enrollment = ca.enroll(&mut machine);
        let mut client = Client::new(ClientConfig::fast_for_tests(), enrollment);
        let tx = Transaction::new(i, "shop.example", 100 * (i + 1), "EUR", "");
        let request = verifier.issue_request(tx.clone(), machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&tx), 340 + i);
        let evidence = client.confirm(&mut machine, &request, &mut human).unwrap();
        verifier.verify(&evidence, machine.now()).unwrap();
    }
    assert_eq!(verifier.stats().accepted, 3);
}

#[test]
fn evidence_cannot_cross_machines() {
    // Evidence quoted by machine A's TPM must not verify for a request
    // answered from machine B's enrollment (AIK mismatch caught by the
    // quote signature).
    let ca = PrivacyCa::new(512, 350);
    let mut verifier = Verifier::new(ca.public_key().clone(), 351);
    let mut machine_a = Machine::new(MachineConfig::fast_for_tests(352));
    let enroll_a = ca.enroll(&mut machine_a);
    let mut machine_b = Machine::new(MachineConfig::fast_for_tests(353));
    let enroll_b = ca.enroll(&mut machine_b);
    let mut client_a = Client::new(ClientConfig::fast_for_tests(), enroll_a);
    let tx = Transaction::new(1, "shop.example", 100, "EUR", "");
    let request = verifier.issue_request(tx.clone(), machine_a.now());
    let mut human = ConfirmingHuman::new(Intent::approving(&tx), 354);
    let mut evidence = client_a
        .confirm(&mut machine_a, &request, &mut human)
        .unwrap();
    // Malware swaps in machine B's certificate (also CA-signed!).
    evidence.aik_cert = enroll_b.certificate.to_bytes();
    assert_eq!(
        verifier.verify(&evidence, machine_a.now()).unwrap_err(),
        VerifyError::BadQuote
    );
}

#[test]
fn end_to_end_flow_over_three_link_presets() {
    for (i, cfg) in [
        LinkConfig::broadband(),
        LinkConfig::continental(),
        LinkConfig::intercontinental(),
    ]
    .into_iter()
    .enumerate()
    {
        let ca = PrivacyCa::new(512, 360 + i as u64);
        let mut provider = ServiceProvider::new(ca.public_key().clone(), 361 + i as u64);
        provider.store_mut().open_account("alice", 1_000_000);
        let mut machine = Machine::new(MachineConfig::fast_for_tests(362 + i as u64));
        let enrollment = ca.enroll(&mut machine);
        let mut client = Client::new(ClientConfig::fast_for_tests(), enrollment);
        let mut link = Link::new(cfg, 363 + i as u64);
        let mut human = ConfirmingHuman::new(
            Intent {
                payee: "shop.example".into(),
                amount: "10.00 EUR".into(),
                approve: true,
            },
            364 + i as u64,
        );
        let report = run_transaction(
            &mut machine,
            &mut client,
            &mut provider,
            &mut link,
            "alice",
            "shop.example",
            1_000,
            "memo",
            &mut human,
        )
        .expect("flow runs");
        assert!(report.outcome.is_ok(), "link preset {} failed", i);
        assert!(report.network > std::time::Duration::ZERO);
    }
}

#[test]
fn sequential_transactions_share_one_machine_and_verifier() {
    let (_ca, mut verifier, mut machine, mut client) = world(370);
    for i in 0..5u64 {
        let tx = Transaction::new(i, "shop.example", 100 + i, "EUR", "seq");
        let request = verifier.issue_request(tx.clone(), machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&tx), 380 + i);
        let evidence = client.confirm(&mut machine, &request, &mut human).unwrap();
        verifier.verify(&evidence, machine.now()).unwrap();
    }
    assert_eq!(machine.skinit_count(), 5);
    assert_eq!(verifier.stats().accepted, 5);
}

#[test]
fn rejected_then_retried_transaction_needs_fresh_nonce() {
    let (_ca, mut verifier, mut machine, mut client) = world(390);
    let tx = Transaction::new(9, "shop.example", 700, "EUR", "retry");
    let request = verifier.issue_request(tx.clone(), machine.now());
    // First attempt: the human walks away (timeout verdict).
    let mut absent = ConfirmingHuman::new(Intent::rejecting(), 391);
    let evidence = client.confirm(&mut machine, &request, &mut absent).unwrap();
    assert!(matches!(
        verifier.verify(&evidence, machine.now()).unwrap_err(),
        VerifyError::NotConfirmed(_)
    ));
    // Retrying with the same nonce fails (settled)...
    let mut human = ConfirmingHuman::new(Intent::approving(&tx), 392);
    let evidence2 = client.confirm(&mut machine, &request, &mut human).unwrap();
    assert_eq!(
        verifier.verify(&evidence2, machine.now()).unwrap_err(),
        VerifyError::Replayed
    );
    // ...but a fresh request for the same transaction succeeds.
    let request2 = verifier.issue_request(tx.clone(), machine.now());
    let evidence3 = client.confirm(&mut machine, &request2, &mut human).unwrap();
    verifier.verify(&evidence3, machine.now()).unwrap();
}
