//! Prints the E4 table (server verification throughput) and drops the
//! run's perf artifacts under `target/bench/`.
use utp_bench::experiments::e4_server_throughput as e4;

fn main() {
    let rows = e4::run(256, 1024, &[1, 2, 4, 8, 16]);
    println!("{}", e4::render(&rows));
    utp_bench::emit_artifacts(&e4::artifacts(
        &rows,
        "jobs=256 key_bits=1024 threads=1,2,4,8,16",
    ));
}
